"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure via
``repro.bench.experiments`` (quick-scale by default; set
``REPRO_BENCH_FULL=1`` for paper-scale sweeps), asserts the paper's
qualitative claims, and writes the rendered table to
``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def record_table():
    """Save an ExperimentResult's table and echo it to stdout."""

    def _record(result, name: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        (RESULTS_DIR / f"{name}.csv").write_text(result.csv())
        print(text)

    return _record


@pytest.fixture
def run_once(benchmark):
    """pytest-benchmark wrapper: simulations are deterministic, so one
    round is exact; re-running a multi-second DES adds nothing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run

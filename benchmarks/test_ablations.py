"""Ablations of the paper's individual design choices (DESIGN.md D1-D5)."""

from repro.bench.experiments import (
    ablation_barrier,
    ablation_piggyback,
    ablation_pmi,
    ablation_qp_cache,
)

from conftest import full_scale


def test_ablation_d1_piggyback(run_once, record_table):
    result = run_once(ablation_piggyback.run, npes=16)
    record_table(result, "ablation_d1_piggyback")
    # The separate exchange adds a round trip per first contact; the
    # handshake itself dominates, so the relative cost is small but
    # strictly positive and deterministic.
    assert result.extras["separate_us"] > result.extras["piggyback_us"]
    assert result.extras["overhead_pct"] > 0.4


def test_ablation_d2_pmi(run_once, record_table):
    result = run_once(ablation_pmi.run, quick=not full_scale())
    record_table(result, "ablation_d2_pmi")
    growths = result.extras["growths"]
    times = result.extras["times"]
    _small, large = result.extras["sizes"]
    # Only on-demand + non-blocking stays ~constant with job size...
    assert growths[("ondemand", "nonblocking")] < 1.05
    # ...and beats every other combination at the largest size.
    best = times[("ondemand", "nonblocking")][large]
    for combo, series in times.items():
        if combo != ("ondemand", "nonblocking"):
            assert series[large] > best, combo
            assert growths[combo] > growths[("ondemand", "nonblocking")]


def test_ablation_d3_intranode_barrier(run_once, record_table):
    result = run_once(ablation_barrier.run, quick=not full_scale())
    record_table(result, "ablation_d3_barrier")
    raw = result.extras["raw"]
    for npes, row in raw.items():
        # Global init barriers serialise on the PMI exchange; the
        # intra-node variant keeps init faster and connection-free.
        assert row["intranode_us"] < row["global_us"], npes
        # Intra-node barriers keep init (nearly) connection-free: the
        # tiny residue comes from finalize-phase handshakes served
        # while a neighbour was still snapshotting.
        assert row["intranode_conns"] < 0.15
        assert row["global_conns"] > 5 * max(0.01, row["intranode_conns"])


def test_ablation_d5_qp_cache(run_once, record_table):
    result = run_once(ablation_qp_cache.run)
    record_table(result, "ablation_d5_qp_cache")
    raw = result.extras["raw"]
    sizes = sorted(raw)
    # A too-small context cache measurably slows communication.
    small_cache_time = raw[sizes[0]][0]
    big_cache_time = raw[sizes[-1]][0]
    assert small_cache_time > 1.02 * big_cache_time
    # And the miss counters actually explain it.
    assert raw[sizes[0]][1] > raw[sizes[-1]][1]

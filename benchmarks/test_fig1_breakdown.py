"""Figure 1: init-time breakdown of the static design."""

from repro.bench.experiments import fig1_breakdown
from repro.shmem import PHASE_CONN, PHASE_MEMREG, PHASE_PMI

from conftest import full_scale


def test_fig1_breakdown(run_once, record_table):
    result = run_once(fig1_breakdown.run, quick=not full_scale())
    record_table(result, "fig1_breakdown")

    means = result.extras["phase_means"]
    sizes = sorted(means)
    small, large = sizes[0], sizes[-1]
    # Connection setup and PMI exchange grow with job size...
    assert means[large][PHASE_CONN] > 1.8 * means[small][PHASE_CONN]
    assert means[large][PHASE_PMI] > 1.5 * means[small][PHASE_PMI]
    # ...while memory registration stays ~constant.
    ratio = means[large][PHASE_MEMREG] / means[small][PHASE_MEMREG]
    assert 0.9 < ratio < 1.1

"""Figure 2: qualitative summary radar."""

from repro.bench.experiments import fig2_radar


def test_fig2_radar(run_once, record_table):
    result = run_once(fig2_radar.run)
    record_table(result, "fig2_radar")

    axes = result.extras["axes"]
    # Dramatic wins on startup and resource usage...
    assert axes["Startup Time"] < 0.9
    assert axes["Resource Usage"] < 0.6
    # ...moderate (but real) win on execution time.
    assert 0.4 < axes["Execution Time"] < 1.0

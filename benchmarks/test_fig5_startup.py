"""Figure 5: startup performance, current vs proposed."""

from repro.bench.experiments import fig5_startup

from conftest import full_scale


def test_fig5a_startup(run_once, record_table):
    result = run_once(fig5_startup.run, quick=not full_scale())
    record_table(result, "fig5a_startup")

    raw = result.extras["raw"]
    sizes = sorted(raw)
    small, large = sizes[0], sizes[-1]

    # Proposed start_pes is near-constant across job sizes...
    prop_small = raw[small]["proposed"].startup.mean_us
    prop_large = raw[large]["proposed"].startup.mean_us
    assert prop_large / prop_small < 1.15

    # ...while the current design grows and loses at the largest size.
    cur_large = raw[large]["current"].startup.mean_us
    cur_small = raw[small]["current"].startup.mean_us
    assert cur_large > 1.3 * cur_small
    init_speedup = cur_large / prop_large
    assert init_speedup > 1.3

    # Hello World wall-clock gains exceed the init gains (teardown of
    # the fully connected fabric is also on the clock).
    hello_speedup = (
        raw[large]["current"].wall_time_us
        / raw[large]["proposed"].wall_time_us
    )
    assert hello_speedup > init_speedup * 0.9
    if full_scale():
        # Paper: ~3x init and ~8.3x Hello World at 8192 PEs.
        assert 2.0 < init_speedup < 7.0
        assert 5.0 < hello_speedup < 14.0


def test_fig5b_breakdown(run_once, record_table):
    result = run_once(fig5_startup.run_breakdown, quick=not full_scale())
    record_table(result, "fig5b_breakdown")

    from repro.shmem import PHASE_CONN, PHASE_MEMREG, PHASE_PMI

    means = result.extras["phase_means"]
    for npes, bd in means.items():
        # Negligible time in PMI operations and connection setup.
        assert bd.get(PHASE_PMI, 0.0) < 0.02 * bd[PHASE_MEMREG]
        assert bd.get(PHASE_CONN, 0.0) < 0.02 * bd[PHASE_MEMREG]

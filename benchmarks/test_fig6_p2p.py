"""Figure 6: point-to-point and atomic latency, static vs on-demand."""

from repro.bench.experiments import fig6_p2p

from conftest import full_scale


def test_fig6ab_put_get(run_once, record_table):
    result = run_once(
        fig6_p2p.run,
        iterations=1000 if full_scale() else 100,
        quick=not full_scale(),
    )
    record_table(result, "fig6ab_put_get")

    latency = result.extras["latency"]
    for op in ("get", "put"):
        for size, (static_us, ondemand_us, diff_pct) in latency[op].items():
            # Paper: <3% difference between the approaches everywhere.
            assert diff_pct < 3.0, (op, size, diff_pct)
        # Latency grows with message size (bandwidth regime kicks in).
        sizes = sorted(latency[op])
        assert latency[op][sizes[-1]][0] > latency[op][sizes[0]][0]


def test_fig6c_atomics(run_once, record_table):
    result = run_once(
        fig6_p2p.run_atomics,
        iterations=1000 if full_scale() else 100,
    )
    record_table(result, "fig6c_atomics")

    latency = result.extras["latency"]
    for op, (static_us, ondemand_us, diff_pct) in latency.items():
        assert diff_pct < 3.0, (op, diff_pct)
    # Fetching swap needs a read + retry loop: costlier than plain fadd.
    assert latency["swap"][0] > latency["fadd"][0]

"""Figure 7: collective latency, static vs on-demand."""

from repro.bench.experiments import fig7_collectives

from conftest import full_scale


def test_fig7ab_collect_reduce(run_once, record_table):
    result = run_once(fig7_collectives.run, quick=not full_scale())
    record_table(result, "fig7ab_collect_reduce")

    latency = result.extras["latency"]
    for kind in ("collect", "reduce"):
        for size, (s, o, diff) in latency[kind].items():
            # Identical performance between the two schemes (the
            # handshake amortises over iterations).
            assert diff < 3.0, (kind, size, diff)
    # collect (dense allgather) moves N x the data: far costlier than
    # reduce once payloads dominate (small sizes are latency-bound and
    # comparable).
    big = max(latency["collect"])
    assert latency["collect"][big][0] > 2.0 * latency["reduce"][big][0]


def test_fig7c_barrier(run_once, record_table):
    result = run_once(fig7_collectives.run_barrier, quick=not full_scale())
    record_table(result, "fig7c_barrier")

    latency = result.extras["latency"]
    for npes, (s, o, diff) in latency.items():
        assert diff < 6.0, (npes, diff)
    # Barrier latency grows (log-depth tree) with the process count.
    sizes = sorted(latency)
    assert latency[sizes[-1]][0] > latency[sizes[0]][0]

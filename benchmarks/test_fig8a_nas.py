"""Figure 8(a): NAS benchmark total execution time."""

from repro.bench.experiments import fig8a_nas

from conftest import full_scale


def test_fig8a_nas(run_once, record_table):
    result = run_once(fig8a_nas.run, quick=not full_scale())
    record_table(result, "fig8a_nas")

    times = result.extras["times"]
    for name, (static_us, ondemand_us, improvement) in times.items():
        # On-demand always wins (shorter startup), never regresses.
        assert improvement > 0.0, (name, improvement)
        # Sanity ceiling: the win comes from startup, not the kernel.
        assert improvement < 60.0, (name, improvement)
    if full_scale():
        # Paper band at 256 PEs / class B: 18-35%.
        for name, (_s, _o, improvement) in times.items():
            assert 8.0 < improvement < 50.0, (name, improvement)

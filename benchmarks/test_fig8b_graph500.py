"""Figure 8(b): hybrid MPI+OpenSHMEM Graph500."""

from repro.bench.experiments import fig8b_graph500

from conftest import full_scale


def test_fig8b_graph500(run_once, record_table):
    result = run_once(fig8b_graph500.run, quick=not full_scale())
    record_table(result, "fig8b_graph500")

    times = result.extras["times"]
    for npes, (static_us, ondemand_us, diff_pct) in times.items():
        # Paper: negligible difference (<2%) — generation + validation
        # dominate; give the simulated runs a little slack.
        assert abs(diff_pct) < 8.0, (npes, diff_pct)
    # BFS validated with zero errors on every run (asserted in rows).
    for row in result.rows:
        assert row[-1] == "ok"

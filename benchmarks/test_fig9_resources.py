"""Figure 9: per-process endpoint usage, measured + projected."""

from repro.bench.experiments import fig9_resources

from conftest import full_scale


def test_fig9_resources(run_once, record_table):
    result = run_once(fig9_resources.run, quick=not full_scale())
    record_table(result, "fig9_resources")

    series = result.extras["series"]
    reductions = result.extras["reductions"]

    for name, by_npes in series.items():
        sizes = sorted(by_npes)
        # Sublinear growth: the *fraction* of peers each process
        # touches shrinks as the job grows (Section V-F).
        frac_small = by_npes[sizes[0]] / sizes[0]
        frac_large = by_npes[sizes[-1]] / sizes[-1]
        assert frac_large < frac_small, (name, frac_small, frac_large)

    # 2DHeat and EP have the smallest footprints of the suite (the
    # paper ranks 2DHeat best followed by EP; in our simulation the
    # two swap, because EP's only peers are its reduction-tree
    # neighbours — see EXPERIMENTS.md).
    largest = max(next(iter(series.values())))
    ranked = sorted(series, key=lambda name: series[name][largest])
    assert set(ranked[:2]) == {"2DHeat", "EP"}

    # Reduction vs the static design's N endpoints/process.
    for name, red in reductions.items():
        floor = 90.0 if full_scale() else 60.0
        assert red > floor, (name, red)

"""Table I: average communicating peers per process."""

from repro.bench.experiments import table1_peers

from conftest import full_scale


def test_table1_peers(run_once, record_table):
    npes = 256 if full_scale() else 64
    result = run_once(table1_peers.run, npes=npes, quick=not full_scale())
    record_table(result, "table1_peers")

    peers = result.extras["peers"]
    # Every application talks to a small subset of its peers.
    for name, value in peers.items():
        assert value < npes * 0.35, (name, value)
    # EP (reduction-only) is the sparsest of the suite.
    assert peers["EP"] == min(peers.values())
    # The stencil/ADI codes are all in the same one-digit band.
    for name in ("BT", "SP", "MG", "2DHeat"):
        assert 2.0 <= peers[name] <= 20.0, (name, peers[name])

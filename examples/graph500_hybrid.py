#!/usr/bin/env python
"""Hybrid MPI+OpenSHMEM Graph500 (paper Section V-E / Figure 8b).

Generates a Kronecker graph, runs level-synchronised hybrid BFS from
several roots, validates the BFS trees, and compares static vs
on-demand connection management.

    python examples/graph500_hybrid.py [npes] [scale]
"""

import sys

from repro.apps import Graph500Hybrid
from repro.bench import CURRENT, PROPOSED, fmt_us, render_table, run_job


def main() -> None:
    npes = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 9

    rows = []
    for label, config in (("static", CURRENT), ("on-demand", PROPOSED)):
        app = Graph500Hybrid(scale=scale, edgefactor=16, nroots=3)
        result = run_job(app, npes, config.evolve(heap_backing_kb=4096),
                         testbed="A")
        stats = result.app_results[0]["bfs"]
        visited = stats[0]["visited"]
        errors = sum(b["errors"] for b in stats)
        rows.append([
            label,
            fmt_us(result.wall_time_us),
            len(stats),
            visited,
            "PASS" if errors == 0 else f"{errors} errors",
        ])
    print(render_table(
        f"hybrid Graph500, scale {scale} "
        f"({2**scale} vertices, {16 * 2**scale} edges), {npes} PEs",
        ["runtime", "wall time", "roots", "visited", "validation"],
        rows,
        note="paper Figure 8(b): <2% difference between the schemes",
    ))


if __name__ == "__main__":
    main()

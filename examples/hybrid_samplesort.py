#!/usr/bin/env python
"""Hybrid MPI+OpenSHMEM sample sort (paper reference [6] workload).

MPI does the control plane (sampling, splitters, reductions);
OpenSHMEM does the data plane (atomic slot reservation + one-sided
record delivery).  Both ride the same on-demand connections — the
unified-runtime property of MVAPICH2-X the paper builds on.

    python examples/hybrid_samplesort.py [npes] [records_per_pe]
"""

import sys

from repro.apps import HybridSampleSort
from repro.bench import CURRENT, PROPOSED, fmt_us, render_table, run_job


def main() -> None:
    npes = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 2048

    rows = []
    for label, config in (("static", CURRENT), ("on-demand", PROPOSED)):
        result = run_job(
            HybridSampleSort(records_per_pe=records), npes,
            config.evolve(heap_backing_kb=2048), testbed="A",
        )
        res = result.app_results[0]
        ok = all(
            r["locally_sorted"] and r["boundary_ordered"]
            for r in result.app_results
        )
        rows.append([
            label,
            fmt_us(result.wall_time_us),
            res["total"],
            f"{max(r['imbalance'] for r in result.app_results):.2f}",
            f"{result.resources.mean_active_peers:.1f}",
            "PASS" if ok else "FAIL",
        ])
    print(render_table(
        f"hybrid sample sort: {npes} PEs x {records} records",
        ["runtime", "wall time", "records", "worst imbalance",
         "peers/PE", "sorted"],
        rows,
        note="MPI control plane + OpenSHMEM data plane over shared "
             "on-demand connections",
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""NAS campaign: regenerate the paper's Figure 8(a) comparison.

Runs the four NAS skeletons (BT, EP, MG, SP) under both connection
designs and prints total execution times and the on-demand improvement
— the paper reports 18-35% at 256 processes / class B.

    python examples/nas_campaign.py [npes] [class]
"""

import sys

from repro.apps import NasBT, NasEP, NasMG, NasSP
from repro.bench import CURRENT, PROPOSED, fmt_us, render_table, run_job


def main() -> None:
    npes = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    nas_class = sys.argv[2] if len(sys.argv) > 2 else "S"
    apps = [
        NasBT(nas_class),
        NasEP(nas_class, real_pairs=1000),
        NasMG(nas_class, iters=4),
        NasSP(nas_class),
    ]
    rows = []
    for app in apps:
        static = run_job(app, npes, CURRENT.evolve(heap_backing_kb=2048),
                         testbed="A")
        ondemand = run_job(app, npes, PROPOSED.evolve(heap_backing_kb=2048),
                           testbed="A")
        win = (1 - ondemand.wall_time_us / static.wall_time_us) * 100
        rows.append([
            app.name.upper(),
            fmt_us(static.wall_time_us),
            fmt_us(ondemand.wall_time_us),
            f"{win:.1f}%",
            f"{ondemand.resources.mean_active_peers:.1f}",
        ])
    print(render_table(
        f"NAS class {nas_class} at {npes} PEs (Cluster-A)",
        ["benchmark", "static", "on-demand", "improvement", "peers/PE"],
        rows,
        note="paper Figure 8(a): 18-35% improvement at 256 PEs / class B",
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: write an OpenSHMEM program and run it both ways.

Runs a tiny ring-exchange program on a simulated 16-process cluster,
once with the baseline static (fully connected) runtime and once with
the paper's on-demand design, and prints what each cost.

    python examples/quickstart.py
"""

import numpy as np

from repro.apps import Application
from repro.core import Job, RuntimeConfig


class RingExchange(Application):
    """Each PE puts a token to its right neighbour, then reduces."""

    name = "ring"

    def run(self, pe):
        f8 = np.dtype(np.float64).itemsize
        slot = pe.shmalloc(f8)       # where my left neighbour writes
        src = pe.shmalloc(f8)        # reduction input
        dst = pe.shmalloc(f8)        # reduction output
        yield from pe.barrier_all()

        right = (pe.mype + 1) % pe.npes
        yield from pe.put_value(right, slot, pe.mype * 100, dtype=np.float64)
        yield from pe.barrier_all()

        received = float(pe.view(slot, np.float64, 1)[0])
        pe.view(src, np.float64, 1)[0] = received
        yield from pe.sum_to_all(src, dst, 1)
        total = float(pe.view(dst, np.float64, 1)[0])
        return {"received": received, "global_sum": total}


def main() -> None:
    npes = 16
    for config in (RuntimeConfig.current(), RuntimeConfig.proposed()):
        job = Job(npes=npes, config=config)
        result = job.run(RingExchange())
        r0 = result.app_results[0]
        print(f"--- {config.label} ---")
        print(f"  PE0 received token: {r0['received']:.0f} "
              f"(from PE {npes - 1})")
        print(f"  global sum: {r0['global_sum']:.0f} "
              f"(expected {sum(r * 100 for r in range(npes))})")
        print(f"  start_pes (mean): {result.startup.mean_us / 1e3:.1f} ms")
        print(f"  job wall clock:   {result.wall_time_s:.3f} s")
        print(f"  endpoints/PE:     {result.resources.mean_endpoints:.1f}")
        print(f"  peers touched/PE: {result.resources.mean_active_peers:.1f}")
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Startup scaling sweep: regenerate the paper's Figure 5(a).

Measures ``start_pes`` and Hello World wall time for both designs on
simulated Stampede (Cluster-B, 16 ppn) at growing job sizes.  With the
default sizes this takes a couple of minutes; pass explicit sizes to
go bigger (the paper sweeps to 8,192).

    python examples/startup_at_scale.py [npes ...]
    python examples/startup_at_scale.py --scale    # on-demand only, to 65,536

``--scale`` runs the proposed design alone far past the paper
(16K/32K/65,536 PEs — minutes on one core, ~7 GB RSS at the top).
"""

import sys

from repro.bench.experiments import fig5_startup


def main() -> None:
    argv = sys.argv[1:]
    if argv and argv[0] == "--scale":
        sizes = [int(a) for a in argv[1:]] or None
        print(fig5_startup.run_scale(sizes=sizes).render())
        return
    sizes = [int(a) for a in argv] or [128, 512, 2048, 4096]
    result = fig5_startup.run(sizes=sizes)
    print(result.render())
    breakdown = fig5_startup.run_breakdown(sizes=sizes[:3])
    print(breakdown.render())


if __name__ == "__main__":
    main()

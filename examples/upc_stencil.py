#!/usr/bin/env python
"""UPC-style programming over the same runtime (paper future work).

The paper's conclusion says the on-demand design applies to other PGAS
languages (UPC, CAF).  This example writes a upc_forall-style
owner-computes relaxation over a block-cyclic ``shared [2] double``
array and shows it inherits on-demand connections transparently.

    python examples/upc_stencil.py [npes] [n]
"""

import sys

import numpy as np

from repro.apps import Application
from repro.core import Job, RuntimeConfig
from repro.upc import SharedArray, upc_all_reduce, upc_barrier


class UpcRelaxation(Application):
    name = "upc-relaxation"

    def __init__(self, n: int = 64, sweeps: int = 10) -> None:
        self.n = n
        self.sweeps = sweeps

    def run(self, pe):
        # shared [2] double A[n]; fixed endpoints, relax the interior.
        arr = SharedArray(pe, total=self.n, block=2)
        yield from upc_barrier(pe)
        for i in arr.my_indices():
            yield from arr.put(i, 0.0)
        if arr.has_affinity(self.n - 1):
            yield from arr.put(self.n - 1, 100.0)
        yield from upc_barrier(pe)

        for _ in range(self.sweeps):
            new = {}
            for i in arr.my_indices():          # upc_forall(...; &A[i])
                if 0 < i < self.n - 1:
                    left = yield from arr.get(i - 1)
                    right = yield from arr.get(i + 1)
                    new[i] = 0.5 * (left + right)
            yield from upc_barrier(pe)
            for i, v in new.items():
                yield from arr.put(i, v)
            yield from upc_barrier(pe)

        field = yield from arr.memget(0, self.n)
        norm = yield from upc_all_reduce(pe, float(np.sum(field)) / pe.npes)
        return {"field": field, "norm": norm}


def main() -> None:
    npes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    job = Job(npes=npes, config=RuntimeConfig.proposed())
    result = job.run(UpcRelaxation(n=n))
    field = result.app_results[0]["field"]
    print(f"UPC relaxation on {npes} threads, shared [2] double A[{n}]")
    print("field head:", np.array2string(field[:8], precision=3))
    print("field tail:", np.array2string(field[-8:], precision=3))
    print(f"monotone toward the hot end: "
          f"{bool(np.all(np.diff(field[1:]) >= -1e-12))}")
    print(f"connections/PE: {result.resources.mean_fabric_peers:.1f} "
          f"(on-demand; static would be {npes})")


if __name__ == "__main__":
    main()

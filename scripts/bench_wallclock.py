#!/usr/bin/env python
"""Wall-clock benchmark trajectory for the DES kernel.

Runs a fixed, deterministic suite of simulations and records how long
the *simulator itself* takes (host wall-clock, not simulated time):

* ``startup_hello_512`` / ``startup_hello_1024`` — Figure 5 startup,
  on-demand config (the paper's headline scaling case);
* ``startup_hello_current_512`` — same machine, static (baseline)
  connection mode, which stresses the full-wireup path;
* ``heat2d_64pe`` — an application with a real communication pattern
  (halo exchange + reductions);
* ``fig6_put_latency`` — the Figure 6 put-latency timing loop;
* ``fig5_scale_262144_macro`` / ``fig5_scale_1048576_macro`` — the
  fig5 scale curve's far points through the analytical phase-model
  layer (``macro=True``): no simulator, no events, so the profiled leg
  is skipped and ``sim_time_us`` is the only deterministic field.

Every case also records ``peak_rss_kb`` (the ``getrusage`` high-water
after the case — process-wide and monotone across the suite), so the
JSON tracks memory headroom alongside wall time.

Each case is timed ``--repeats`` times and the **minimum** is reported:
scheduling noise on a shared host only ever adds time, so min-of-N is
the robust estimator.  A separate profiled run (opt-in
:class:`repro.sim.profile.KernelProfile`) records deterministic event
counts and the microtask-queue hit ratio — these do not vary between
hosts and make regressions diagnosable.

Results are written to ``BENCH_wallclock.json`` at the repo root,
side by side with the recorded pre-optimisation baseline numbers
(min-of-5 on the same reference host, captured immediately before the
fast-path kernel landed).

A second suite, ``--sweep``, times the :mod:`repro.exec` sweep runner:
the same deterministic job grid is executed serially (one in-process
worker) and in parallel (process pool), the outputs are checked for
byte-identity, and serial/parallel wall times plus the speedup land in
``BENCH_sweep.json`` together with the ``worker_policy`` dict from
:func:`repro.exec.resolve_workers_info`.  On a single-core host the
policy resolves to the serial fallback, so the suite skips the
pointless fork-overhead "parallel" leg and records
``mode: serial-fallback`` instead of a sub-1x speedup.

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py            # full
    PYTHONPATH=src python scripts/bench_wallclock.py --quick    # CI smoke
    PYTHONPATH=src python scripts/bench_wallclock.py --sweep    # sweep suite
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import HelloWorld  # noqa: E402
from repro.apps.heat2d import Heat2D  # noqa: E402
from repro.bench.microbench import PutLatency  # noqa: E402
from repro.cluster import cluster_a, cluster_b  # noqa: E402
from repro.core import Job, RuntimeConfig  # noqa: E402
from repro.exec import JobSpec, resolve_workers_info, run_sweep  # noqa: E402
from repro.sim.profile import KernelProfile  # noqa: E402


# ----------------------------------------------------------------------
# the suite (fixed seeds/configs: every run is deterministic)
# ----------------------------------------------------------------------
def _startup(npes: int, mode: str = "proposed"):
    config = (RuntimeConfig.proposed() if mode == "proposed"
              else RuntimeConfig.current())
    job = Job(npes=npes, config=config, cluster=cluster_b(npes, ppn=32))
    return job, HelloWorld()


def _macro_startup(npes: int):
    job = Job(npes=npes, config=RuntimeConfig.proposed(),
              cluster=cluster_b(npes, ppn=32), macro=True)
    return job, HelloWorld()


CASES = {
    "startup_hello_512": lambda: _startup(512),
    "startup_hello_1024": lambda: _startup(1024),
    "startup_hello_current_512": lambda: _startup(512, mode="current"),
    "heat2d_64pe": lambda: (
        Job(npes=64, config=RuntimeConfig.proposed(),
            cluster=cluster_a(64, ppn=8)),
        Heat2D(n=64, iters=10, check_every=5),
    ),
    "fig6_put_latency": lambda: (
        Job(npes=2, config=RuntimeConfig.proposed(heap_backing_kb=2048),
            cluster=cluster_a(2, ppn=1)),
        PutLatency(sizes=[8, 4096, 65536], iterations=200),
    ),
    # Macro-layer scale points: the fig5 curve past the exact engine's
    # budget.  No KernelProfile leg (macro jobs schedule no events);
    # the deterministic field is sim_time_us alone.
    "fig5_scale_262144_macro": lambda: _macro_startup(262144),
    "fig5_scale_1048576_macro": lambda: _macro_startup(1048576),
}

QUICK_CASES = {
    "startup_hello_128": lambda: _startup(128),
    "heat2d_16pe": lambda: (
        Job(npes=16, config=RuntimeConfig.proposed(),
            cluster=cluster_a(16, ppn=8)),
        Heat2D(n=32, iters=4, check_every=2),
    ),
    "fig6_put_latency_quick": lambda: (
        Job(npes=2, config=RuntimeConfig.proposed(heap_backing_kb=2048),
            cluster=cluster_a(2, ppn=1)),
        PutLatency(sizes=[8, 4096], iterations=20),
    ),
}

#: Pre-optimisation wall-clock minima (seconds) for the all-heap
#: kernel, captured on the reference host via *interleaved* A/B runs
#: (3 rounds of min-of-3 per side, old/new alternating, `git stash`
#: swapping the kernel between rounds) so host noise hits both sides
#: equally.  The acceptance target is >= 2x on ``startup_hello_1024``;
#: the same A/B measured the optimised kernel at 0.389 s there (2.31x).
BASELINE_S = {
    "startup_hello_512": 0.364,
    "startup_hello_1024": 0.897,
    "startup_hello_current_512": 0.488,
    "heat2d_64pe": 0.253,
    "fig6_put_latency": 0.024,
}


def run_case(name: str, factory, repeats: int) -> dict:
    """Time one case ``repeats`` times; add one profiled run."""
    times = []
    sim_time_us = None
    macro = False
    for _ in range(repeats):
        t0 = time.perf_counter()
        job, app = factory()
        result = job.run(app)
        times.append(time.perf_counter() - t0)
        sim_time_us = result.wall_time_us
        macro = job.sim is None

    # getrusage's high-water is process-wide and monotone, so this is
    # "peak RSS after this case" — still the number that matters for
    # the memory-budget question (can this suite run on an N-GB host?).
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    entry = {
        "wall_s_min": round(min(times), 4),
        "wall_s_all": [round(t, 4) for t in times],
        "sim_time_us": sim_time_us,
        "peak_rss_kb": peak_rss_kb,
    }
    if macro:
        # Macro jobs have no simulator (job.sim is None): nothing to
        # profile, and no event counts — sim_time_us is the only
        # deterministic field.
        entry["engine"] = "macro"
    else:
        # Deterministic event statistics from a separate profiled run
        # (the profiling hook costs a little, so it never pollutes the
        # timings).
        job, app = factory()
        prof = KernelProfile().attach(job.sim)
        job.run(app)
        snap = prof.snapshot(top=8)
        entry.update({
            "events_scheduled": snap["events_scheduled"],
            "events_dispatched": snap["events_dispatched"],
            "micro_ratio": round(snap["micro_ratio"], 4),
            "events_batched": snap["events_batched"],
            "waves_scheduled": snap["waves_scheduled"],
            "batch_ratio": round(snap["batch_ratio"], 4),
            "batch_sizes": snap["batch_sizes"],
            "top_callbacks": snap["by_module"],
        })
    base = BASELINE_S.get(name)
    if base is not None:
        entry["baseline_s"] = base
        entry["speedup"] = round(base / min(times), 2)
    return entry


# ----------------------------------------------------------------------
# sweep suite — serial vs parallel execution of one deterministic grid
# ----------------------------------------------------------------------
def _sweep_grid(quick: bool):
    sizes = [64, 128] if quick else [256, 512, 1024]
    return [
        JobSpec(app=HelloWorld(), npes=npes, config=config, testbed="B",
                ppn=32)
        for npes in sizes
        for config in (RuntimeConfig.current(), RuntimeConfig.proposed())
    ]


def _sweep_fingerprint(specs, results) -> list:
    """Canonical per-job summary; equality here means identical output."""
    rows = []
    for spec, result in zip(specs, results):
        rows.append({
            "key": spec.key,
            "startup_mean_us": round(result.startup.mean_us, 6),
            "sim_wall_time_us": round(result.wall_time_us, 6),
            "connections": round(result.resources.mean_connections, 6),
        })
    return rows


def run_sweep_suite(args) -> dict:
    # REPRO_PAR=0 would silently force both legs serial; the suite's
    # whole point is the serial/parallel comparison, so drop it.
    if os.environ.pop("REPRO_PAR", None) is not None:
        print("[sweep] ignoring REPRO_PAR for the serial/parallel A/B",
              flush=True)
    specs = _sweep_grid(args.quick)
    policy = resolve_workers_info(args.workers, njobs=len(specs))
    workers = policy["workers"]
    repeats = args.repeats or (1 if args.quick else 3)

    report = {
        "suite": "sweep-quick" if args.quick else "sweep",
        "njobs": len(specs),
        "worker_policy": policy,
        "host_cpus": policy["host_cpus"],
        "repeats": repeats,
    }

    if workers <= 1:
        # Serial fallback (single-core host or kill switch): a process
        # pool here only pays fork overhead for a sub-1x "speedup", so
        # record the fallback honestly instead of timing a fiction.
        serial_times = []
        serial_fp = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            results = run_sweep(specs, max_workers=1)
            serial_times.append(time.perf_counter() - t0)
            serial_fp = _sweep_fingerprint(specs, results)
        report.update({
            "mode": "serial-fallback",
            "fallback_reason": policy["reason"],
            "serial_s_min": round(min(serial_times), 4),
            "parallel_s_min": None,
            "speedup": None,
            "identical_output": None,
            "jobs": serial_fp,
        })
        print(f"[sweep] {len(specs)} jobs serial on "
              f"{policy['host_cpus']} cpu(s): "
              f"{report['serial_s_min']}s "
              f"(parallel leg skipped: {policy['reason']})", flush=True)
        return report

    serial_times, parallel_times = [], []
    serial_fp = parallel_fp = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = run_sweep(specs, max_workers=1)
        serial_times.append(time.perf_counter() - t0)
        serial_fp = _sweep_fingerprint(specs, results)

        t0 = time.perf_counter()
        results = run_sweep(specs, max_workers=workers)
        parallel_times.append(time.perf_counter() - t0)
        parallel_fp = _sweep_fingerprint(specs, results)

    identical = serial_fp == parallel_fp
    serial_s, parallel_s = min(serial_times), min(parallel_times)
    report.update({
        "mode": "parallel",
        "workers": workers,
        "serial_s_min": round(serial_s, 4),
        "parallel_s_min": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2),
        "identical_output": identical,
        "jobs": serial_fp,
    })
    print(f"[sweep] {len(specs)} jobs, {workers} workers on "
          f"{report['host_cpus']} cpus: serial {report['serial_s_min']}s, "
          f"parallel {report['parallel_s_min']}s "
          f"({report['speedup']}x), identical={identical}", flush=True)
    if not identical:
        raise SystemExit("[sweep] FATAL: parallel output differs from serial")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cases only (CI smoke test)")
    parser.add_argument("--sweep", action="store_true",
                        help="run the serial-vs-parallel sweep suite instead "
                             "(writes BENCH_sweep.json)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for --sweep (default: auto)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions per case (default 5, quick 2)")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default BENCH_wallclock.json "
                             "or BENCH_sweep.json at the repo root; "
                             "'-' to skip writing)")
    args = parser.parse_args(argv)

    if args.sweep:
        report = run_sweep_suite(args)
        if args.output != "-":
            out = (Path(args.output) if args.output
                   else REPO_ROOT / "BENCH_sweep.json")
            out.write_text(json.dumps(report, indent=2) + "\n")
            print(f"[bench] wrote {out}")
        return 0

    cases = QUICK_CASES if args.quick else CASES
    repeats = args.repeats or (2 if args.quick else 5)

    report = {
        "suite": "quick" if args.quick else "full",
        "repeats": repeats,
        "cases": {},
    }
    for name, factory in cases.items():
        print(f"[bench] {name} ...", flush=True)
        entry = run_case(name, factory, repeats)
        report["cases"][name] = entry
        extra = (f"  ({entry['speedup']}x vs {entry['baseline_s']}s baseline)"
                 if "speedup" in entry else "")
        if entry.get("engine") == "macro":
            print(f"[bench] {name}: {entry['wall_s_min']}s "
                  f"min-of-{repeats}, macro engine (no events), "
                  f"rss={entry['peak_rss_kb'] / 1024:.0f}MB{extra}",
                  flush=True)
        else:
            print(f"[bench] {name}: {entry['wall_s_min']}s min-of-{repeats}, "
                  f"{entry['events_scheduled']} events, "
                  f"micro_ratio={entry['micro_ratio']}, "
                  f"batch_ratio={entry['batch_ratio']} "
                  f"({entry['waves_scheduled']} waves)"
                  f"{extra}", flush=True)

    if args.output != "-":
        out = Path(args.output) if args.output else REPO_ROOT / "BENCH_wallclock.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[bench] wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI churn smoke: eviction/reconnect lifecycle at 512 PEs, audited.

Three gates, all on one job:

1. **Lifecycle**: a 512-PE churn epoch with idle eviction armed must
   actually churn — evictions and reconnects both strictly positive,
   and the steady-state footprint bounded (peak live connections well
   under the epochs x partners union the evict-never baseline leaks
   towards).

2. **Strict checking**: the whole run executes under the invariant
   sanitizer in strict mode.  Any drain-protocol bug — a QP destroyed
   with WRs in flight, a reconnect storm, a half-open pair at finalize
   — raises at the exact simulated instant instead of surfacing as a
   flaky benchmark number.

3. **Trace**: the flight recorder is on and the exported Chrome trace
   must validate structurally (matched flow arrows, well-formed
   events) and contain the lifecycle span types (``conduit.disconnect``
   on the initiator, ``conduit.drain`` on the target).

4. **Timeline**: the run samples the connection-footprint time-series,
   whose recorded ``conduit.peak_connections`` maximum must equal the
   scalar high-water mark the PEs report — the sampled timeline is a
   faithful view, not an approximation.  ``--footprint-csv FILE``
   writes the full series as CSV (uploaded as a CI artifact).

Usage::

    PYTHONPATH=src python scripts/churn_smoke.py            # defaults
    PYTHONPATH=src python scripts/churn_smoke.py --npes 128
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import ChurnWorkload  # noqa: E402
from repro.cluster import cluster_a  # noqa: E402
from repro.core import Job, RuntimeConfig  # noqa: E402
from repro.gasnet import LifecyclePolicy  # noqa: E402
from repro.obs import (  # noqa: E402
    series_peak,
    timeline_csv,
    validate_chrome_trace,
)

EPOCHS = 6
PARTNERS = 4
IDLE_GAP_US = 30_000.0


def churn_gate(npes: int, footprint_csv: str = None) -> bool:
    print(f"[churn-smoke] {npes}-PE churn epoch, strict sanitizer, "
          "flight recorder + timeline on ...", flush=True)
    t0 = time.perf_counter()
    app = ChurnWorkload(epochs=EPOCHS, partners=PARTNERS, requests=4,
                        idle_gap_us=IDLE_GAP_US)
    policy = LifecyclePolicy(policy="lru")
    job = Job(npes=npes, config=RuntimeConfig.proposed(lifecycle=policy),
              cluster=cluster_a(npes, ppn=8),
              observe={"timeline": True}, check=True)
    result = job.run(app)
    wall = time.perf_counter() - t0

    ok = True
    evictions = result.counters.get("conduit.evictions", 0)
    reconnects = result.counters.get("conduit.reconnects", 0)
    peak = max(r["peak_connections"] for r in result.app_results)
    final = max(r["final_connections"] for r in result.app_results)
    print(f"[churn-smoke] wall={wall:.1f}s evictions={evictions} "
          f"reconnects={reconnects} peak_conns={peak} "
          f"final_conns={final}", flush=True)
    if evictions <= 0 or reconnects <= 0:
        print("[churn-smoke] FAIL: the reaper never churned", flush=True)
        ok = False
    # Bounded footprint: the union of rotated peer sets approaches
    # epochs x partners; eviction must keep the peak near one epoch's
    # working set.
    if peak >= EPOCHS * PARTNERS:
        print(f"[churn-smoke] FAIL: peak {peak} reached the evict-never "
              f"union ({EPOCHS * PARTNERS})", flush=True)
        ok = False

    assert result.check is not None
    if result.check["strict"] is not True or result.check["violations"]:
        print(f"[churn-smoke] FAIL: sanitizer reported "
              f"{result.check['violations']}", flush=True)
        ok = False
    stats = result.check["stats"]
    print(f"[churn-smoke] sanitizer: evictions={stats['evictions']} "
          f"reconnects={stats['reconnects']} violations=0", flush=True)

    snapshot = result.telemetry["timeline"]
    tl_peak = series_peak(snapshot["series"]["conduit.peak_connections"])
    print(f"[churn-smoke] timeline: {snapshot['samples']} samples, "
          f"footprint peak {tl_peak}", flush=True)
    if int(tl_peak) != int(peak):
        print(f"[churn-smoke] FAIL: timeline peak {tl_peak} != scalar "
              f"peak {peak}", flush=True)
        ok = False
    if footprint_csv:
        Path(footprint_csv).write_text(timeline_csv(snapshot))
        print(f"[churn-smoke] wrote {footprint_csv}", flush=True)

    trace = job.obs.chrome_trace(label=f"churn-smoke {npes} PEs")
    phases = validate_chrome_trace(trace)
    names = {ev.get("name") for ev in trace["traceEvents"]}
    print(f"[churn-smoke] trace: {sum(phases.values())} events "
          f"{phases}", flush=True)
    for required in ("conduit.disconnect", "conduit.drain",
                     "conduit.connect", "conduit.serve"):
        if required not in names:
            print(f"[churn-smoke] FAIL: no {required!r} span in the "
                  "trace", flush=True)
            ok = False
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--npes", type=int, default=512,
                        help="churn job size (default 512)")
    parser.add_argument("--footprint-csv", default=None, metavar="FILE",
                        help="write the sampled timeline as CSV here")
    args = parser.parse_args(argv)

    if not churn_gate(args.npes, footprint_csv=args.footprint_csv):
        print("[churn-smoke] FAILED", flush=True)
        return 1
    print("[churn-smoke] all gates passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Perf-regression gate: fresh bench numbers vs the committed baseline.

Re-times the wall-clock suite (``scripts/bench_wallclock.py``) and
compares every case against the numbers committed in
``BENCH_wallclock.json``:

* **Deterministic fields** (``sim_time_us``, ``events_scheduled``,
  ``events_dispatched``) must match the baseline **exactly** — they do
  not vary between hosts, so any drift is a semantic change to the
  simulation, not noise.  A legitimate change (new feature altering
  event counts) means re-running ``bench_wallclock.py`` and committing
  the refreshed baseline alongside the code.
* **Wall time** (``wall_s_min``) may regress by at most ``--tolerance``
  (fractional, default 0.35 — CI hosts are noisy; min-of-N absorbs
  most of it but not all).  Speedups always pass.
* Cases present only in the fresh report (a bench entry added in the
  same change) are reported as ``NEW`` and never fail the gate — the
  baseline catches up when the refreshed JSON is committed.

Exit status: 0 when every case passes, 1 on any violation — unless
``--report-only`` is given, which prints the same report but always
exits 0 (the CI smoke mode: surfaces drift in the log without blocking
unrelated PRs on shared-runner noise).

Usage::

    PYTHONPATH=src python scripts/perf_gate.py                  # gate
    PYTHONPATH=src python scripts/perf_gate.py --report-only
    PYTHONPATH=src python scripts/perf_gate.py --fresh new.json # no re-run
    PYTHONPATH=src python scripts/perf_gate.py --cases heat2d_64pe
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Host-independent per-case fields: exact match required.
DETERMINISTIC_FIELDS = ("sim_time_us", "events_scheduled",
                        "events_dispatched")


def _load_bench_module():
    """Import scripts/bench_wallclock.py (not a package) for run_case."""
    path = REPO_ROOT / "scripts" / "bench_wallclock.py"
    spec = importlib.util.spec_from_file_location("bench_wallclock", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def measure_fresh(case_names, repeats: int) -> dict:
    """Re-time the named baseline cases in-process."""
    bench = _load_bench_module()
    fresh = {}
    for name in case_names:
        factory = bench.CASES.get(name) or bench.QUICK_CASES.get(name)
        if factory is None:
            print(f"[perf-gate] skip {name}: not in the bench suite",
                  flush=True)
            continue
        print(f"[perf-gate] timing {name} (min-of-{repeats}) ...",
              flush=True)
        fresh[name] = bench.run_case(name, factory, repeats)
    return fresh


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Return a list of human-readable violations (empty = pass)."""
    violations = []
    for name, base in sorted(baseline.items()):
        new = fresh.get(name)
        if new is None:
            violations.append(f"{name}: no fresh measurement")
            continue
        for field in DETERMINISTIC_FIELDS:
            if base.get(field) != new.get(field):
                violations.append(
                    f"{name}: {field} changed "
                    f"{base.get(field)} -> {new.get(field)} "
                    f"(deterministic field: exact match required — "
                    f"if intentional, re-run bench_wallclock.py and "
                    f"commit the new baseline)"
                )
        base_wall = base.get("wall_s_min")
        new_wall = new.get("wall_s_min")
        if base_wall is None or new_wall is None:
            violations.append(f"{name}: wall_s_min missing")
            continue
        limit = base_wall * (1.0 + tolerance)
        ratio = new_wall / base_wall if base_wall else float("inf")
        verdict = "OK" if new_wall <= limit else "REGRESSION"
        print(f"[perf-gate] {name}: wall {base_wall:.4f}s -> "
              f"{new_wall:.4f}s ({ratio:.2f}x, limit {limit:.4f}s) "
              f"{verdict}", flush=True)
        if new_wall > limit:
            violations.append(
                f"{name}: wall_s_min {new_wall:.4f}s exceeds "
                f"{base_wall:.4f}s * {1.0 + tolerance:.2f} = {limit:.4f}s"
            )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"[perf-gate] {name}: NEW (no baseline entry — reported, "
              f"not gated; commit a refreshed BENCH_wallclock.json to "
              f"start gating it)", flush=True)
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None, metavar="JSON",
                        help="committed baseline "
                             "(default BENCH_wallclock.json at repo root)")
    parser.add_argument("--fresh", default=None, metavar="JSON",
                        help="pre-measured report to compare instead of "
                             "re-timing (a bench_wallclock.py output)")
    parser.add_argument("--cases", nargs="*", default=None,
                        help="subset of case names (default: all baseline "
                             "cases)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per case (default 3)")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed fractional wall-time regression "
                             "(default 0.35)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but always exit 0")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    baseline_path = (Path(args.baseline) if args.baseline
                     else REPO_ROOT / "BENCH_wallclock.json")
    try:
        baseline = json.loads(baseline_path.read_text())["cases"]
    except (OSError, ValueError, KeyError) as exc:
        print(f"[perf-gate] cannot load baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 2
    if args.cases:
        unknown = sorted(set(args.cases) - set(baseline))
        if unknown:
            print(f"[perf-gate] not in baseline: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        baseline = {k: baseline[k] for k in args.cases}

    if args.fresh:
        try:
            fresh = json.loads(Path(args.fresh).read_text())["cases"]
        except (OSError, ValueError, KeyError) as exc:
            print(f"[perf-gate] cannot load fresh report {args.fresh}: "
                  f"{exc}", file=sys.stderr)
            return 2
    else:
        fresh = measure_fresh(sorted(baseline), args.repeats)

    violations = compare(baseline, fresh, args.tolerance)
    if violations:
        print(f"[perf-gate] {len(violations)} violation(s):", flush=True)
        for v in violations:
            print(f"[perf-gate]   {v}", flush=True)
        if args.report_only:
            print("[perf-gate] report-only mode: not failing the build",
                  flush=True)
            return 0
        return 1
    print("[perf-gate] all cases within tolerance", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

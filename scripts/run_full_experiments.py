#!/usr/bin/env python
"""Regenerate every paper table/figure at (near-)paper scale.

Writes rendered tables to ``benchmarks/results/full/``.  This is the
long version of ``pytest benchmarks/`` (REPRO_BENCH_FULL=1); expect it
to run for some minutes.

Each experiment internally declares its job grid through
``repro.exec.run_sweep``, so independent simulations fan out across
cores.  Control worker count with ``REPRO_PAR`` (``0``/``1`` forces
serial in-process execution, ``N`` uses N workers, unset auto-detects).
``REPRO_BENCH_SCALE=1`` additionally runs the 16K/32K/65,536-PE
on-demand startup curve (minutes of wall clock, ~7 GB RSS at the top).

Exits non-zero if any experiment fails; failures are collected and
summarised rather than silently swallowed.
"""

import os
import sys
import time
import traceback
from pathlib import Path

from repro.bench.experiments import (
    ablation_barrier,
    ablation_piggyback,
    ablation_pmi,
    ablation_qp_cache,
    fig1_breakdown,
    fig2_radar,
    fig5_startup,
    fig6_p2p,
    fig7_collectives,
    fig8a_nas,
    fig8b_graph500,
    fig9_resources,
    table1_peers,
)

OUT = Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "full"

RUNS = [
    ("fig1_breakdown", lambda: fig1_breakdown.run(quick=False)),
    ("table1_peers", lambda: table1_peers.run(npes=256, quick=False)),
    ("fig2_radar", lambda: fig2_radar.run(npes=64, startup_npes=1024)),
    ("fig5a_startup", lambda: fig5_startup.run(quick=False)),
    ("fig5b_breakdown", lambda: fig5_startup.run_breakdown(quick=False)),
    ("fig6ab_put_get", lambda: fig6_p2p.run(iterations=1000, quick=False)),
    ("fig6c_atomics", lambda: fig6_p2p.run_atomics(iterations=1000)),
    ("fig7ab_collect_reduce", lambda: fig7_collectives.run(
        npes=512, iterations=20, quick=False)),
    ("fig7c_barrier", lambda: fig7_collectives.run_barrier(quick=False)),
    ("fig8a_nas", lambda: fig8a_nas.run(npes=256, nas_class="B",
                                        quick=False)),
    ("fig8b_graph500", lambda: fig8b_graph500.run(quick=False)),
    ("fig9_resources", lambda: fig9_resources.run(quick=False)),
    ("ablation_d1_piggyback", lambda: ablation_piggyback.run(npes=32)),
    ("ablation_d2_pmi", lambda: ablation_pmi.run(quick=False)),
    ("ablation_d3_barrier", lambda: ablation_barrier.run(quick=False)),
    ("ablation_d5_qp_cache", lambda: ablation_qp_cache.run()),
]

# The 16K/32K/65,536-PE on-demand curve costs minutes and ~7 GB RSS at
# the top size, so it only joins the default run when asked for
# (REPRO_BENCH_SCALE=1) — naming it explicitly on the command line
# works regardless.
RUNS.append(("fig5_scale", lambda: fig5_startup.run_scale()))
if not os.environ.get("REPRO_BENCH_SCALE"):
    _DEFAULT_SKIP = {"fig5_scale"}
else:
    _DEFAULT_SKIP = set()


def main() -> int:
    OUT.mkdir(parents=True, exist_ok=True)
    only = set(sys.argv[1:])
    unknown = only - {name for name, _ in RUNS}
    if unknown:
        print(f"unknown experiment(s): {', '.join(sorted(unknown))}")
        print("available: " + ", ".join(name for name, _ in RUNS))
        return 2
    total_start = time.time()
    done: list = []
    failures: list = []
    for name, fn in RUNS:
        if only and name not in only:
            continue
        if not only and name in _DEFAULT_SKIP:
            print(f"[{name}] skipped (set REPRO_BENCH_SCALE=1 or name it "
                  "explicitly)", flush=True)
            continue
        start = time.time()
        print(f"[{name}] running ...", flush=True)
        try:
            result = fn()
        except Exception as exc:
            failures.append((name, exc))
            traceback.print_exc()
            print(f"[{name}] FAILED: {exc!r}", flush=True)
            continue
        elapsed = time.time() - start
        text = result.render()
        (OUT / f"{name}.txt").write_text(text)
        (OUT / f"{name}.csv").write_text(result.csv())
        print(text, flush=True)
        print(f"[{name}] done in {elapsed:.0f}s", flush=True)
        done.append((name, elapsed))

    print(f"\n=== summary ({time.time() - total_start:.0f}s total) ===")
    for name, elapsed in done:
        print(f"  ok      {name} ({elapsed:.0f}s)")
    for name, exc in failures:
        print(f"  FAILED  {name}: {exc!r}")
    if failures:
        print(f"{len(failures)} of {len(done) + len(failures)} "
              "experiments failed")
        return 1
    print(f"all {len(done)} experiments passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

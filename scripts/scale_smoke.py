#!/usr/bin/env python
"""CI scale smoke: the calendar-queue kernel at real size, on a budget.

Three gates, all cheap enough for every merge:

1. **Order**: the 128-PE golden trace must stay byte-identical with
   batching and the calendar queue enabled, and the same job re-run on
   the reference heap scheduler must produce the *same bytes* — the
   fast kernel is a constant-factor optimisation, never a semantic one.

2. **Macro scale**: a 262,144-PE on-demand startup through the
   analytical phase-model layer (``macro=True``) must finish inside
   ``--macro-budget`` seconds and ``--macro-rss-mb`` peak RSS.  The
   macro layer's whole value is O(nodes) cost at any npes; a stray
   per-PE loop or per-PE allocation shows up here immediately.  This
   gate runs *before* the exact gate so the process RSS high-water
   reflects the macro run, not the much larger exact-engine footprint.

3. **Scale**: a 16,384-PE on-demand startup (one fig5 scale point) on
   the exact engine must finish inside ``--budget`` wall-clock
   seconds.  The point of the calendar-queue scheduler is that dense
   startup waves are O(1) amortized — a regression to heap-like
   behaviour (or an accidental O(N^2) anywhere in the startup path)
   blows the budget immediately rather than surfacing months later on
   someone's 65,536-PE run.

Usage::

    PYTHONPATH=src python scripts/scale_smoke.py              # defaults
    PYTHONPATH=src python scripts/scale_smoke.py --npes 4096 --budget 60
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import HelloWorld  # noqa: E402
from repro.cluster import cluster_b  # noqa: E402
from repro.core import Job, RuntimeConfig  # noqa: E402

GOLDEN = REPO_ROOT / "tests" / "data" / "golden_trace_ondemand_128.txt"


def scale_gate(npes: int, budget_s: float) -> bool:
    print(f"[scale-smoke] {npes}-PE on-demand startup "
          f"(budget {budget_s:.0f}s) ...", flush=True)
    t0 = time.perf_counter()
    job = Job(npes=npes, config=RuntimeConfig.proposed(),
              cluster=cluster_b(npes, ppn=32))
    result = job.run(HelloWorld())
    wall = time.perf_counter() - t0
    ok = wall <= budget_s
    print(f"[scale-smoke] {npes}-PE: wall={wall:.1f}s "
          f"sim={result.wall_time_us / 1e6:.2f}s "
          f"start_pes={result.startup.mean_us / 1e3:.1f}ms "
          f"-> {'OK' if ok else 'OVER BUDGET'}", flush=True)
    return ok


def macro_gate(npes: int, budget_s: float, rss_budget_mb: float) -> bool:
    print(f"[scale-smoke] {npes}-PE macro startup "
          f"(budget {budget_s:.0f}s / {rss_budget_mb:.0f}MB RSS) ...",
          flush=True)
    t0 = time.perf_counter()
    job = Job(npes=npes, config=RuntimeConfig.proposed(),
              cluster=cluster_b(npes, ppn=32), macro=True)
    result = job.run(HelloWorld())
    wall = time.perf_counter() - t0
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    ok = wall <= budget_s and rss_mb <= rss_budget_mb
    print(f"[scale-smoke] {npes}-PE macro: wall={wall:.1f}s "
          f"rss={rss_mb:.0f}MB sim={result.wall_time_us / 1e6:.2f}s "
          f"start_pes={result.startup.mean_us / 1e3:.1f}ms "
          f"-> {'OK' if ok else 'OVER BUDGET'}", flush=True)
    return ok


def _trace(scheduler: str) -> list:
    job = Job(npes=128, config=RuntimeConfig.proposed(),
              cluster=cluster_b(128, ppn=16), trace=True,
              scheduler=scheduler)
    job.run(HelloWorld())
    return job.tracer.formatted()


def golden_gate() -> bool:
    print("[scale-smoke] 128-PE golden trace, calendar vs heap vs "
          "fixture ...", flush=True)
    want = GOLDEN.read_text().splitlines()
    ok = True
    for scheduler in ("calendar", "heap"):
        got = _trace(scheduler)
        if got != want:
            ok = False
            for i, (g, w) in enumerate(zip(got, want)):
                if g != w:
                    print(f"[scale-smoke] {scheduler}: trace diverges at "
                          f"line {i + 1}:\n  got:  {g}\n  want: {w}",
                          flush=True)
                    break
            else:
                print(f"[scale-smoke] {scheduler}: trace length "
                      f"{len(got)} != fixture {len(want)}", flush=True)
        else:
            print(f"[scale-smoke] {scheduler}: {len(got)} lines, "
                  "byte-identical", flush=True)
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--npes", type=int, default=16384,
                        help="scale-gate job size (default 16384)")
    parser.add_argument("--budget", type=float, default=300.0,
                        help="wall-clock budget in seconds (default 300; "
                             "the reference 1-core host runs 16K PEs in "
                             "~20s, so 300 absorbs slow shared runners)")
    parser.add_argument("--macro-npes", type=int, default=262144,
                        help="macro-gate job size (default 262144)")
    parser.add_argument("--macro-budget", type=float, default=120.0,
                        help="macro-gate wall budget in seconds (default "
                             "120; the reference host models 262,144 PEs "
                             "in ~3s)")
    parser.add_argument("--macro-rss-mb", type=float, default=4096.0,
                        help="macro-gate peak-RSS budget in MB (default "
                             "4096; the reference host peaks ~300MB)")
    parser.add_argument("--skip-scale", action="store_true",
                        help="golden-trace gate only")
    args = parser.parse_args(argv)

    ok = golden_gate()
    if not args.skip_scale:
        # Macro first: getrusage's high-water is process-wide, so the
        # RSS budget is only meaningful before the exact engine runs.
        ok = macro_gate(args.macro_npes, args.macro_budget,
                        args.macro_rss_mb) and ok
        ok = scale_gate(args.npes, args.budget) and ok
    if not ok:
        print("[scale-smoke] FAILED", flush=True)
        return 1
    print("[scale-smoke] all gates passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI serve smoke: the multi-tenant sweep service over a skewed trace.

Replays a synthetic multi-tenant arrival trace (Zipf-skewed spec
popularity, weighted tenants, priorities) through ``repro.serve`` with
a disk-backed content-addressed result cache, then gates on the
service's headline guarantees:

1. **Hit ratio**: the skewed trace must actually dedupe — cold replay
   hit ratio (hits + in-flight dedup over admitted) strictly positive,
   and a second replay of the same trace against the warm cache must
   be answered *entirely* from the cache (hit ratio 1.0, zero
   executions).

2. **Zero identity collisions**: every distinct canonical spec in the
   trace maps to a distinct content hash (the service cross-checks
   canonical JSON per hash as it goes), and no two semantically
   different specs share one.

3. **Byte-identical hit replay**: for every distinct spec in the
   trace, a fresh in-process ``execute(spec)`` pickles to exactly the
   bytes the cache serves — counters, StartupReport, app results, the
   lot.  A cache hit IS the fresh run.

4. **Fairness / tenancy sanity**: every tenant that submitted work got
   answers; per-tenant latency percentiles and the weighted fairness
   index are printed for the log.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py             # defaults
    PYTHONPATH=src python scripts/serve_smoke.py --arrivals 96
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import HelloWorld  # noqa: E402
from repro.core import RuntimeConfig  # noqa: E402
from repro.exec import JobSpec, execute, spec_hash  # noqa: E402
from repro.faults import FaultPlan, UDFault  # noqa: E402
from repro.obs import prometheus_text  # noqa: E402
from repro.serve import (  # noqa: E402
    ResultCache,
    ResultStore,
    SweepService,
    canonical_payload,
    synthetic_trace,
)

TENANTS = {"alpha": 3.0, "beta": 2.0, "gamma": 1.0}


def spec_universe() -> list:
    """A small but semantically diverse grid: sizes x designs, plus a
    cost-override, fault-plan, and seed variant — specs that differ in
    every field the content hash must separate."""
    lossy = FaultPlan(name="loss", ud=(UDFault("drop", prob=0.1),))
    universe = [
        JobSpec(app=HelloWorld(), npes=npes, config=config)
        for npes in (4, 8)
        for config in (RuntimeConfig.proposed(), RuntimeConfig.current())
    ]
    universe += [
        JobSpec(app=HelloWorld(), npes=8, config=RuntimeConfig.proposed(),
                cost_overrides={"qp_cache_entries": 8}),
        JobSpec(app=HelloWorld(), npes=8, config=RuntimeConfig.proposed(),
                faults=lossy),
        JobSpec(app=HelloWorld(), npes=8, config=RuntimeConfig.proposed(),
                seed=99),
        JobSpec(app=HelloWorld(), npes=4, config=RuntimeConfig.proposed(),
                testbed="B"),
    ]
    return universe


def serve_gate(arrivals: int, cache_dir: str, seed: int,
               prom_out: str = None) -> bool:
    specs = spec_universe()
    hashes = {spec_hash(s) for s in specs}
    ok = True
    if len(hashes) != len(specs):
        print(f"[serve-smoke] FAIL: {len(specs)} distinct specs map to "
              f"{len(hashes)} hashes", flush=True)
        ok = False

    trace = synthetic_trace(specs, TENANTS, arrivals=arrivals, seed=seed,
                            mean_interarrival_us=20_000.0, skew=1.2)
    print(f"[serve-smoke] {len(specs)}-spec universe, {arrivals} arrivals, "
          f"{len(TENANTS)} tenants, cache at {cache_dir}", flush=True)

    t0 = time.perf_counter()
    cache = ResultCache(path=cache_dir, memory_budget=8 << 20)
    service = SweepService(cache, TENANTS, concurrency=2, queue_limit=16,
                           hit_cost_us=50.0)
    report = service.run_trace(trace)
    print(f"[serve-smoke] cold replay ({time.perf_counter() - t0:.1f}s "
          "wall):", flush=True)
    print(report.format(), flush=True)

    if report.hit_ratio <= 0:
        print("[serve-smoke] FAIL: cold replay hit ratio is zero — the "
              "skewed trace never deduped", flush=True)
        ok = False
    if report.identity_collisions:
        print(f"[serve-smoke] FAIL: {report.identity_collisions} identity "
              "collision(s)", flush=True)
        ok = False
    if report.rejected != report.submitted - report.admitted:
        print("[serve-smoke] FAIL: admission bookkeeping inconsistent",
              flush=True)
        ok = False
    for name, tstats in report.tenants.items():
        if tstats["submitted"] and not tstats["completed"]:
            print(f"[serve-smoke] FAIL: tenant {name} submitted "
                  f"{tstats['submitted']} and completed nothing", flush=True)
            ok = False

    # Warm replay: same trace, fresh service, same (now-warm) cache.
    warm = SweepService(cache, TENANTS, concurrency=2, queue_limit=16,
                        hit_cost_us=50.0)
    warm_report = warm.run_trace(trace)
    print(f"[serve-smoke] warm replay: hit_ratio="
          f"{warm_report.hit_ratio:.3f} executed={warm_report.executed}",
          flush=True)
    if warm_report.hit_ratio != 1.0 or warm_report.executed != 0:
        print("[serve-smoke] FAIL: warm replay was not served entirely "
              "from the cache", flush=True)
        ok = False

    # Byte-identical hit replay: a fresh run of every distinct spec in
    # the trace must pickle to exactly the cached payload.
    distinct = list(dict.fromkeys(a.spec for a in trace))
    mismatches = 0
    for spec in distinct:
        fresh = canonical_payload(execute(spec))
        cached = cache.get_bytes(spec)
        if cached != fresh:
            mismatches += 1
            print(f"[serve-smoke] FAIL: cached bytes != fresh run for "
                  f"{spec.identity}", flush=True)
    print(f"[serve-smoke] byte-identity: {len(distinct) - mismatches}/"
          f"{len(distinct)} distinct specs byte-identical", flush=True)
    if mismatches:
        ok = False

    store = ResultStore(cache)
    print(f"[serve-smoke] store: {store.summary()}", flush=True)
    print(f"[serve-smoke] cache: {cache.stats()}", flush=True)
    if prom_out:
        Path(prom_out).write_text(
            prometheus_text(cache.registry.snapshot())
        )
        print(f"[serve-smoke] wrote {prom_out}", flush=True)
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--arrivals", type=int, default=64,
                        help="trace length (default 64)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace generator seed (default 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: a tempdir)")
    parser.add_argument("--prom", default=None, metavar="FILE",
                        help="write service+cache metrics as Prometheus "
                             "text here")
    args = parser.parse_args(argv)
    if args.arrivals < 1:
        print("serve_smoke: --arrivals must be >= 1", file=sys.stderr)
        return 2

    if args.cache_dir:
        ok = serve_gate(args.arrivals, args.cache_dir, args.seed,
                        prom_out=args.prom)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            ok = serve_gate(args.arrivals, tmp, args.seed,
                            prom_out=args.prom)
    if not ok:
        print("[serve-smoke] FAILED", flush=True)
        return 1
    print("[serve-smoke] all gates passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

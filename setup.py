"""Setuptools entry point.

A ``setup.py`` is kept (and ``[build-system]`` deliberately omitted from
``pyproject.toml``) so that ``pip install -e .`` works through the
legacy ``setup.py develop`` path on machines without the ``wheel``
package or network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "On-demand connection management for OpenSHMEM and OpenSHMEM+MPI "
        "— simulated reproduction of Chakraborty et al., IPDPS-W 2015"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)

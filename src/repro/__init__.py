"""repro — simulated reproduction of *On-demand Connection Management
for OpenSHMEM and OpenSHMEM+MPI* (Chakraborty et al., IPDPS-W 2015).

The package rebuilds the paper's entire stack as a deterministic
discrete-event simulation:

* :mod:`repro.sim`      — DES kernel (clock, coroutine processes)
* :mod:`repro.cluster`  — cluster topology and calibrated cost models
* :mod:`repro.ib`       — InfiniBand substrate (RC/UD QPs, RDMA, HCA)
* :mod:`repro.pmi`      — Process Management Interface (+ PMIX extensions)
* :mod:`repro.gasnet`   — static and on-demand conduits (active messages)
* :mod:`repro.shmem`    — OpenSHMEM runtime (symmetric heap, RMA, collectives)
* :mod:`repro.mpi`      — minimal MPI over the same unified conduit
* :mod:`repro.core`     — job launcher, runtime configuration, metrics
* :mod:`repro.apps`     — Hello World, 2D-Heat, NAS skeletons, hybrid Graph500
* :mod:`repro.bench`    — per-figure/table experiment harnesses

Quickstart::

    from repro.core import Job, RuntimeConfig
    from repro.apps import HelloWorld

    job = Job(npes=64, config=RuntimeConfig.on_demand())
    result = job.run(HelloWorld())
    print(result.startup.breakdown, result.wall_time_us)
"""

from ._version import __version__

__all__ = ["__version__"]

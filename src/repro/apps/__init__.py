"""Simulated applications: Hello World, 2D-Heat, NAS skeletons,
Graph500, and the connection-churn lifecycle workload."""

from .base import Application
from .churn import ChurnWorkload
from .graph500 import Graph500Hybrid, kronecker_edges
from .heat2d import Heat2D, process_grid, solve_heat_serial
from .hello import HelloWorld
from .samplesort import HybridSampleSort
from .nas import CLASSES, NasBT, NasEP, NasIS, NasMG, NasSP

__all__ = [
    "Application",
    "ChurnWorkload",
    "HelloWorld",
    "Heat2D",
    "process_grid",
    "solve_heat_serial",
    "Graph500Hybrid",
    "HybridSampleSort",
    "kronecker_edges",
    "NasBT",
    "NasEP",
    "NasIS",
    "NasMG",
    "NasSP",
    "CLASSES",
]

"""Application interface for the job launcher."""

from __future__ import annotations

from typing import Any, Generator

__all__ = ["Application"]


class Application:
    """Base class for simulated applications.

    Subclasses implement :meth:`run` as a generator that programs
    against the :class:`~repro.shmem.runtime.ShmemPE` API (and
    ``pe.mpi`` when :attr:`uses_mpi` is set).  The return value is
    collected per PE into :attr:`~repro.core.metrics.JobResult.app_results`.
    """

    #: Report label.
    name = "app"
    #: When True the Job attaches an MPI communicator as ``pe.mpi``.
    uses_mpi = False

    def run(self, pe) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    # Apps are plain parameter holders; value equality lets a pickled
    # copy (sweep-pool JobSpecs cross a process boundary) compare equal
    # to the original.
    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self), repr(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"

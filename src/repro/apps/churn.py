"""Connection-churn workload: rotating skewed peer sets over epochs.

The paper's applications touch a stable neighbourhood, so on-demand
connections, once built, live until finalize.  This workload is the
adversarial complement for the connection *lifecycle*: each epoch every
PE talks to a small peer set, then the set rotates, so the union of
peers ever touched grows epoch by epoch while the *working* set stays
small.  Without idle eviction the QP footprint is the union (unbounded
in the epoch count); with a lifecycle policy installed the reaper
retires the cold connections during the inter-epoch idle gap and the
footprint stays bounded by the working set (fig9_churn measures both).

The peer set is deliberately skewed: partner slot 0 is *hot* — the
same peer every epoch, receiving the most traffic — while the
remaining slots rotate, receiving geometrically fewer requests.  A
credit-based policy keeps the hot connection alive across epochs; pure
LRU evicts it too during a long-enough gap, paying a reconnect on the
next epoch.

Partner selection is a golden-ratio hash of (rank, epoch, slot) — no
RNG stream, no set iteration — so a run is reproducible from its
parameters alone and partners land across node boundaries.
"""

from __future__ import annotations

from typing import Generator, Optional

from .base import Application

__all__ = ["ChurnWorkload"]

# Knuth multiplicative-hash constants (also used by the sim's event
# jitter); 32-bit avalanche over the (rank, epoch, slot) triple.
_GOLDEN = 0x9E3779B1
_MIX1 = 0x85EBCA6B
_MIX2 = 0xC2B2AE35
_MASK = 0xFFFFFFFF


def _avalanche(h: int) -> int:
    h &= _MASK
    h ^= h >> 15
    h = (h * _GOLDEN) & _MASK
    h ^= h >> 13
    return h


class ChurnWorkload(Application):
    """Rotating skewed peer sets with inter-epoch idle gaps.

    Parameters
    ----------
    epochs:
        Number of epochs (peer-set rotations).
    partners:
        Peers contacted per epoch.  Slot 0 is the hot partner (stable
        across epochs); slots 1+ rotate every epoch.
    requests:
        Puts to the slot-0 partner per epoch; slot ``j`` receives
        ``max(1, requests >> j)`` — a geometric skew.
    payload_bytes:
        Size of each put.
    idle_gap_us:
        Simulated idle time after each epoch's barrier.  Set it above
        the lifecycle policy's ``idle_timeout_us`` so the reaper can
        retire the epoch's cold connections before the next rotation.
    """

    name = "churn"

    def __init__(self, epochs: int = 4, partners: int = 3,
                 requests: int = 4, payload_bytes: int = 1024,
                 idle_gap_us: float = 30_000.0) -> None:
        if epochs < 1 or partners < 1 or requests < 1:
            raise ValueError("epochs/partners/requests must be >= 1")
        if payload_bytes < 1 or idle_gap_us < 0:
            raise ValueError("payload_bytes >= 1 and idle_gap_us >= 0")
        self.epochs = epochs
        self.partners = partners
        self.requests = requests
        self.payload_bytes = payload_bytes
        self.idle_gap_us = idle_gap_us

    # ------------------------------------------------------------------
    def partner(self, rank: int, npes: int, epoch: int,
                slot: int) -> Optional[int]:
        """The peer PE ``rank`` contacts in ``(epoch, slot)``.

        Slot 0 ignores the epoch (the hot partner); other slots fold it
        in so the cold set rotates.  The offset is drawn from
        ``[1, npes)`` so a PE never selects itself.
        """
        if npes < 2:
            return None
        key = rank * _MIX1 + slot * _MIX2
        if slot > 0:
            key += epoch * _GOLDEN
        return (rank + 1 + _avalanche(key) % (npes - 1)) % npes

    # ------------------------------------------------------------------
    def run(self, pe) -> Generator:
        npes, rank = pe.npes, pe.mype
        inbox = pe.shmalloc(self.payload_bytes)
        payload = bytes(self.payload_bytes)
        yield from pe.barrier_all()  # inboxes allocated everywhere

        puts = 0
        for epoch in range(self.epochs):
            for slot in range(self.partners):
                peer = self.partner(rank, npes, epoch, slot)
                if peer is None:
                    break
                for _ in range(max(1, self.requests >> slot)):
                    yield from pe.put(peer, inbox, payload)
                    puts += 1
            yield from pe.barrier_all()  # epoch edge: everyone idle
            if self.idle_gap_us > 0:
                yield pe.sim.timeout(self.idle_gap_us)

        yield from pe.barrier_all()
        return {
            "puts": puts,
            "final_connections": pe.conduit.connection_count,
            "peak_connections": pe.conduit.peak_connections,
            "touched_peers": len(pe.conduit.touched_peers),
        }

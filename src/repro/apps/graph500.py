"""Hybrid MPI+OpenSHMEM Graph500 BFS (Jose et al. [5], paper Section V-E).

A real, end-to-end Graph500 mini-implementation:

* **generation** — Kronecker (R-MAT) edge list with the reference
  A/B/C/D parameters, generated deterministically and partitioned by
  vertex ownership (``owner = v % npes``);
* **construction** — each PE builds adjacency lists for its vertices
  after an MPI all-to-all of edge endpoints;
* **BFS** — level-synchronised hybrid traversal: discovered remote
  vertices are pushed into the owner's symmetric receive queue with an
  OpenSHMEM ``atomic_fetch_add`` (queue-tail reservation) + ``put``,
  exactly the one-sided pattern of the hybrid design; level
  termination uses an MPI ``allreduce`` — both models drive the *same*
  connections (unified runtime);
* **validation** — parent array is allgathered and every PE checks its
  own edges for the Graph500 level-consistency invariant.

The paper's configuration (1,024 vertices / 16,384 edges — scale 10,
edgefactor 16) is the default.  Generation and validation dominate the
runtime, which is why static vs. on-demand differ by <2% (Figure 8b).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from .base import Application

__all__ = ["Graph500Hybrid", "kronecker_edges"]

#: Modelled per-edge generation / validation CPU cost (us).
_GEN_EDGE_US = 1.1
_VALIDATE_EDGE_US = 0.9
#: Modelled cost of scanning one adjacency entry during BFS (us).
_SCAN_EDGE_US = 0.08


def kronecker_edges(scale: int, edgefactor: int, seed: int = 20150427
                    ) -> np.ndarray:
    """Reference R-MAT generator: (nedges, 2) int64 array."""
    n = 1 << scale
    m = edgefactor * n
    a, b, c = 0.57, 0.19, 0.19
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r1 = rng.random(m)
        r2 = rng.random(m)
        heavy = r1 > a + b
        src |= (heavy.astype(np.int64)) << bit
        take = np.where(
            heavy, r2 > (c / (c + (1 - a - b - c))) * 1.0, r2 > (a / (a + b))
        )
        dst |= take.astype(np.int64) << bit
    # Permute vertex labels so degree is decorrelated from id.
    perm = rng.permutation(n)
    return np.stack([perm[src], perm[dst]], axis=1)


class Graph500Hybrid(Application):
    name = "graph500"
    uses_mpi = True

    def __init__(self, scale: int = 10, edgefactor: int = 16,
                 nroots: int = 4, seed: int = 20150427) -> None:
        self.scale = scale
        self.edgefactor = edgefactor
        self.nroots = nroots
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, pe) -> Generator:
        npes, rank = pe.npes, pe.mype
        mpi = pe.mpi
        n = 1 << self.scale
        i8 = np.dtype(np.int64).itemsize

        # ---------- generation (every PE generates its slice) ----------
        edges = kronecker_edges(self.scale, self.edgefactor, self.seed)
        m = len(edges)
        my_slice = edges[rank::npes]
        yield pe.sim.timeout(
            len(my_slice) * _GEN_EDGE_US * pe.cost.compute_scale
        )

        # ---------- construction: route edges to both endpoint owners --
        outboxes: List[List[Tuple[int, int]]] = [[] for _ in range(npes)]
        for u, v in my_slice:
            if u == v:
                continue
            outboxes[int(u) % npes].append((int(u), int(v)))
            outboxes[int(v) % npes].append((int(v), int(u)))
        incoming = yield from mpi.alltoall(
            outboxes, nbytes_each=max(1, 16 * len(my_slice) // npes)
        )
        adj: Dict[int, List[int]] = {}
        for box in incoming:
            for u, v in box:
                adj.setdefault(u, []).append(v)

        # ---------- symmetric BFS state --------------------------------
        # Sized for the worst realistic per-root fan-in (R-MAT hubs);
        # the drain loop guards against overflow with a clear error.
        qcap = max(4096, (4 * m) // npes + 256)
        tail_addr = pe.shmalloc(i8)
        queue_addr = pe.shmalloc(qcap * i8)
        tail = pe.view(tail_addr, np.int64, 1)
        queue = pe.view(queue_addr, np.int64, qcap)

        my_vertices = list(range(rank, n, npes))
        bfs_stats = []

        roots_rng = np.random.default_rng(self.seed + 7)
        candidate_roots = [
            int(r) for r in roots_rng.integers(0, n, size=self.nroots)
        ]

        for root in candidate_roots:
            parent: Dict[int, int] = {}
            level_of: Dict[int, int] = {}
            tail[0] = 0
            yield from mpi.barrier()

            frontier: List[int] = []
            if root % npes == rank:
                parent[root] = root
                level_of[root] = 0
                frontier = [root]
            cur_level = 0
            edges_scanned = 0
            while True:
                # -- expand local frontier ---------------------------------
                local_new: List[int] = []
                scanned_this_level = 0
                for u in frontier:
                    for v in adj.get(u, ()):
                        scanned_this_level += 1
                        owner = v % npes
                        if owner == rank:
                            if v not in parent:
                                parent[v] = u
                                level_of[v] = cur_level + 1
                                local_new.append(v)
                        else:
                            # One-sided push: reserve a slot in the
                            # owner's queue, then put (vertex, parent).
                            slot = yield from pe.atomic_fetch_add(
                                owner, tail_addr, 2
                            )
                            yield from pe.put_array(
                                owner,
                                queue_addr + int(slot) * i8,
                                np.array([v, u], dtype=np.int64),
                            )
                edges_scanned += scanned_this_level
                if scanned_this_level:
                    yield pe.sim.timeout(
                        scanned_this_level * _SCAN_EDGE_US
                        * pe.cost.compute_scale
                    )
                yield from mpi.barrier()  # all puts delivered

                # -- drain my receive queue --------------------------------
                count = int(tail[0])
                if count > qcap:
                    from ..errors import ShmemError
                    raise ShmemError(
                        f"graph500 receive queue overflow ({count} > {qcap})"
                    )
                for i in range(0, min(count, qcap), 2):
                    v, u = int(queue[i]), int(queue[i + 1])
                    if v not in parent:
                        parent[v] = u
                        level_of[v] = cur_level + 1
                        local_new.append(v)
                tail[0] = 0
                frontier = sorted(set(local_new))
                cur_level += 1

                total = yield from mpi.allreduce(
                    len(frontier), lambda a, b: a + b
                )
                if total == 0:
                    break

            # ---------- validation (Graph500-style) --------------------
            all_levels = yield from mpi.allgather(
                {v: level_of.get(v, -1) for v in my_vertices},
                nbytes=8 * len(my_vertices),
            )
            merged: Dict[int, int] = {}
            for d in all_levels:
                merged.update(d)
            errors = 0
            # (1) every edge connects vertices whose levels differ <= 1
            for u, v in my_slice:
                lu, lv = merged.get(int(u), -1), merged.get(int(v), -1)
                if lu >= 0 and lv >= 0 and abs(lu - lv) > 1:
                    errors += 1
            # (2) each owned vertex's parent is one of its neighbours
            #     and sits exactly one level above.
            for v, u in parent.items():
                if v == root:
                    continue
                if u not in adj.get(v, ()):
                    errors += 1
                elif merged.get(u, -1) != level_of[v] - 1:
                    errors += 1
            yield pe.sim.timeout(
                len(my_slice) * _VALIDATE_EDGE_US * pe.cost.compute_scale
            )
            total_errors = yield from mpi.allreduce(
                errors, lambda a, b: a + b
            )
            visited = yield from mpi.allreduce(
                len(parent), lambda a, b: a + b
            )
            bfs_stats.append(
                {"root": root, "levels": cur_level, "visited": visited,
                 "errors": total_errors}
            )

        yield from mpi.barrier()
        return {"bfs": bfs_stats, "nedges": m}

"""2D heat-conduction kernel (the paper's "2DHeat", ref [27]).

A real Jacobi solver for the steady-state heat equation on a square
grid with fixed boundary temperatures, domain-decomposed over a 2D
process grid.  Each iteration:

1. compute the 5-point stencil update on the local block (real numpy
   arithmetic on real data) and charge modelled compute time;
2. ``shmem_put`` boundary rows/columns into the four neighbours' ghost
   buffers;
3. synchronise with ``shmem_barrier_all``;
4. every ``check_every`` iterations, reduce the global residual and
   stop on convergence.

Communication footprint per PE: <= 4 stencil neighbours + the barrier/
reduction tree — the smallest of the evaluated applications, which is
why 2DHeat scales best in Figure 9.
"""

from __future__ import annotations

import math
from typing import Generator, Optional, Tuple

import numpy as np

from .base import Application

__all__ = ["Heat2D", "process_grid", "solve_heat_serial"]

#: Modelled compute cost per stencil cell update (us, Westmere-class).
_CELL_UPDATE_US = 0.004


def process_grid(npes: int) -> Tuple[int, int]:
    """Near-square factorisation pr x pc == npes (pr <= pc)."""
    pr = int(math.isqrt(npes))
    while npes % pr:
        pr -= 1
    return pr, npes // pr


def solve_heat_serial(n: int, iters: int, top: float = 100.0) -> np.ndarray:
    """Reference serial Jacobi (for verification in tests)."""
    grid = np.zeros((n + 2, n + 2))
    grid[0, :] = top
    for _ in range(iters):
        interior = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        grid[1:-1, 1:-1] = interior
    return grid


class Heat2D(Application):
    """Distributed Jacobi heat solver.

    Parameters
    ----------
    n:
        Global grid is ``n x n`` interior points; must divide evenly
        over the process grid.
    iters:
        Fixed iteration count (deterministic runs for benchmarking).
    check_every:
        Residual-reduction cadence (0 disables convergence checks).
    """

    name = "2dheat"

    def __init__(self, n: int = 64, iters: int = 20, check_every: int = 10,
                 top: float = 100.0) -> None:
        self.n = n
        self.iters = iters
        self.check_every = check_every
        self.top = top

    # ------------------------------------------------------------------
    def run(self, pe) -> Generator:
        npes, rank = pe.npes, pe.mype
        pr, pc = process_grid(npes)
        if self.n % pr or self.n % pc:
            raise ValueError(
                f"grid {self.n} does not tile over {pr}x{pc} processes"
            )
        br, bc = self.n // pr, self.n // pc  # local block shape
        my_r, my_c = divmod(rank, pc)

        def neighbor(dr: int, dc: int) -> Optional[int]:
            r, c = my_r + dr, my_c + dc
            if 0 <= r < pr and 0 <= c < pc:
                return r * pc + c
            return None

        north, south = neighbor(-1, 0), neighbor(1, 0)
        west, east = neighbor(0, -1), neighbor(0, 1)

        # Symmetric allocations (same order on every PE).  Ghost
        # buffers are double-buffered by iteration parity: barrier
        # release is not instantaneous across PEs (it rides a message
        # tree), so iteration k's puts must not land in the buffers a
        # slow PE is still reading for iteration k.
        f8 = np.dtype(np.float64).itemsize
        block_addr = pe.shmalloc(br * bc * f8)
        ghosts = {
            (side, parity): pe.shmalloc(extent * f8)
            for side, extent in (
                ("north", bc), ("south", bc), ("west", br), ("east", br),
            )
            for parity in (0, 1)
        }
        resid_addr = pe.shmalloc(f8)
        resid_out = pe.shmalloc(f8)

        block = pe.view(block_addr, np.float64, br * bc).reshape(br, bc)
        gview = {
            key: pe.view(a, np.float64,
                         bc if key[0] in ("north", "south") else br)
            for key, a in ghosts.items()
        }
        block[:] = 0.0
        # Boundary condition: hot top edge (both parities).
        if north is None:
            gview[("north", 0)][:] = self.top
            gview[("north", 1)][:] = self.top

        compute_us = br * bc * _CELL_UPDATE_US * pe.cost.compute_scale
        yield from pe.barrier_all()  # allocations ready everywhere

        iterations_done = 0
        for it in range(self.iters):
            read_p, write_p = it % 2, (it + 1) % 2
            old = block.copy()
            padded = np.zeros((br + 2, bc + 2))
            padded[1:-1, 1:-1] = old
            padded[0, 1:-1] = gview[("north", read_p)]
            padded[-1, 1:-1] = gview[("south", read_p)]
            padded[1:-1, 0] = gview[("west", read_p)]
            padded[1:-1, -1] = gview[("east", read_p)]
            block[:] = 0.25 * (
                padded[:-2, 1:-1] + padded[2:, 1:-1]
                + padded[1:-1, :-2] + padded[1:-1, 2:]
            )
            yield pe.sim.timeout(compute_us)

            # Halo exchange into the *next* parity's ghosts.
            if north is not None:
                yield from pe.put_array(
                    north, ghosts[("south", write_p)], block[0, :])
            if south is not None:
                yield from pe.put_array(
                    south, ghosts[("north", write_p)], block[-1, :])
            if west is not None:
                yield from pe.put_array(
                    west, ghosts[("east", write_p)], block[:, 0])
            if east is not None:
                yield from pe.put_array(
                    east, ghosts[("west", write_p)], block[:, -1])
            yield from pe.barrier_all()
            iterations_done += 1

            if self.check_every and (it + 1) % self.check_every == 0:
                local = float(np.abs(block - old).max())
                pe.view(resid_addr, np.float64, 1)[0] = local
                yield from pe.max_to_all(resid_addr, resid_out, 1)
                if pe.view(resid_out, np.float64, 1)[0] < 1e-9:
                    break

        checksum = float(block.sum())
        return {
            "iterations": iterations_done,
            "checksum": checksum,
            "block": block.copy(),
            "coords": (my_r, my_c),
            "block_shape": (br, bc),
        }

"""Hello World: the paper's startup benchmark (Section V-B).

Does no communication of its own — everything it pays is start_pes,
the implicit finalize barrier, and teardown, which is exactly why it
exposes the startup designs so starkly (Figure 5a).
"""

from __future__ import annotations

from typing import Generator

from .base import Application

__all__ = ["HelloWorld"]


class HelloWorld(Application):
    name = "hello"

    def run(self, pe) -> Generator:
        # A real Hello World prints and exits; charge a token amount of
        # application CPU so the app section isn't literally zero.
        yield pe.sim.timeout(50.0 * pe.cost.compute_scale)
        return f"Hello from PE {pe.mype} of {pe.npes}"

    def macro_profile(self, rank: int, npes: int, cost):
        """Closed-form per-rank cost for the macro phase layer: the
        same token CPU charge and return value as :meth:`run`."""
        return 50.0 * cost.compute_scale, f"Hello from PE {rank} of {npes}"

"""NAS Parallel Benchmark skeletons (the OpenSHMEM ports the paper uses)."""

from .bt import NasBT
from .common import CLASSES, NASClass, grid_2d, grid_3d
from .ep import NasEP
from .is_kernel import NasIS
from .mg import NasMG
from .sp import NasSP

__all__ = ["NasBT", "NasEP", "NasIS", "NasMG", "NasSP", "CLASSES", "NASClass",
           "grid_2d", "grid_3d"]

"""Shared skeleton for the ADI solvers BT and SP.

Both NAS BT and SP solve block-tridiagonal / scalar-pentadiagonal
systems with Alternating-Direction-Implicit sweeps over a square
process grid.  Per iteration the communication is:

* a boundary exchange with the four grid neighbours (periodic), and
* pipelined line-solve sweeps along grid rows (x) and columns (y):
  each stage receives partial sums from the predecessor and forwards
  to the successor.

BT and SP differ (as in NAS) in message sizes and per-point compute:
BT moves 5x5 block rows (bigger messages, heavier compute, fewer
iterations), SP scalar lines (smaller messages, more iterations).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..base import Application
from .common import CLASSES, grid_2d

__all__ = ["AdiKernelBase"]


class AdiKernelBase(Application):
    """Configure via class attributes in BT / SP subclasses."""

    #: Doubles per solved point (drives message sizes).
    unknowns_per_point = 5
    #: Block size of the implicit system (BT: 5x5 blocks; SP: scalars).
    block_doubles = 25
    #: Modelled compute per point per iteration (us).
    point_us = 0.02
    #: Iterations for our class-S baseline.
    base_iters = 6
    #: Local points per dimension for class S.
    base_local = 12

    def __init__(self, nas_class: str = "B", iters: Optional[int] = None):
        self.nas_class = CLASSES[nas_class]
        self.iters = iters if iters is not None else max(
            2, int(self.base_iters * self.nas_class.iter_factor)
        )

    def run(self, pe) -> Generator:
        npes, rank = pe.npes, pe.mype
        pr, pc = grid_2d(npes)
        my_r, my_c = divmod(rank, pc)
        local = int(self.base_local * self.nas_class.size_factor)
        f8 = np.dtype(np.float64).itemsize

        # Periodic 2D neighbours.
        north = ((my_r - 1) % pr) * pc + my_c
        south = ((my_r + 1) % pr) * pc + my_c
        west = my_r * pc + (my_c - 1) % pc
        east = my_r * pc + (my_c + 1) % pc

        face_elems = local * self.unknowns_per_point
        line_elems = local * self.block_doubles

        state_addr = pe.shmalloc(local * local * f8)
        ghosts = {d: pe.shmalloc(face_elems * f8)
                  for d in ("n", "s", "w", "e")}
        pipe_in = {d: pe.shmalloc(line_elems * f8 + f8)
                   for d in ("x", "y")}

        state = pe.view(state_addr, np.float64, local * local).reshape(
            local, local
        )
        rng = np.random.default_rng(777 + rank)
        state[:] = rng.random(state.shape)

        compute_us = (
            local * local * self.point_us * pe.cost.compute_scale
        )
        yield from pe.barrier_all()

        for it in range(self.iters):
            # -- boundary exchange (copy faces), real data --------------
            yield from pe.put_array(
                north, ghosts["s"],
                np.resize(state[0, :], face_elems),
            )
            yield from pe.put_array(
                south, ghosts["n"],
                np.resize(state[-1, :], face_elems),
            )
            yield from pe.put_array(
                west, ghosts["e"],
                np.resize(state[:, 0], face_elems),
            )
            yield from pe.put_array(
                east, ghosts["w"],
                np.resize(state[:, -1], face_elems),
            )
            yield from pe.barrier_all()

            # -- x sweep: pipeline along the grid row --------------------
            yield from self._sweep(
                pe, axis="x", stage=my_c, nstages=pc,
                prev=west, nxt=east, line_elems=line_elems,
                pipe_addr=pipe_in["x"], it=it, state=state,
            )
            yield pe.sim.timeout(compute_us)

            # -- y sweep: pipeline along the grid column -----------------
            yield from self._sweep(
                pe, axis="y", stage=my_r, nstages=pr,
                prev=north, nxt=south, line_elems=line_elems,
                pipe_addr=pipe_in["y"], it=it, state=state,
            )
            yield pe.sim.timeout(compute_us)
            yield from pe.barrier_all()

        # Solution verification surrogate: global checksum.
        src, dst = pe.shmalloc(f8), pe.shmalloc(f8)
        pe.view(src, np.float64, 1)[0] = float(state.sum())
        yield from pe.sum_to_all(src, dst, 1)
        yield from pe.barrier_all()
        return {
            "checksum": float(pe.view(dst, np.float64, 1)[0]),
            "iters": self.iters,
        }

    def _sweep(self, pe, axis: str, stage: int, nstages: int, prev: int,
               nxt: int, line_elems: int, pipe_addr: int, it: int,
               state) -> Generator:
        """One pipelined line-solve: wait for the predecessor's partial
        results (flag + payload put into our buffer), fold them in, and
        forward ours to the successor."""
        f8 = np.dtype(np.float64).itemsize
        flag_addr = pipe_addr + line_elems * f8
        if nstages > 1 and stage > 0:
            # Wait for the predecessor's forward-elimination data.
            yield from pe.wait_until(flag_addr, "ge", it + 1)
            incoming = pe.view(pipe_addr, np.float64, line_elems)
            state[0, 0] += float(incoming[:4].sum()) * 1e-9  # fold (real use)
        if nstages > 1 and stage < nstages - 1:
            payload = np.resize(np.asarray(state[0], dtype=np.float64),
                                line_elems)
            yield from pe.put_array(nxt, pipe_addr, payload)
            yield from pe.put_value(nxt, flag_addr, it + 1)

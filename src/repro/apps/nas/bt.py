"""NAS BT (Block-Tridiagonal) skeleton — see :mod:`.adi`."""

from __future__ import annotations

from .adi import AdiKernelBase

__all__ = ["NasBT"]


class NasBT(AdiKernelBase):
    """5x5 block systems: big messages, heavy compute, fewer iterations."""

    name = "bt"
    unknowns_per_point = 5
    block_doubles = 25
    point_us = 0.030
    base_iters = 6
    base_local = 12

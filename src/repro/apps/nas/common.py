"""Shared machinery for the NAS Parallel Benchmark skeletons.

The skeletons are **communication-faithful**: every message a kernel's
documented communication structure requires is really sent through the
OpenSHMEM API (so peer counts, connection demand and message volumes
are real), while the numerical inner loops are represented by small
real computations plus modelled compute time.  Problem classes follow
NAS conventions scaled down so a laptop-scale DES completes; scale
factors live here and are reported by the harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

__all__ = ["grid_2d", "grid_3d", "NASClass", "CLASSES"]


@dataclass(frozen=True)
class NASClass:
    """Scaled-down stand-in for a NAS problem class."""

    name: str
    #: Linear problem-size factor relative to our class "S" baseline.
    size_factor: float
    #: Iteration count scale.
    iter_factor: float


#: Paper evaluation uses class B; we keep the class structure but run
#: reduced sizes (documented in DESIGN.md / EXPERIMENTS.md).
CLASSES = {
    "S": NASClass("S", 1.0, 1.0),
    "A": NASClass("A", 2.0, 1.5),
    "B": NASClass("B", 3.0, 2.0),
}


def grid_2d(npes: int) -> Tuple[int, int]:
    """Near-square 2D process grid."""
    pr = int(math.isqrt(npes))
    while npes % pr:
        pr -= 1
    return pr, npes // pr


def grid_3d(npes: int) -> Tuple[int, int, int]:
    """Near-cubic 3D process grid (px <= py <= pz)."""
    best = (1, 1, npes)
    best_score = float("inf")
    for px in range(1, int(round(npes ** (1 / 3))) + 2):
        if npes % px:
            continue
        rest = npes // px
        for py in range(px, int(math.isqrt(rest)) + 1):
            if rest % py:
                continue
            pz = rest // py
            score = pz - px
            if score < best_score:
                best_score = score
                best = (px, py, pz)
    return best

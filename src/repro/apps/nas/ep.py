"""NAS EP (Embarrassingly Parallel) — OpenSHMEM port skeleton.

EP generates pairs of uniform deviates with the NAS linear congruential
generator, accepts those inside the unit circle, tallies independent
Gaussian deviates per annulus, and reduces the ten counts plus the two
sums across all PEs.  It is *all* compute: the only communication is
the final reduction, which is why its communicating-peer count in
Table I is the lowest of the NAS suite.

The kernel here really runs (a reduced sample count through the real
LCG + Marsaglia transform) and charges modelled time for the full
class-sized sample count.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..base import Application
from .common import CLASSES

__all__ = ["NasEP"]

#: Modelled cost of generating + transforming one sample pair (us).
_PAIR_US = 0.5
#: Class-S total pairs (scaled by class factors; class B == x3 linear
#: size means 2^28-ish in real NAS — reduced here, see module doc).
#: EP is the compute-heaviest of the four skeletons, which is what
#: makes its *relative* startup win the smallest in Figure 8(a).
_BASE_PAIRS_TOTAL = 2**24

_LCG_A = 5**13
_LCG_MOD = 2**46


def _lcg_stream(seed: int, count: int) -> np.ndarray:
    """The NAS EP pseudorandom stream in [0, 1)."""
    out = np.empty(count, dtype=np.float64)
    x = seed
    for i in range(count):
        x = (_LCG_A * x) % _LCG_MOD
        out[i] = x / _LCG_MOD
    return out


class NasEP(Application):
    name = "ep"

    def __init__(self, nas_class: str = "B", real_pairs: int = 2000) -> None:
        self.nas_class = CLASSES[nas_class]
        self.real_pairs = real_pairs

    def run(self, pe) -> Generator:
        total_pairs = int(
            _BASE_PAIRS_TOTAL * self.nas_class.size_factor ** 2
        )
        my_pairs = total_pairs // pe.npes
        # -- real (reduced) kernel --------------------------------------
        n = min(self.real_pairs, my_pairs)
        u = _lcg_stream(271828183 + pe.mype, 2 * n)
        x, y = 2.0 * u[0::2] - 1.0, 2.0 * u[1::2] - 1.0
        t = x * x + y * y
        accept = (0.0 < t) & (t <= 1.0)
        xa, ya, ta = x[accept], y[accept], t[accept]
        factor = np.sqrt(-2.0 * np.log(ta) / ta)
        gx, gy = xa * factor, ya * factor
        sx, sy = float(gx.sum()), float(gy.sum())
        m = np.maximum(np.abs(gx), np.abs(gy)).astype(int)
        counts = np.bincount(np.clip(m, 0, 9), minlength=10).astype(np.float64)

        # -- modelled compute for the full class size --------------------
        yield pe.sim.timeout(my_pairs * _PAIR_US * pe.cost.compute_scale)

        # -- the only communication: global reductions -------------------
        f8 = np.dtype(np.float64).itemsize
        src = pe.shmalloc(12 * f8)
        dst = pe.shmalloc(12 * f8)
        buf = pe.view(src, np.float64, 12)
        buf[0], buf[1] = sx, sy
        buf[2:12] = counts
        yield from pe.sum_to_all(src, dst, 12)
        result = pe.view(dst, np.float64, 12).copy()
        yield from pe.barrier_all()
        return {
            "sx": result[0],
            "sy": result[1],
            "counts": result[2:12].tolist(),
            "accepted_local": int(accept.sum()),
        }

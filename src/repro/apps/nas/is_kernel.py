"""NAS IS (Integer Sort) — bucket sort with an all-to-all exchange.

IS is the NAS kernel with the *densest* communication pattern: every
process exchanges key counts and key payloads with every other process
each iteration, which is why an IS-like workload gains the least from
on-demand connections (it genuinely needs most of its peers).  The
paper's NAS table omits IS (no OpenSHMEM port existed); we include it
as the dense end of the application spectrum.

The sort is real: keys are generated with the NAS LCG, routed to
bucket owners via ``shmem_fcollect`` (counts) + pipelined one-sided
puts (payloads), locally sorted with numpy, and validated globally
(boundary ordering + key conservation).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..base import Application
from .common import CLASSES

__all__ = ["NasIS"]

#: Modelled CPU cost per key per ranking pass (us).
_KEY_US = 0.02
#: Keys per PE for class S.
_BASE_KEYS_PER_PE = 1024
#: Key space (class S); scales with the class size factor.
_BASE_MAX_KEY = 1 << 16


class NasIS(Application):
    name = "is"

    def __init__(self, nas_class: str = "S", iters: int = 3) -> None:
        self.nas_class = CLASSES[nas_class]
        self.iters = iters

    def run(self, pe) -> Generator:
        npes, rank = pe.npes, pe.mype
        keys_per_pe = int(_BASE_KEYS_PER_PE * self.nas_class.size_factor)
        max_key = int(_BASE_MAX_KEY * self.nas_class.size_factor)
        bucket_width = (max_key + npes - 1) // npes
        i8 = np.dtype(np.int64).itemsize

        rng = np.random.default_rng(1990 + rank)  # NAS-style per-PE stream
        keys = rng.integers(0, max_key, size=keys_per_pe, dtype=np.int64)

        # Symmetric buffers: counts matrix row + receive area.
        counts_src = pe.shmalloc(npes * i8)
        counts_all = pe.shmalloc(npes * npes * i8)
        recv_cap = 4 * keys_per_pe + 64
        recv_addr = pe.shmalloc(recv_cap * i8)
        yield from pe.barrier_all()

        sorted_keys = np.empty(0, dtype=np.int64)
        for _ in range(self.iters):
            owners = np.clip(keys // bucket_width, 0, npes - 1)
            order = np.argsort(owners, kind="stable")
            routed = keys[order]
            bucket_counts = np.bincount(owners, minlength=npes).astype(np.int64)
            yield pe.sim.timeout(
                keys_per_pe * _KEY_US * pe.cost.compute_scale
            )

            # 1) exchange the counts matrix (dense, small).
            pe.view(counts_src, np.int64, npes)[:] = bucket_counts
            yield from pe.fcollect(counts_src, counts_all, npes * i8)
            matrix = pe.view(counts_all, np.int64, npes * npes).reshape(
                npes, npes
            )

            # 2) every PE knows everyone's counts: compute its write
            #    offsets into each destination's receive buffer.
            my_recv_total = int(matrix[:, rank].sum())
            if my_recv_total > recv_cap:
                from ...errors import ShmemError

                raise ShmemError(
                    f"IS receive buffer overflow ({my_recv_total} > "
                    f"{recv_cap})"
                )
            # offset of MY block inside dest d = sum of earlier senders'
            # counts for d.
            send_starts = np.concatenate(
                ([0], np.cumsum(bucket_counts)[:-1])
            )
            for dest in range(npes):
                n = int(bucket_counts[dest])
                if n == 0:
                    continue
                block = routed[send_starts[dest]:send_starts[dest] + n]
                offset = int(matrix[:rank, dest].sum())
                yield from pe.put_array_nbi(
                    dest, recv_addr + offset * i8, block
                )
            yield from pe.quiet()
            yield from pe.barrier_all()

            # 3) local sort of the received bucket (real numpy sort).
            received = pe.view(recv_addr, np.int64, max(1, my_recv_total))[
                :my_recv_total
            ].copy()
            sorted_keys = np.sort(received)
            yield pe.sim.timeout(
                max(1, my_recv_total) * _KEY_US * pe.cost.compute_scale
            )
            yield from pe.barrier_all()

        # ------- validation (real, global) ----------------------------
        f8 = np.dtype(np.int64).itemsize
        stat_src = pe.shmalloc(2 * f8)
        stat_dst = pe.shmalloc(2 * f8)
        stats = pe.view(stat_src, np.int64, 2)
        stats[0] = len(sorted_keys)
        stats[1] = int(sorted_keys.sum()) if len(sorted_keys) else 0
        yield from pe.reduce(stat_src, stat_dst, 2, np.int64, "sum")
        total_keys, total_sum = (
            int(v) for v in pe.view(stat_dst, np.int64, 2)
        )

        # Boundary order: collect every PE's (min, max, count) and check
        # the non-empty buckets are globally monotone.
        edge_src = pe.shmalloc(3 * f8)
        edge_all = pe.shmalloc(3 * f8 * npes)
        e = pe.view(edge_src, np.int64, 3)
        if len(sorted_keys):
            e[:] = [int(sorted_keys[0]), int(sorted_keys[-1]), 1]
        else:
            e[:] = [0, 0, 0]
        yield from pe.fcollect(edge_src, edge_all, 3 * f8)
        table = pe.view(edge_all, np.int64, 3 * npes).reshape(npes, 3)
        prev_max = None
        ordered = True
        for mn, mx, nonempty in table:
            if not nonempty:
                continue
            if prev_max is not None and mn < prev_max:
                ordered = False
            prev_max = mx
        locally_sorted = bool(np.all(np.diff(sorted_keys) >= 0))
        yield from pe.barrier_all()
        return {
            "my_keys": len(sorted_keys),
            "total_keys": total_keys,
            "total_sum": total_sum,
            "locally_sorted": locally_sorted,
            "boundary_ordered": bool(ordered),
        }

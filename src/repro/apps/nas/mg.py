"""NAS MG (MultiGrid) — OpenSHMEM port skeleton.

MG runs V-cycles on a 3D grid distributed over a 3D process grid.  The
communication structure — the part that determines Table I and
Figure 9 — is the face exchange with the six axis neighbours, where the
neighbour *stride doubles at each coarser level* (when the coarse grid
has fewer points than processes, a process's neighbour in grid space is
several process-grid hops away).  That growing stride is why MG touches
more distinct peers than a plain stencil code.

Real face buffers travel through shmem puts at every level; smoothing
is a real (tiny) Jacobi sweep at the finest level and modelled time at
coarser ones.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

import numpy as np

from ..base import Application
from .common import CLASSES, grid_3d

__all__ = ["NasMG"]

#: Modelled smoothing cost per grid point per sweep (us).
_POINT_US = 0.006
#: Local grid points per dimension at the finest level (class S).
_BASE_LOCAL = 8


class NasMG(Application):
    name = "mg"

    def __init__(self, nas_class: str = "B", iters: int = 4,
                 levels: int = 4) -> None:
        self.nas_class = CLASSES[nas_class]
        self.iters = iters
        self.levels = levels

    def run(self, pe) -> Generator:
        npes, rank = pe.npes, pe.mype
        px, py, pz = grid_3d(npes)
        dims = (px, py, pz)
        mz, rem = divmod(rank, px * py)
        my_coord = (rem % px, rem // px, mz)

        local_n = int(_BASE_LOCAL * self.nas_class.size_factor)
        f8 = np.dtype(np.float64).itemsize
        face_elems = local_n * local_n

        # Symmetric allocations: one block + one ghost face per
        # direction per level (strides differ per level, so separate
        # ghost buffers keep the exchange race-free).
        block_addr = pe.shmalloc(local_n**3 * f8)
        ghost_addrs = [
            {(axis, sign): pe.shmalloc(face_elems * f8)
             for axis in range(3) for sign in (-1, 1)}
            for _ in range(self.levels)
        ]
        block = pe.view(block_addr, np.float64, local_n**3).reshape(
            (local_n,) * 3
        )
        rng = np.random.default_rng(12345 + rank)
        block[:] = rng.random(block.shape)

        def neighbor(axis: int, sign: int, stride: int) -> int:
            """Periodic neighbour `stride` process-grid steps away."""
            coord = list(my_coord)
            coord[axis] = (coord[axis] + sign * stride) % dims[axis]
            return (
                coord[0] + coord[1] * px + coord[2] * px * py
            )

        def face_of(arr: np.ndarray, axis: int, sign: int) -> np.ndarray:
            idx = [slice(None)] * 3
            idx[axis] = -1 if sign > 0 else 0
            return np.ascontiguousarray(arr[tuple(idx)])

        yield from pe.barrier_all()

        checksum = 0.0
        for _it in range(self.iters):
            # -- V-cycle down: fine -> coarse ---------------------------
            for level in range(self.levels):
                stride = min(1 << level, max(dims) - 1) or 1
                points = max(2, local_n >> level) ** 3
                if level == 0:
                    # Real smoothing sweep at the finest level.
                    block[1:-1, 1:-1, 1:-1] = (
                        block[:-2, 1:-1, 1:-1] + block[2:, 1:-1, 1:-1]
                        + block[1:-1, :-2, 1:-1] + block[1:-1, 2:, 1:-1]
                        + block[1:-1, 1:-1, :-2] + block[1:-1, 1:-1, 2:]
                    ) / 6.0
                yield pe.sim.timeout(
                    points * _POINT_US * pe.cost.compute_scale
                )
                # Face exchange with the six stride-neighbours.
                for axis in range(3):
                    if dims[axis] == 1:
                        continue
                    for sign in (-1, 1):
                        dst_pe = neighbor(axis, sign, stride)
                        if dst_pe == rank:
                            continue
                        face = face_of(block, axis, sign)[
                            :face_elems
                        ].ravel()[:face_elems]
                        yield from pe.put_array(
                            dst_pe,
                            ghost_addrs[level][(axis, -sign)],
                            face,
                        )
                yield from pe.barrier_all()
            # -- V-cycle up: coarse -> fine (compute only + sync) -------
            for level in reversed(range(self.levels)):
                points = max(2, local_n >> level) ** 3
                yield pe.sim.timeout(
                    points * _POINT_US * 0.5 * pe.cost.compute_scale
                )
            # Fold the ghosts we received back in (real data use).
            g = pe.view(ghost_addrs[0][(0, -1)], np.float64, face_elems)
            block[0, :, :] = 0.5 * (
                block[0, :, :] + g.reshape(local_n, local_n)
            )
            checksum = float(block.sum())

        # Residual norm reduction, as in the real benchmark.
        src = pe.shmalloc(f8)
        dst = pe.shmalloc(f8)
        pe.view(src, np.float64, 1)[0] = checksum
        yield from pe.sum_to_all(src, dst, 1)
        total = float(pe.view(dst, np.float64, 1)[0])
        yield from pe.barrier_all()
        return {"checksum_local": checksum, "checksum_global": total}

"""NAS SP (Scalar-Pentadiagonal) skeleton — see :mod:`.adi`."""

from __future__ import annotations

from .adi import AdiKernelBase

__all__ = ["NasSP"]


class NasSP(AdiKernelBase):
    """Scalar systems: smaller messages, lighter compute, more sweeps."""

    name = "sp"
    unknowns_per_point = 5
    block_doubles = 5
    point_us = 0.016
    base_iters = 10
    base_local = 12

"""Hybrid MPI+OpenSHMEM sample sort (paper reference [6]).

Jose et al. used hybrid MPI+PGAS for out-of-core sorting; this app
reproduces the communication recipe at in-memory scale:

1. **sampling** (MPI): every PE contributes ``oversample`` local key
   samples via ``gather``; rank 0 picks ``npes - 1`` splitters and
   ``bcast``\\ s them;
2. **routing** (OpenSHMEM): each PE reserves space in the destination
   bucket with a remote ``atomic_fetch_add`` and ships the records with
   pipelined non-blocking puts — the one-sided pattern that needs no
   receiver cooperation;
3. **local sort** (real ``numpy.sort``) and **validation** (MPI
   allreduce for conservation, fcollect for global boundary order).

Both programming models drive the *same* on-demand connections — the
unified-runtime property the paper's hybrid evaluation demonstrates.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from .base import Application

__all__ = ["HybridSampleSort"]

#: Modelled CPU cost per record per partition/sort pass (us).
_RECORD_US = 0.03


class HybridSampleSort(Application):
    name = "samplesort"
    uses_mpi = True

    def __init__(self, records_per_pe: int = 2048, oversample: int = 8,
                 seed: int = 424242) -> None:
        self.records_per_pe = records_per_pe
        self.oversample = oversample
        self.seed = seed

    def run(self, pe) -> Generator:
        npes, rank = pe.npes, pe.mype
        mpi = pe.mpi
        i8 = np.dtype(np.int64).itemsize

        rng = np.random.default_rng(self.seed + rank)
        keys = rng.integers(0, 1 << 40, size=self.records_per_pe,
                            dtype=np.int64)

        # Symmetric receive bucket + tail counter.
        capacity = 4 * self.records_per_pe + 64
        tail_addr = pe.shmalloc(i8)
        bucket_addr = pe.shmalloc(capacity * i8)
        yield from pe.barrier_all()

        # ---- 1. sampling over MPI ------------------------------------
        my_samples = np.sort(rng.choice(keys, size=self.oversample))
        gathered = yield from mpi.gather(my_samples.tolist(), root=0)
        if rank == 0:
            pool = np.sort(np.concatenate([np.array(g) for g in gathered]))
            # npes-1 evenly spaced splitters.
            idx = np.linspace(0, len(pool) - 1, npes + 1)[1:-1]
            splitters = pool[idx.astype(int)]
        else:
            splitters = None
        splitters = yield from mpi.bcast(
            None if splitters is None else splitters.tolist(), root=0
        )
        splitters = np.array(splitters, dtype=np.int64)
        yield pe.sim.timeout(
            self.records_per_pe * _RECORD_US * pe.cost.compute_scale
        )

        # ---- 2. one-sided routing over OpenSHMEM ----------------------
        owners = np.searchsorted(splitters, keys, side="right")
        for dest in range(npes):
            block = keys[owners == dest]
            if len(block) == 0:
                continue
            if dest == rank:
                slot = int(pe.view(tail_addr, np.int64, 1)[0])
                pe.view(tail_addr, np.int64, 1)[0] = slot + len(block)
                pe.view(bucket_addr, np.int64, capacity)[
                    slot:slot + len(block)
                ] = block
                continue
            slot = yield from pe.atomic_fetch_add(
                dest, tail_addr, len(block)
            )
            if slot + len(block) > capacity:
                from ..errors import ShmemError

                raise ShmemError(
                    f"sample sort bucket overflow at PE {dest} "
                    f"({slot + len(block)} > {capacity})"
                )
            yield from pe.put_array_nbi(
                dest, bucket_addr + int(slot) * i8, block
            )
        yield from pe.quiet()
        yield from pe.barrier_all()

        # ---- 3. local sort + validation --------------------------------
        count = int(pe.view(tail_addr, np.int64, 1)[0])
        mine = np.sort(pe.view(bucket_addr, np.int64, capacity)[:count].copy())
        yield pe.sim.timeout(
            max(1, count) * _RECORD_US * pe.cost.compute_scale
        )

        total = yield from mpi.allreduce(count, lambda a, b: a + b)
        keysum = yield from mpi.allreduce(
            int(mine.sum()) if count else 0, lambda a, b: a + b
        )

        edge_src = pe.shmalloc(3 * i8)
        edge_all = pe.shmalloc(3 * i8 * npes)
        e = pe.view(edge_src, np.int64, 3)
        e[:] = [int(mine[0]), int(mine[-1]), 1] if count else [0, 0, 0]
        yield from pe.fcollect(edge_src, edge_all, 3 * i8)
        table = pe.view(edge_all, np.int64, 3 * npes).reshape(npes, 3)
        ordered, prev_max = True, None
        for mn, mx, nonempty in table:
            if not nonempty:
                continue
            if prev_max is not None and mn < prev_max:
                ordered = False
            prev_max = mx
        yield from pe.barrier_all()
        return {
            "count": count,
            "total": total,
            "keysum": keysum,
            "locally_sorted": bool(np.all(np.diff(mine) >= 0)),
            "boundary_ordered": ordered,
            "imbalance": count / (total / npes) if total else 0.0,
        }

"""Benchmark harness: OSU-style microbenchmarks + per-figure experiments."""

from .microbench import (
    AtomicLatency,
    BarrierLatency,
    CollectiveLatency,
    GetLatency,
    PutLatency,
)
from .regression import linear_fit, project
from .runner import CURRENT, PROPOSED, ExperimentResult, run_job
from .tables import fmt_ratio, fmt_us, render_table, rows_to_csv

__all__ = [
    "PutLatency",
    "GetLatency",
    "AtomicLatency",
    "CollectiveLatency",
    "BarrierLatency",
    "linear_fit",
    "project",
    "ExperimentResult",
    "run_job",
    "CURRENT",
    "PROPOSED",
    "render_table",
    "rows_to_csv",
    "fmt_us",
    "fmt_ratio",
]

"""Command-line entry: regenerate paper tables/figures.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig5a fig9            # quick scale
    python -m repro.bench --full fig8a          # paper scale
    python -m repro.bench fig5-scale --sizes 131072 1048576
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    ablation_barrier,
    ablation_piggyback,
    ablation_pmi,
    ablation_qp_cache,
    fig1_breakdown,
    fig2_radar,
    fig5_startup,
    fig6_p2p,
    fig7_collectives,
    fig8a_nas,
    fig8b_graph500,
    fig9_churn,
    fig9_resources,
    table1_peers,
)

EXPERIMENTS = {
    "fig1": lambda quick: fig1_breakdown.run(quick=quick),
    "table1": lambda quick: table1_peers.run(quick=quick),
    "fig2": lambda quick: fig2_radar.run(),
    "fig5a": lambda quick: fig5_startup.run(quick=quick),
    "fig5b": lambda quick: fig5_startup.run_breakdown(quick=quick),
    # Beyond-the-paper on-demand curve; --full runs 16K/32K/65,536 PEs
    # (minutes + several GB), quick keeps the 16K point only.
    "fig5-scale": lambda quick: fig5_startup.run_scale(
        sizes=fig5_startup.SCALE_SIZES[:1] if quick else None),
    "fig6ab": lambda quick: fig6_p2p.run(quick=quick),
    "fig6c": lambda quick: fig6_p2p.run_atomics(),
    "fig7ab": lambda quick: fig7_collectives.run(quick=quick),
    "fig7c": lambda quick: fig7_collectives.run_barrier(quick=quick),
    "fig8a": lambda quick: fig8a_nas.run(quick=quick),
    "fig8b": lambda quick: fig8b_graph500.run(quick=quick),
    "fig9": lambda quick: fig9_resources.run(quick=quick),
    "fig9-churn": lambda quick: fig9_churn.run(quick=quick),
    "ablation-piggyback": lambda quick: ablation_piggyback.run(),
    "ablation-pmi": lambda quick: ablation_pmi.run(quick=quick),
    "ablation-barrier": lambda quick: ablation_barrier.run(quick=quick),
    "ablation-qp-cache": lambda quick: ablation_qp_cache.run(),
}

#: ``--sizes`` sanity ceiling: the macro layer happily models a million
#: PEs, but anything past 4Mi is a typo, not an experiment.
MAX_SCALE_SIZE = 1 << 22


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate tables/figures from the paper.",
    )
    parser.add_argument("names", nargs="*", help="experiment names")
    parser.add_argument("--list", action="store_true", help="list names")
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps (slow) instead of quick scale",
    )
    parser.add_argument(
        "--sizes", nargs="+", type=int, metavar="NPES",
        help="explicit job sizes for fig5-scale (overrides the preset "
             "sweep; sizes >= %d PEs use the macro phase models)"
        % fig5_startup.MACRO_THRESHOLD,
    )
    args = parser.parse_args(argv)

    if args.sizes is not None:
        if args.names != ["fig5-scale"]:
            print("--sizes is only valid with the fig5-scale experiment",
                  file=sys.stderr)
            return 2
        bad = [n for n in args.sizes if n <= 0 or n > MAX_SCALE_SIZE]
        if bad:
            print(f"--sizes values must be in 1..{MAX_SCALE_SIZE} PEs, "
                  f"got: {', '.join(map(str, bad))}", file=sys.stderr)
            return 2

    if args.list or not args.names:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    for name in args.names:
        fn = EXPERIMENTS.get(name)
        if fn is None:
            print(f"unknown experiment {name!r} (see --list)", file=sys.stderr)
            return 2
        if name == "fig5-scale" and args.sizes is not None:
            print(fig5_startup.run_scale(sizes=args.sizes).render())
            continue
        print(fn(not args.full).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

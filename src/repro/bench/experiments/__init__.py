"""One module per paper table/figure (see DESIGN.md experiment index)."""

from . import (
    ablation_barrier,
    ablation_piggyback,
    ablation_pmi,
    ablation_qp_cache,
    fig1_breakdown,
    fig2_radar,
    fig5_startup,
    fig6_p2p,
    fig7_collectives,
    fig8a_nas,
    fig8b_graph500,
    fig9_churn,
    fig9_resources,
    table1_peers,
)

__all__ = [
    "fig1_breakdown",
    "table1_peers",
    "fig2_radar",
    "fig5_startup",
    "fig6_p2p",
    "fig7_collectives",
    "fig8a_nas",
    "fig8b_graph500",
    "fig9_resources",
    "fig9_churn",
    "ablation_piggyback",
    "ablation_pmi",
    "ablation_barrier",
    "ablation_qp_cache",
]

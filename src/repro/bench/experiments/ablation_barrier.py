"""Ablation D3 — global vs intra-node barriers during init.

Section IV-E replaces the spec-mandated global ``shmem_barrier_all``
calls inside ``start_pes`` with shared-memory intra-node barriers,
removing both the synchronisation latency and the connections the
global barrier would otherwise force during init.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...apps import HelloWorld
from ...core import RuntimeConfig
from ..runner import ExperimentResult, job_spec, run_jobs
from ..tables import fmt_us

FULL_SIZES = [256, 1024, 4096]
QUICK_SIZES = [128, 512]

MODES = ("global", "intranode")


def run(sizes: Optional[Sequence[int]] = None, quick: bool = True
        ) -> ExperimentResult:
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    results = run_jobs(
        job_spec(
            HelloWorld(), npes,
            RuntimeConfig(
                connection_mode="ondemand", pmi_mode="nonblocking",
                barrier_mode=mode,
            ),
            testbed="B",
        )
        for npes in sizes
        for mode in MODES
    )
    rows: List[list] = []
    raw = {}
    for idx, npes in enumerate(sizes):
        g = results[2 * idx]
        i = results[2 * idx + 1]
        conns_g = g.resources.mean_connections
        conns_i = i.resources.mean_connections
        raw[npes] = {
            "global_us": g.startup.mean_us,
            "intranode_us": i.startup.mean_us,
            "global_conns": conns_g,
            "intranode_conns": conns_i,
        }
        rows.append([
            npes,
            fmt_us(g.startup.mean_us),
            fmt_us(i.startup.mean_us),
            f"{conns_g:.2f}",
            f"{conns_i:.2f}",
        ])
    return ExperimentResult(
        experiment="Ablation D3",
        title="init barriers: global vs intra-node (on-demand design)",
        columns=["npes", "init (global)", "init (intranode)",
                 "conns@init (global)", "conns@init (intranode)"],
        rows=rows,
        note="global init barriers force connections and serialise on the "
             "PMI exchange; intra-node barriers avoid both",
        extras={"raw": raw},
    )

"""Ablation D3 — global vs intra-node barriers during init.

Section IV-E replaces the spec-mandated global ``shmem_barrier_all``
calls inside ``start_pes`` with shared-memory intra-node barriers,
removing both the synchronisation latency and the connections the
global barrier would otherwise force during init.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...apps import HelloWorld
from ...core import RuntimeConfig
from ..runner import ExperimentResult, run_job
from ..tables import fmt_us

FULL_SIZES = [256, 1024, 4096]
QUICK_SIZES = [128, 512]


def run(sizes: Optional[Sequence[int]] = None, quick: bool = True
        ) -> ExperimentResult:
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    rows: List[list] = []
    raw = {}
    for npes in sizes:
        results = {}
        for mode in ("global", "intranode"):
            config = RuntimeConfig(
                connection_mode="ondemand", pmi_mode="nonblocking",
                barrier_mode=mode,
            )
            results[mode] = run_job(HelloWorld(), npes, config, testbed="B")
        g = results["global"]
        i = results["intranode"]
        conns_g = g.resources.mean_connections
        conns_i = i.resources.mean_connections
        raw[npes] = {
            "global_us": g.startup.mean_us,
            "intranode_us": i.startup.mean_us,
            "global_conns": conns_g,
            "intranode_conns": conns_i,
        }
        rows.append([
            npes,
            fmt_us(g.startup.mean_us),
            fmt_us(i.startup.mean_us),
            f"{conns_g:.2f}",
            f"{conns_i:.2f}",
        ])
    return ExperimentResult(
        experiment="Ablation D3",
        title="init barriers: global vs intra-node (on-demand design)",
        columns=["npes", "init (global)", "init (intranode)",
                 "conns@init (global)", "conns@init (intranode)"],
        rows=rows,
        note="global init barriers force connections and serialise on the "
             "PMI exchange; intra-node barriers avoid both",
        extras={"raw": raw},
    )

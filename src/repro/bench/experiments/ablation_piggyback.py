"""Ablation D1 — piggybacked vs separate segment-key exchange.

The paper's design appends the serialized ``<address, size, rkey>``
triplets to the connect request/reply so RDMA can start the instant the
connection is up (Section IV-C).  The ablation disables the piggyback
and falls back to a separate post-connect request/reply (the baseline's
inefficiency #2); the cost shows up as a higher *first-communication*
latency to each new peer.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ...apps.base import Application
from ..runner import PROPOSED, ExperimentResult, job_spec, run_jobs


class FirstTouchLatency(Application):
    """PE0 times its first put to every other PE (cold connections)."""

    name = "first-touch"

    def run(self, pe) -> Generator:
        buf = pe.shmalloc(64)
        yield from pe.barrier_all()
        samples: List[float] = []
        if pe.mype == 0:
            for peer in range(1, pe.npes):
                if pe.cluster.same_node(0, peer):
                    continue  # intra-node peers need no connection
                start = pe.sim.now
                yield from pe.put(peer, buf, b"x" * 64)
                samples.append(pe.sim.now - start)
        yield from pe.barrier_all()
        return samples


def run(npes: int = 16, quick: bool = True) -> ExperimentResult:
    piggy, separate = run_jobs([
        job_spec(FirstTouchLatency(), npes,
                 PROPOSED.evolve(piggyback_segments=True),
                 testbed="A", ppn=2),
        job_spec(FirstTouchLatency(), npes,
                 PROPOSED.evolve(piggyback_segments=False),
                 testbed="A", ppn=2),
    ])
    a = float(np.mean(piggy.app_results[0]))
    b = float(np.mean(separate.app_results[0]))
    overhead = (b - a) / a * 100.0
    rows = [
        ["piggybacked (proposed)", f"{a:.2f}"],
        ["separate exchange (baseline)", f"{b:.2f}"],
        ["overhead of separate exchange", f"{overhead:.1f}%"],
    ]
    return ExperimentResult(
        experiment="Ablation D1",
        title="first-communication latency per new peer (us)",
        columns=["variant", "mean first-put latency (us)"],
        rows=rows,
        note="piggybacking removes one request/reply round from every "
             "first contact",
        extras={"piggyback_us": a, "separate_us": b, "overhead_pct": overhead},
    )

"""Ablation D2 — blocking vs non-blocking PMI, per connection mode.

Section IV-D's claim, restated operationally: only the combination
**on-demand + PMIX_Iallgather** gives a (near-)constant ``start_pes``
across job sizes — the out-of-band exchange leaves the critical path
entirely.  Every other combination keeps an N-dependent term on the
critical path: blocking PMI pays the fence + gets inside init, and
static connections must consume the exchanged data (and wire up N
peers) before init can finish regardless of the PMI API.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from ...apps import HelloWorld
from ...core import RuntimeConfig
from ..runner import ExperimentResult, job_spec, run_jobs
from ..tables import fmt_us

FULL_SIZES = [512, 2048, 8192]
QUICK_SIZES = [256, 2048]

COMBOS = [
    ("static", "blocking"),
    ("static", "nonblocking"),
    ("ondemand", "blocking"),
    ("ondemand", "nonblocking"),
]


def run(sizes: Optional[Sequence[int]] = None, quick: bool = True
        ) -> ExperimentResult:
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    grid = list(product(COMBOS, sizes))
    results = run_jobs(
        job_spec(
            HelloWorld(), npes,
            RuntimeConfig(
                connection_mode=conn,
                pmi_mode=pmi,
                barrier_mode="global" if conn == "static" else "intranode",
            ),
            testbed="B",
        )
        for (conn, pmi), npes in grid
    )
    times: Dict[Tuple[str, str], Dict[int, float]] = {c: {} for c in COMBOS}
    for ((conn, pmi), npes), result in zip(grid, results):
        times[(conn, pmi)][npes] = result.startup.mean_us

    rows: List[list] = []
    growths: Dict[Tuple[str, str], float] = {}
    small, large = min(sizes), max(sizes)
    for combo in COMBOS:
        series = times[combo]
        growth = series[large] / series[small]
        growths[combo] = growth
        rows.append(
            list(combo)
            + [fmt_us(series[n]) for n in sizes]
            + [f"{growth:.3f}x"]
        )
    return ExperimentResult(
        experiment="Ablation D2",
        title="start_pes vs (connection mode x PMI mode) (Cluster-B)",
        columns=["connections", "PMI"] + [f"{n} PEs" for n in sizes]
        + ["growth"],
        rows=rows,
        note="only on-demand + non-blocking PMI stays ~constant with "
             "job size",
        extras={"times": times, "growths": growths,
                "sizes": (small, large)},
    )

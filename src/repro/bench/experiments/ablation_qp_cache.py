"""Ablation D5 — HCA QP-context cache pressure.

Paper Section I (drawback 3): HCAs cache a limited number of QP
contexts on-board; jobs whose processes keep many connections live pay
a per-message context-fetch penalty.  We drive a fixed communication
pattern whose per-node QP working set exceeds a small cache and sweep
the cache capacity.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ...core import RuntimeConfig
from ..runner import ExperimentResult, JobSpec, run_jobs
from ..tables import fmt_us
from ...apps.base import Application


class ManyPeerTraffic(Application):
    """Every PE repeatedly messages many distinct cross-node peers."""

    name = "many-peer-traffic"

    def __init__(self, peers: int = 24, rounds: int = 30) -> None:
        self.peers = peers
        self.rounds = rounds

    def run(self, pe) -> Generator:
        buf = pe.shmalloc(256)
        yield from pe.barrier_all()
        targets = [
            (pe.mype + 1 + k * pe.cluster.ppn) % pe.npes
            for k in range(self.peers)
        ]
        targets = [t for t in targets if not pe.cluster.same_node(t, pe.mype)]
        start = pe.sim.now
        for _ in range(self.rounds):
            for t in targets:
                yield from pe.put(t, buf, b"y" * 256)
        elapsed = pe.sim.now - start
        yield from pe.barrier_all()
        return elapsed


def run(cache_sizes: Optional[Sequence[int]] = None, npes: int = 32,
        quick: bool = True) -> ExperimentResult:
    cache_sizes = list(cache_sizes) if cache_sizes else [8, 32, 128, 512]
    config = RuntimeConfig.proposed(heap_backing_kb=256)
    results = run_jobs(
        JobSpec(
            app=ManyPeerTraffic(peers=12, rounds=20), npes=npes,
            config=config, testbed="A", ppn=4,
            cost_overrides={"qp_cache_entries": entries},
        )
        for entries in cache_sizes
    )
    rows: List[list] = []
    raw = {}
    for entries, result in zip(cache_sizes, results):
        comm_us = max(result.app_results)
        misses = result.counters.get("hca.qp_cache_misses", 0)
        hits = result.counters.get("hca.qp_cache_hits", 0)
        raw[entries] = (comm_us, misses, hits)
        miss_rate = misses / max(1, misses + hits) * 100.0
        rows.append([entries, fmt_us(comm_us), f"{miss_rate:.1f}%"])
    return ExperimentResult(
        experiment="Ablation D5",
        title=f"communication time vs HCA QP-cache capacity ({npes} PEs)",
        columns=["cache entries", "comm time", "miss rate"],
        rows=rows,
        note="small caches thrash when each node keeps many live QPs — "
             "the scalability drawback motivating fewer connections",
        extras={"raw": raw},
    )

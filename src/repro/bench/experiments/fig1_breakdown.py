"""Figure 1 — breakdown of OpenSHMEM initialisation time, static design.

Paper setup: Cluster-B, 16 processes/node, 128..4K processes, existing
(static + blocking PMI + global barriers) design.  Expected shape:
Connection Setup and PMI Exchange grow with job size and dominate;
Memory Registration / Shared Memory Setup / Other stay ~constant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...apps import HelloWorld
from ...shmem import (
    PHASE_CONN,
    PHASE_MEMREG,
    PHASE_OTHER,
    PHASE_PMI,
    PHASE_SHM,
)
from ..runner import CURRENT, ExperimentResult, run_job
from ..tables import fmt_us

FULL_SIZES = [128, 256, 512, 1024, 2048, 4096]
QUICK_SIZES = [128, 256, 512]

PHASES = [PHASE_CONN, PHASE_PMI, PHASE_MEMREG, PHASE_SHM, PHASE_OTHER]


def run(sizes: Optional[Sequence[int]] = None, quick: bool = True,
        observe: bool = False) -> ExperimentResult:
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    rows: List[list] = []
    raw = {}
    telemetry = {}
    for npes in sizes:
        result = run_job(HelloWorld(), npes, CURRENT, testbed="B",
                         observe=observe)
        means = result.startup.phase_means
        raw[npes] = means
        if result.telemetry is not None:
            telemetry[npes] = result.telemetry
        rows.append(
            [npes]
            + [fmt_us(means.get(p, 0.0)) for p in PHASES]
            + [fmt_us(result.startup.mean_us)]
        )
    extras = {"phase_means": raw}
    if telemetry:
        extras["telemetry"] = telemetry
    return ExperimentResult(
        experiment="Figure 1",
        title="start_pes breakdown, static design (Cluster-B, 16 ppn)",
        columns=["npes"] + PHASES + ["total"],
        rows=rows,
        note="Connection Setup and PMI Exchange grow with job size; "
             "the other phases are ~constant.",
        extras=extras,
    )

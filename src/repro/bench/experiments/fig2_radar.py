"""Figure 2 — qualitative summary radar (derived, not measured anew).

The paper's radar chart claims the proposed design improves resource
usage and startup time dramatically and application execution time
moderately.  We regenerate the three axes from small measured runs and
normalise each axis to the current design ( = 1.0, closer to the
centre is better).
"""

from __future__ import annotations

from ...apps import HelloWorld, NasBT
from ..runner import CURRENT, PROPOSED, ExperimentResult, run_job


def run(npes: int = 64, startup_npes: int = 512, quick: bool = True) -> ExperimentResult:
    hello_cur = run_job(HelloWorld(), startup_npes, CURRENT, testbed="B")
    hello_prop = run_job(HelloWorld(), startup_npes, PROPOSED, testbed="B")
    bt_cur = run_job(NasBT("S"), npes,
                     CURRENT.evolve(heap_backing_kb=2048), testbed="A")
    bt_prop = run_job(NasBT("S"), npes,
                      PROPOSED.evolve(heap_backing_kb=2048), testbed="A")

    axes = {
        "Startup Time": (
            hello_prop.startup.mean_us / hello_cur.startup.mean_us
        ),
        "Resource Usage": (
            bt_prop.resources.mean_endpoints
            / max(1.0, bt_cur.resources.mean_endpoints)
        ),
        "Execution Time": bt_cur and (
            bt_prop.wall_time_us / bt_cur.wall_time_us
        ),
    }
    rows = [
        [axis, "1.00", f"{value:.2f}"] for axis, value in axes.items()
    ]
    return ExperimentResult(
        experiment="Figure 2",
        title="summary radar: normalised metrics (lower is better)",
        columns=["axis", "current", "proposed"],
        rows=rows,
        note="large gains on resource usage & startup; moderate on "
             "execution time",
        extras={"axes": axes},
    )

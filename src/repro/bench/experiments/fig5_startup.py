"""Figure 5 — startup performance, current vs. proposed design.

(a) mean ``start_pes`` time and Hello World wall time at growing job
sizes for both designs (Cluster-B, 16 ppn).  Expected shape: the
current design grows steeply; the proposed design is near-constant;
the paper reports ~3x (start_pes) and ~8.3x (Hello World) at 8,192.

(b) per-phase breakdown of the proposed design: PMI Exchange and
Connection Setup become negligible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...apps import HelloWorld
from ...obs import diff_snapshots
from ...shmem import STARTUP_PHASES
from ..runner import (
    CURRENT,
    PROPOSED,
    ExperimentResult,
    job_spec,
    run_jobs,
)
from ..tables import fmt_ratio, fmt_us

FULL_SIZES = [128, 256, 512, 1024, 2048, 4096, 8192]
QUICK_SIZES = [128, 512, 2048]
#: Beyond-the-paper extrapolation sizes for the on-demand design (the
#: calendar-queue kernel runs 65,536 PEs in minutes on one core; the
#: macro phase models carry the curve to 1,048,576).  The static
#: design is deliberately absent: its all-pairs wireup needs O(N^2)
#: simulated QPs — 4.3 billion at 65,536 — which is neither tractable
#: nor interesting (the paper's point is that it cannot scale).
SCALE_SIZES = [16384, 32768, 65536, 131072, 262144, 524288, 1048576]
#: Sizes at or above this run through the analytical phase-model layer
#: (``macro=True``): the exact engine's per-PE generator swarm is past
#: its memory/wall budget there, and the macro layer reproduces the
#: startup metrics bit for bit (see tests/core/test_macro_equivalence).
MACRO_THRESHOLD = 131072


def run(sizes: Optional[Sequence[int]] = None, quick: bool = True,
        timeline=False) -> ExperimentResult:
    """``timeline`` (opt-in, ``True`` or a TimelineConfig-style dict)
    samples every run's time-series and adds a current-vs-proposed
    telemetry diff per size to ``extras["startup_diff"]``.  Off by
    default: sampling leaves simulated time untouched but the static
    design's probes walk O(npes) state per tick, which is real wall
    time at the full sweep sizes."""
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    observe = {"timeline": timeline} if timeline else False
    specs = [
        job_spec(HelloWorld(), npes, config, testbed="B", observe=observe)
        for npes in sizes
        for config in (CURRENT, PROPOSED)
    ]
    results = run_jobs(specs)
    rows: List[list] = []
    raw: Dict[int, Dict[str, object]] = {}
    startup_diff: Dict[int, dict] = {}
    for i, npes in enumerate(sizes):
        current, proposed = results[2 * i], results[2 * i + 1]
        raw[npes] = {"current": current, "proposed": proposed}
        if timeline:
            startup_diff[npes] = diff_snapshots(
                current.telemetry, proposed.telemetry
            )
        init_ratio = current.startup.mean_us / proposed.startup.mean_us
        wall_ratio = current.wall_time_us / proposed.wall_time_us
        rows.append([
            npes,
            fmt_us(current.startup.mean_us),
            fmt_us(proposed.startup.mean_us),
            fmt_ratio(init_ratio),
            fmt_us(current.wall_time_us),
            fmt_us(proposed.wall_time_us),
            fmt_ratio(wall_ratio),
        ])
    return ExperimentResult(
        experiment="Figure 5(a)",
        title="start_pes and Hello World, current vs proposed "
              "(Cluster-B, 16 ppn)",
        columns=[
            "npes", "start_pes cur", "start_pes prop", "init speedup",
            "hello cur", "hello prop", "hello speedup",
        ],
        rows=rows,
        note="proposed start_pes is near-constant; paper reports ~3x init "
             "and ~8.3x Hello World at 8192",
        extras={"raw": raw, "startup_diff": startup_diff or None},
    )


def run_scale(sizes: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Figure 5 extended: on-demand startup far past the paper's 8,192.

    Proposed (on-demand) design only, one job per size, run serially
    in-process — at these sizes a single job dominates a core and the
    pool would only add fork + result-pickling overhead (and at 65,536
    PEs, several gigabytes of resident simulation state per worker).
    Sizes at or above :data:`MACRO_THRESHOLD` use the analytical phase
    models (``macro=True``), which is what carries the curve to
    1,048,576 PEs on one core.

    Each point records host wall seconds and peak RSS (``getrusage``
    high-water, in MB — monotone across the ascending sweep) in
    ``extras["wallclock"]`` so memory headroom is tracked alongside
    simulated time.
    """
    import resource
    import time

    from ..runner import run_job

    sizes = list(sizes) if sizes else SCALE_SIZES
    rows: List[list] = []
    raw: Dict[int, object] = {}
    wallclock: Dict[int, dict] = {}
    for npes in sizes:
        macro = npes >= MACRO_THRESHOLD
        # Host wall, not simulated time: the whole point of this
        # column is how long the simulator itself takes per point.
        t0 = time.perf_counter()  # lint: allow-wall-clock
        result = run_job(HelloWorld(), npes, PROPOSED, testbed="B",
                         macro=macro)
        wall_s = time.perf_counter() - t0  # lint: allow-wall-clock
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        raw[npes] = result
        wallclock[npes] = {
            "wall_s": round(wall_s, 3),
            "peak_rss_kb": rss_kb,
            "macro": macro,
        }
        rows.append([
            npes,
            fmt_us(result.startup.mean_us),
            fmt_us(result.wall_time_us),
            f"{result.resources.mean_connections:.2f}",
            "macro" if macro else "exact",
            f"{wall_s:.1f}s",
            f"{rss_kb / 1024:.0f}MB",
        ])
    return ExperimentResult(
        experiment="Figure 5 (scale)",
        title="on-demand start_pes beyond the paper (Cluster-B, 16 ppn)",
        columns=["npes", "start_pes", "hello wall", "conns/PE",
                 "engine", "host wall", "peak RSS"],
        rows=rows,
        note="proposed design only: static wireup is O(N^2) QPs and "
             "infeasible at these sizes — which is the paper's point; "
             ">= 131072 PEs via the macro phase models",
        extras={"raw": raw, "wallclock": wallclock},
    )


def run_breakdown(sizes: Optional[Sequence[int]] = None, quick: bool = True
                  ) -> ExperimentResult:
    """Figure 5(b): phase breakdown of the *proposed* design."""
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES[:-1])
    results = run_jobs(
        job_spec(HelloWorld(), npes, PROPOSED, testbed="B") for npes in sizes
    )
    rows: List[list] = []
    raw = {}
    for npes, result in zip(sizes, results):
        means = result.startup.phase_means
        raw[npes] = means
        rows.append(
            [npes]
            + [fmt_us(means.get(p, 0.0)) for p in STARTUP_PHASES]
            + [fmt_us(result.startup.mean_us)]
        )
    return ExperimentResult(
        experiment="Figure 5(b)",
        title="start_pes breakdown, proposed design (Cluster-B, 16 ppn)",
        columns=["npes"] + STARTUP_PHASES + ["total"],
        rows=rows,
        note="negligible time in PMI operations and connection setup",
        extras={"phase_means": raw},
    )

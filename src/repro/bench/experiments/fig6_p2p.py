"""Figure 6 — point-to-point and atomic latency, static vs on-demand.

Paper finding: at the microbenchmark level both designs are identical
(<3% difference), because the on-demand handshake is a one-time cost
amortised over the timing loop's iterations (Section V-C).
Cluster-A, 2 PEs on distinct nodes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..microbench import DEFAULT_SIZES, AtomicLatency, GetLatency, PutLatency
from ..runner import CURRENT, PROPOSED, ExperimentResult, run_job

QUICK_SIZES = [1, 16, 256, 4096, 65536, 1048576]


def _latency(app_cls, sizes, iterations, config):
    result = run_job(
        app_cls(sizes=sizes, iterations=iterations), npes=2, config=config,
        testbed="A", ppn=1, heap_backing_kb=2 * 1024,
    )
    return result.app_results[0]


def run(sizes: Optional[Sequence[int]] = None, iterations: int = 100,
        quick: bool = True) -> ExperimentResult:
    """Figures 6(a) get and 6(b) put."""
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else DEFAULT_SIZES)
    rows: List[list] = []
    raw = {"get": {}, "put": {}}
    for op, cls in (("get", GetLatency), ("put", PutLatency)):
        static = _latency(cls, sizes, iterations, CURRENT)
        ondemand = _latency(cls, sizes, iterations, PROPOSED)
        for size in sizes:
            s, o = static[size], ondemand[size]
            diff = abs(o - s) / s * 100.0
            raw[op][size] = (s, o, diff)
            rows.append([op, size, f"{s:.2f}", f"{o:.2f}", f"{diff:.2f}%"])
    return ExperimentResult(
        experiment="Figure 6(a,b)",
        title="shmem get/put latency (us), static vs on-demand (Cluster-A)",
        columns=["op", "size (B)", "static (us)", "on-demand (us)", "diff"],
        rows=rows,
        note="<3% difference at every size (handshake amortised)",
        extras={"latency": raw},
    )


def run_atomics(iterations: int = 100, quick: bool = True) -> ExperimentResult:
    """Figure 6(c): atomic-operation latency."""
    static = _latency_atomics(iterations, CURRENT)
    ondemand = _latency_atomics(iterations, PROPOSED)
    rows = []
    raw = {}
    for op in AtomicLatency.OPS:
        s, o = static[op], ondemand[op]
        diff = abs(o - s) / s * 100.0
        raw[op] = (s, o, diff)
        rows.append([op, f"{s:.2f}", f"{o:.2f}", f"{diff:.2f}%"])
    return ExperimentResult(
        experiment="Figure 6(c)",
        title="shmem atomics latency (us), static vs on-demand (Cluster-A)",
        columns=["op", "static (us)", "on-demand (us)", "diff"],
        rows=rows,
        note="<3% difference on every operation",
        extras={"latency": raw},
    )


def _latency_atomics(iterations, config):
    result = run_job(
        AtomicLatency(iterations=iterations), npes=2, config=config,
        testbed="A", ppn=1,
    )
    return result.app_results[0]

"""Figure 7 — collective latency, static vs on-demand.

(a) shmem_collect (dense) and (b) shmem_reduce (sparse) across message
sizes at a fixed PE count (paper: 512), and (c) shmem_barrier_all
across PE counts.  Expected: both schemes identical (the on-demand
setup amortises), collect costs much more than reduce at equal sizes.
Cluster-A, 8 ppn.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..microbench import BarrierLatency, CollectiveLatency
from ..runner import (
    CURRENT,
    PROPOSED,
    ExperimentResult,
    job_spec,
    run_jobs,
)
from ..tables import fmt_us

FULL_NPES = 512
QUICK_NPES = 64
FULL_BARRIER_SIZES = [128, 256, 512]
QUICK_BARRIER_SIZES = [32, 64, 128]


def run(npes: Optional[int] = None, sizes: Optional[Sequence[int]] = None,
        iterations: int = 10, quick: bool = True) -> ExperimentResult:
    """Figures 7(a) collect and 7(b) reduce."""
    npes = npes or (QUICK_NPES if quick else FULL_NPES)
    sizes = list(sizes) if sizes else [64, 1024, 16384]
    rows: List[list] = []
    raw = {"collect": {}, "reduce": {}}
    backing = max(1024, (max(sizes) * (npes + 2)) // 1024 + 64)
    kinds = ("collect", "reduce")
    results = run_jobs(
        job_spec(
            CollectiveLatency(kind, sizes=sizes, iterations=iterations),
            npes, config, testbed="A", heap_backing_kb=backing,
        )
        for kind in kinds
        for config in (CURRENT, PROPOSED)
    )
    for i, kind in enumerate(kinds):
        static = results[2 * i].app_results[0]
        ondemand = results[2 * i + 1].app_results[0]
        for size in sizes:
            s, o = static[size], ondemand[size]
            diff = abs(o - s) / s * 100.0
            raw[kind][size] = (s, o, diff)
            rows.append(
                [kind, size, fmt_us(s), fmt_us(o), f"{diff:.2f}%"]
            )
    return ExperimentResult(
        experiment="Figure 7(a,b)",
        title=f"shmem collect/reduce latency at {npes} PEs (Cluster-A)",
        columns=["collective", "size (B)", "static", "on-demand", "diff"],
        rows=rows,
        note="identical performance; collect (dense) >> reduce (sparse)",
        extras={"latency": raw, "npes": npes},
    )


def run_barrier(sizes: Optional[Sequence[int]] = None, iterations: int = 30,
                quick: bool = True) -> ExperimentResult:
    """Figure 7(c): shmem_barrier_all vs process count."""
    sizes = list(sizes) if sizes else (
        QUICK_BARRIER_SIZES if quick else FULL_BARRIER_SIZES
    )
    results = run_jobs(
        job_spec(BarrierLatency(iterations=iterations), npes, config,
                 testbed="A")
        for npes in sizes
        for config in (CURRENT, PROPOSED)
    )
    rows = []
    raw = {}
    for i, npes in enumerate(sizes):
        s = results[2 * i].app_results[0]
        o = results[2 * i + 1].app_results[0]
        diff = abs(o - s) / s * 100.0
        raw[npes] = (s, o, diff)
        rows.append([npes, f"{s:.2f}", f"{o:.2f}", f"{diff:.2f}%"])
    return ExperimentResult(
        experiment="Figure 7(c)",
        title="shmem_barrier_all latency (us) vs process count (Cluster-A)",
        columns=["npes", "static (us)", "on-demand (us)", "diff"],
        rows=rows,
        note="similar for both schemes at every process count",
        extras={"latency": raw},
    )

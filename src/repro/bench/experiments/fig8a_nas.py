"""Figure 8(a) — NAS benchmark execution time, static vs on-demand.

Paper: class B at 256 processes on Cluster-A; the on-demand design wins
18-35% of *total execution time* (reported by the job launcher), almost
entirely from the cheaper startup — the kernels themselves are
unchanged (Figure 6/7 showed identical per-operation latency).
"""

from __future__ import annotations

from typing import List, Optional

from ...apps import NasBT, NasEP, NasMG, NasSP
from ..runner import CURRENT, PROPOSED, ExperimentResult, run_job
from ..tables import fmt_us


def _apps(nas_class: str):
    return [
        ("BT", lambda: NasBT(nas_class)),
        ("EP", lambda: NasEP(nas_class, real_pairs=1000)),
        ("MG", lambda: NasMG(nas_class, iters=4)),
        ("SP", lambda: NasSP(nas_class)),
    ]


def run(npes: Optional[int] = None, nas_class: Optional[str] = None,
        quick: bool = True) -> ExperimentResult:
    npes = npes or (64 if quick else 256)
    nas_class = nas_class or ("S" if quick else "B")
    rows: List[list] = []
    raw = {}
    for name, make in _apps(nas_class):
        static = run_job(make(), npes, CURRENT.evolve(heap_backing_kb=2048),
                         testbed="A")
        ondemand = run_job(make(), npes, PROPOSED.evolve(heap_backing_kb=2048),
                           testbed="A")
        improvement = (
            (static.wall_time_us - ondemand.wall_time_us)
            / static.wall_time_us * 100.0
        )
        raw[name] = (static.wall_time_us, ondemand.wall_time_us, improvement)
        rows.append([
            name,
            fmt_us(static.wall_time_us),
            fmt_us(ondemand.wall_time_us),
            f"{improvement:.1f}%",
        ])
    return ExperimentResult(
        experiment="Figure 8(a)",
        title=f"NAS class {nas_class} total execution time at {npes} PEs "
              "(Cluster-A)",
        columns=["benchmark", "static", "on-demand", "improvement"],
        rows=rows,
        note="paper reports 18-35% improvement at 256 PEs / class B",
        extras={"times": raw, "npes": npes},
    )

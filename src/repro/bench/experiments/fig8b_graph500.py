"""Figure 8(b) — hybrid MPI+OpenSHMEM Graph500, static vs on-demand.

Paper: up to 512 processes, a 1,024-vertex / 16,384-edge Kronecker
graph; execution time includes generation and validation.  Expected:
<2% difference between the schemes — the hybrid app's runtime is
dominated by generation/validation compute, so the startup saving is
relatively small, and per-operation costs are identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...apps import Graph500Hybrid
from ..runner import CURRENT, PROPOSED, ExperimentResult, run_job
from ..tables import fmt_us

FULL_SIZES = [128, 256, 512]
QUICK_SIZES = [32, 64]


def run(sizes: Optional[Sequence[int]] = None, scale: Optional[int] = None,
        quick: bool = True) -> ExperimentResult:
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    scale = scale or (8 if quick else 10)
    rows: List[list] = []
    raw = {}
    for npes in sizes:
        app = lambda: Graph500Hybrid(scale=scale, edgefactor=16, nroots=2)
        static = run_job(app(), npes, CURRENT.evolve(heap_backing_kb=2048),
                         testbed="A")
        ondemand = run_job(app(), npes, PROPOSED.evolve(heap_backing_kb=2048),
                           testbed="A")
        diff = (
            (static.wall_time_us - ondemand.wall_time_us)
            / static.wall_time_us * 100.0
        )
        errors = sum(
            b["errors"] for b in static.app_results[0]["bfs"]
        ) + sum(b["errors"] for b in ondemand.app_results[0]["bfs"])
        raw[npes] = (static.wall_time_us, ondemand.wall_time_us, diff)
        rows.append([
            npes,
            fmt_us(static.wall_time_us),
            fmt_us(ondemand.wall_time_us),
            f"{diff:.2f}%",
            "ok" if errors == 0 else f"{errors} ERRORS",
        ])
    return ExperimentResult(
        experiment="Figure 8(b)",
        title=f"hybrid Graph500 (scale {scale}) execution time (Cluster-A)",
        columns=["npes", "static", "on-demand", "difference", "validation"],
        rows=rows,
        note="paper reports negligible (<2%) difference between schemes",
        extras={"times": raw, "scale": scale},
    )

"""Figure 9 (churn companion) — steady-state QP footprint vs reconnect
latency under connection churn.

The paper's Figure 9 shows on-demand endpoint counts staying far below
the static design's N-per-process because its applications touch small,
*stable* neighbourhoods.  This companion asks the follow-up the paper
leaves open: what happens when the neighbourhood rotates?  The
:class:`~repro.apps.ChurnWorkload` touches a fresh skewed peer set each
epoch, so without a lifecycle policy the per-PE QP footprint is the
union of every epoch's peers — it grows with runtime, not with the
working set.  With idle eviction installed
(:class:`~repro.gasnet.LifecyclePolicy`) the reaper retires cold
connections during the inter-epoch gaps and the footprint stays pinned
near the per-epoch working set, at the price of reconnect handshakes
(latency read from the flight recorder's
``conduit.reconnect_latency_us`` histogram).

Three design points per size:

* ``off``    — no lifecycle (the paper's behaviour): footprint grows.
* ``lru``    — evict anything idle past ``idle_timeout_us``: smallest
  footprint, but the hot partner is evicted during every gap and pays
  a reconnect each epoch.
* ``credit`` — credit-based aging with a deeper budget: cold rotated
  peers still drain, the hot partner's refreshed credits survive the
  gap, so it reconnects less.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...apps import ChurnWorkload
from ...gasnet import LifecyclePolicy
from ...obs import diff_snapshots, series_peak
from ..runner import PROPOSED, ExperimentResult, job_spec, run_jobs

FULL_SIZES = [256, 1024]
QUICK_SIZES = [64]

#: Epochs/partners chosen so the union footprint (epochs x cold
#: partners) clearly exceeds the working set at every size.
EPOCHS = 6
PARTNERS = 4
REQUESTS = 8
#: Inter-epoch idle gap: one lru idle_timeout (20ms default) plus
#: slack, so a full reaper scan lands inside every gap.
IDLE_GAP_US = 30_000.0

#: The evaluated lifecycle policies (``None`` = paper behaviour).
POLICIES = [
    ("off", None),
    ("lru", LifecyclePolicy(policy="lru")),
    # credits * scan_interval = 40ms of idle tolerance > the 30ms gap:
    # the hot partner's refilled credits carry it across epochs while
    # never-retouched cold peers still drain to zero.
    ("credit", LifecyclePolicy(policy="credit", credits=8)),
]


def _app() -> ChurnWorkload:
    return ChurnWorkload(epochs=EPOCHS, partners=PARTNERS,
                         requests=REQUESTS, idle_gap_us=IDLE_GAP_US)


def run(sizes: Optional[Sequence[int]] = None, quick: bool = True
        ) -> ExperimentResult:
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    app = _app()
    grid = [(npes, label, policy)
            for npes in sizes for label, policy in POLICIES]
    results = run_jobs(
        job_spec(app, npes, PROPOSED, testbed="A",
                 observe={"timeline": True}, lifecycle=policy)
        for npes, label, policy in grid
    )

    rows: List[list] = []
    series: Dict[str, Dict[int, Dict[str, float]]] = {}
    telemetry: Dict[str, Dict[int, dict]] = {}
    for (npes, label, _policy), result in zip(grid, results):
        peak = max(r["peak_connections"] for r in result.app_results)
        final = max(r["final_connections"] for r in result.app_results)
        evictions = result.counters.get("conduit.evictions", 0)
        reconnects = result.counters.get("conduit.reconnects", 0)
        hist = result.telemetry["metrics"]["histograms"].get(
            "conduit.reconnect_latency_us"
        )
        p50 = hist["p50"] if hist else float("nan")
        p99 = hist["p99"] if hist else float("nan")
        # The sampled footprint timeline must agree with the scalar
        # high-water mark: conduit.peak_connections samples the running
        # maximum, so its own max is exactly the job-wide peak even
        # when the transient extremum falls between two ticks.
        timeline = result.telemetry["timeline"]
        tl_peak = series_peak(timeline["series"]["conduit.peak_connections"])
        if int(tl_peak) != int(peak):
            raise AssertionError(
                f"timeline peak {tl_peak} != scalar peak {peak} "
                f"(npes={npes}, policy={label})"
            )
        telemetry.setdefault(label, {})[npes] = result.telemetry
        series.setdefault(label, {})[npes] = {
            "peak_connections": peak,
            "final_connections": final,
            "timeline_peak_connections": tl_peak,
            "evictions": evictions,
            "reconnects": reconnects,
            "reconnect_p50_us": p50,
            "reconnect_p99_us": p99,
        }
        rows.append([
            npes, label, peak, int(tl_peak), final, evictions, reconnects,
            "-" if hist is None else f"{p50:.1f}",
            "-" if hist is None else f"{p99:.1f}",
        ])

    # How much footprint does eviction actually buy?  Diff the
    # evict-never telemetry against lru at the largest size: the
    # conduit.peak_connections delta is the figure's headline number.
    footprint_diff = None
    largest = sizes[-1]
    if "off" in telemetry and "lru" in telemetry:
        footprint_diff = diff_snapshots(
            telemetry["off"][largest], telemetry["lru"][largest]
        )
    return ExperimentResult(
        experiment="Figure 9 (churn)",
        title="QP footprint vs reconnect latency under connection churn "
              "(Cluster-A)",
        columns=["PEs", "policy", "peak conns", "tl peak", "final conns",
                 "evictions", "reconnects",
                 "reconnect p50 (us)", "reconnect p99 (us)"],
        rows=rows,
        note="'off' footprint is the union of every epoch's peers "
             "(grows with runtime); eviction pins it to the working set "
             "at the price of reconnect handshakes; 'tl peak' is the "
             "sampled footprint timeline's maximum (must equal the "
             "scalar peak)",
        extras={"series": series, "epochs": EPOCHS, "partners": PARTNERS,
                "telemetry": telemetry, "footprint_diff": footprint_diff},
    )

"""Figure 9 — endpoints created per process: measured and projected.

Paper: per-process endpoint (QP) counts for 2DHeat/BT/EP/MG/SP at
64/256/1024 processes under the on-demand design, with a linear
regression projecting 4,096; the static design always creates N
endpoints per process, so at 1,024 PEs the reduction exceeds 90%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...apps import Heat2D, NasBT, NasEP, NasMG, NasSP
from ..regression import project
from ..runner import PROPOSED, ExperimentResult, job_spec, run_jobs

FULL_SIZES = [64, 256, 1024]
QUICK_SIZES = [32, 128]
PROJECT_AT = 4096


def _apps(npes: int):
    from ...apps import process_grid

    pr, pc = process_grid(npes)
    heat_n = max(pr, pc) * 8
    return [
        ("2DHeat", Heat2D(n=heat_n, iters=6, check_every=3)),
        ("BT", NasBT("S")),
        ("EP", NasEP("S", real_pairs=300)),
        ("MG", NasMG("S", iters=3)),
        ("SP", NasSP("S")),
    ]


def run(sizes: Optional[Sequence[int]] = None, quick: bool = True
        ) -> ExperimentResult:
    sizes = list(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    config = PROPOSED.evolve(heap_backing_kb=2048)
    grid = [(npes, name, app) for npes in sizes for name, app in _apps(npes)]
    results = run_jobs(
        job_spec(app, npes, config, testbed="A") for npes, name, app in grid
    )
    per_app: Dict[str, Dict[int, float]] = {}
    reductions: Dict[str, float] = {}
    for (npes, name, _app), result in zip(grid, results):
        endpoints = result.resources.mean_endpoints
        per_app.setdefault(name, {})[npes] = endpoints
        # Static design would create N endpoints per process.
        reductions[name] = (1.0 - endpoints / npes) * 100.0

    rows: List[list] = []
    largest = max(sizes)
    for name, series in per_app.items():
        xs = sorted(series)
        ys = [series[x] for x in xs]
        projected = project(xs, ys, PROJECT_AT) if len(xs) >= 2 else float("nan")
        rows.append(
            [name]
            + [f"{series[x]:.1f}" for x in xs]
            + [f"{projected:.1f}", f"{reductions[name]:.1f}%"]
        )
    return ExperimentResult(
        experiment="Figure 9",
        title="endpoints created per process, on-demand design (Cluster-A)",
        columns=(
            ["application"]
            + [f"{n} PEs" for n in sorted(sizes)]
            + [f"{PROJECT_AT} (projected)", f"reduction @ {largest}"]
        ),
        rows=rows,
        note="static design creates N endpoints/process; paper reports "
             ">90% reduction at 1024 PEs",
        extras={"series": per_app, "reductions": reductions},
    )

"""Table I — average number of communicating peers per process.

The paper measures BT, EP, MG, SP and 2D-Heat and finds every
application talks to a small subset of its peers (the motivation for
on-demand connections).  EP (reduction-only) is the sparsest; the
stencil/ADI codes sit around 5-10 peers regardless of job size.
"""

from __future__ import annotations

from typing import List, Optional

from ...apps import Heat2D, NasBT, NasEP, NasMG, NasSP
from ..runner import PROPOSED, ExperimentResult, job_spec, run_jobs


def _apps(npes: int, nas_class: str):
    return [
        ("BT", NasBT(nas_class)),
        ("EP", NasEP(nas_class, real_pairs=500)),
        ("MG", NasMG(nas_class, iters=3)),
        ("SP", NasSP(nas_class)),
        ("2DHeat", Heat2D(n=_heat_n(npes), iters=8, check_every=4)),
    ]


def _heat_n(npes: int) -> int:
    # A grid that tiles any near-square process grid we use.
    from ...apps import process_grid

    pr, pc = process_grid(npes)
    base = max(pr, pc)
    return base * 8


def run(npes: int = 64, nas_class: str = "S", quick: bool = True
        ) -> ExperimentResult:
    if not quick and npes < 256:
        npes = 256
    rows: List[list] = []
    raw = {}
    config = PROPOSED.evolve(heap_backing_kb=2048)
    apps = _apps(npes, nas_class)
    results = run_jobs(
        job_spec(app, npes, config, testbed="A") for _name, app in apps
    )
    for (name, _app), result in zip(apps, results):
        peers = result.resources.mean_active_peers
        raw[name] = peers
        rows.append([name, npes, f"{peers:.2f}"])
    return ExperimentResult(
        experiment="Table I",
        title=f"average communicating peers per process ({npes} PEs)",
        columns=["application", "npes", "avg peers"],
        rows=rows,
        note="every application uses a small subset of its peers; "
             "EP is the sparsest",
        extras={"peers": raw},
    )

"""OSU-microbenchmark-style applications (paper Figures 6 and 7).

Timing follows the OSU convention the paper cites: the loop includes
every iteration (so on-demand connection setup is *amortised over the
iterations*, not excluded — Section V-C), and the reported latency is
the mean per iteration.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence

import numpy as np

from ..apps.base import Application

__all__ = [
    "DEFAULT_SIZES",
    "PutLatency",
    "GetLatency",
    "AtomicLatency",
    "CollectiveLatency",
    "BarrierLatency",
]

#: Power-of-four sweep 1B..1MB, like the paper's x axes.
DEFAULT_SIZES = [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576]


class _MicroBench(Application):
    """Common setup: a max-size symmetric buffer pair."""

    def __init__(self, sizes: Sequence[int] = DEFAULT_SIZES,
                 iterations: int = 100) -> None:
        self.sizes = list(sizes)
        self.iterations = iterations


class PutLatency(_MicroBench):
    """osu_oshm_put: PE0 -> PE1 blocking put latency per size."""

    name = "put-latency"

    def run(self, pe) -> Generator:
        buf = pe.shmalloc(max(self.sizes))
        yield from pe.barrier_all()
        results: Dict[int, float] = {}
        if pe.mype == 0:
            for size in self.sizes:
                payload = bytes(size)
                start = pe.sim.now
                for _ in range(self.iterations):
                    yield from pe.put(1, buf, payload)
                results[size] = (pe.sim.now - start) / self.iterations
        yield from pe.barrier_all()
        return results


class GetLatency(_MicroBench):
    """osu_oshm_get: PE0 reads from PE1."""

    name = "get-latency"

    def run(self, pe) -> Generator:
        buf = pe.shmalloc(max(self.sizes))
        yield from pe.barrier_all()
        results: Dict[int, float] = {}
        if pe.mype == 0:
            for size in self.sizes:
                start = pe.sim.now
                for _ in range(self.iterations):
                    yield from pe.get(1, buf, size)
                results[size] = (pe.sim.now - start) / self.iterations
        yield from pe.barrier_all()
        return results


class AtomicLatency(_MicroBench):
    """osu_oshm_atomics: fadd/finc/add/inc/cswap/swap latencies."""

    name = "atomic-latency"
    OPS = ["fadd", "finc", "add", "inc", "cswap", "swap"]

    def __init__(self, iterations: int = 100) -> None:
        super().__init__(sizes=[8], iterations=iterations)

    def run(self, pe) -> Generator:
        cell = pe.shmalloc(8)
        yield from pe.barrier_all()
        results: Dict[str, float] = {}
        if pe.mype == 0:
            ops = {
                "fadd": lambda: pe.atomic_fetch_add(1, cell, 3),
                "finc": lambda: pe.atomic_fetch_inc(1, cell),
                "add": lambda: pe.atomic_add(1, cell, 3),
                "inc": lambda: pe.atomic_inc(1, cell),
                "cswap": lambda: pe.atomic_compare_swap(1, cell, 0, 1),
                "swap": lambda: pe.atomic_swap(1, cell, 5),
            }
            for op in self.OPS:
                start = pe.sim.now
                for _ in range(self.iterations):
                    yield from ops[op]()
                results[op] = (pe.sim.now - start) / self.iterations
        yield from pe.barrier_all()
        return results


class CollectiveLatency(_MicroBench):
    """osu_oshm_collect / osu_oshm_reduce at a fixed PE count.

    ``warmup`` iterations run untimed first (standard OSU practice);
    the paper runs 1,000 timed iterations, far past the point where the
    one-time on-demand handshakes stop being visible.
    """

    name = "collective-latency"

    def __init__(self, kind: str, sizes: Sequence[int] = None,
                 iterations: int = 20, warmup: int = 5) -> None:
        if kind not in ("collect", "reduce"):
            raise ValueError(f"unknown collective kind {kind!r}")
        sizes = sizes or [s for s in DEFAULT_SIZES if s <= 65536]
        super().__init__(sizes=sizes, iterations=iterations)
        self.kind = kind
        self.warmup = warmup

    def run(self, pe) -> Generator:
        max_size = max(self.sizes)
        src = pe.shmalloc(max_size)
        dst = pe.shmalloc(
            max_size * (pe.npes if self.kind == "collect" else 1)
        )
        yield from pe.barrier_all()
        results: Dict[int, float] = {}
        for size in self.sizes:
            for it in range(self.warmup + self.iterations):
                if it == self.warmup:
                    start = pe.sim.now
                if self.kind == "collect":
                    yield from pe.fcollect(src, dst, size)
                else:
                    count = max(1, size // 8)
                    yield from pe.reduce(src, dst, count, np.float64, "sum")
            results[size] = (pe.sim.now - start) / self.iterations
        yield from pe.barrier_all()
        return results


class BarrierLatency(_MicroBench):
    """osu_oshm_barrier: shmem_barrier_all mean latency."""

    name = "barrier-latency"

    def __init__(self, iterations: int = 50) -> None:
        super().__init__(sizes=[0], iterations=iterations)

    def run(self, pe) -> Generator:
        yield from pe.barrier_all()
        start = pe.sim.now
        for _ in range(self.iterations):
            yield from pe.barrier_all()
        return (pe.sim.now - start) / self.iterations

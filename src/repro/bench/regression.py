"""Least-squares projection used by Figure 9.

The paper fits a linear regression through the measured per-process
endpoint counts at 64/256/1024 processes and projects 4,096.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["linear_fit", "project"]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Returns (slope, intercept) of the least-squares line."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need >= 2 paired points")
    slope, intercept = np.polyfit(np.asarray(xs, float), np.asarray(ys, float), 1)
    return float(slope), float(intercept)


def project(xs: Sequence[float], ys: Sequence[float], x_new: float) -> float:
    """Fit on (xs, ys) and evaluate at ``x_new`` (paper: 4096 PEs)."""
    slope, intercept = linear_fit(xs, ys)
    return slope * x_new + intercept

"""Experiment plumbing shared by all figure/table harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..cluster import Cluster, cluster_a, cluster_b
from ..core import Job, JobResult, RuntimeConfig

__all__ = ["ExperimentResult", "run_job", "CURRENT", "PROPOSED"]

#: The paper's two design points.
CURRENT = RuntimeConfig.current()
PROPOSED = RuntimeConfig.proposed()


@dataclass
class ExperimentResult:
    """Uniform container every experiment returns."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List[Any]]
    note: str = ""
    #: Free-form extras (raw JobResults, fits, ...) for tests.
    extras: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        from .tables import render_table

        return render_table(
            f"{self.experiment}: {self.title}", self.columns, self.rows,
            note=self.note or None,
        )

    def csv(self) -> str:
        from .tables import rows_to_csv

        return rows_to_csv(self.columns, self.rows)


def run_job(
    app,
    npes: int,
    config: RuntimeConfig,
    testbed: str = "A",
    ppn: Optional[int] = None,
    observe: bool = False,
    **config_overrides,
) -> JobResult:
    """Run one job on the named paper testbed (A or B).

    ``observe=True`` runs with the flight recorder on; the result then
    carries a ``telemetry`` section experiments can assert against.
    """
    if config_overrides:
        config = config.evolve(**config_overrides)
    if testbed == "A":
        cluster = cluster_a(npes, ppn=ppn or 8)
    elif testbed == "B":
        cluster = cluster_b(npes, ppn=ppn or 16)
    else:
        raise ValueError(f"unknown testbed {testbed!r}")
    job = Job(npes=npes, config=config, cluster=cluster,
              observe=observe or None)
    return job.run(app)

"""Experiment plumbing shared by all figure/table harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..core import JobResult, RuntimeConfig
from ..exec import JobSpec, execute, run_sweep

__all__ = [
    "ExperimentResult",
    "job_spec",
    "run_job",
    "run_jobs",
    "JobSpec",
    "CURRENT",
    "PROPOSED",
]

#: The paper's two design points.
CURRENT = RuntimeConfig.current()
PROPOSED = RuntimeConfig.proposed()


@dataclass
class ExperimentResult:
    """Uniform container every experiment returns."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List[Any]]
    note: str = ""
    #: Free-form extras (raw JobResults, fits, ...) for tests.
    extras: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        from .tables import render_table

        return render_table(
            f"{self.experiment}: {self.title}", self.columns, self.rows,
            note=self.note or None,
        )

    def csv(self) -> str:
        from .tables import rows_to_csv

        return rows_to_csv(self.columns, self.rows)


def job_spec(
    app,
    npes: int,
    config: RuntimeConfig,
    testbed: str = "A",
    ppn: Optional[int] = None,
    observe: Any = False,
    check=None,
    macro: bool = False,
    **config_overrides,
) -> JobSpec:
    """Describe one job on the named paper testbed (A or B).

    ``observe`` accepts ``bool``, ``{"timeline": ...}``, or a
    :class:`repro.obs.TimelineConfig` (see ``repro.obs.timeline``).
    ``macro=True`` routes through the analytical phase-model layer
    (closed-form startup; the very-large-scale path)."""
    if config_overrides:
        config = config.evolve(**config_overrides)
    return JobSpec(app=app, npes=npes, config=config, testbed=testbed,
                   ppn=ppn, observe=observe, check=check, macro=macro)


def run_job(
    app,
    npes: int,
    config: RuntimeConfig,
    testbed: str = "A",
    ppn: Optional[int] = None,
    observe: Any = False,
    check=None,
    macro: bool = False,
    **config_overrides,
) -> JobResult:
    """Run one job on the named paper testbed (A or B), in-process.

    ``observe=True`` runs with the flight recorder on; the result then
    carries a ``telemetry`` section experiments can assert against
    (``observe={"timeline": True}`` adds the sampled time-series).
    ``check`` (a :class:`repro.check.CheckPlan`, config dict, or
    ``True``) arms the invariant sanitizer; the result then carries a
    ``check`` report.  ``macro=True`` uses the analytical phase models.
    """
    return execute(job_spec(app, npes, config, testbed=testbed, ppn=ppn,
                            observe=observe, check=check, macro=macro,
                            **config_overrides))


def run_jobs(specs: Iterable[JobSpec],
             max_workers: Optional[int] = None) -> List[JobResult]:
    """Run an experiment's job grid through the sweep pool.

    Results come back in spec order (see ``repro.exec`` for the
    determinism and failure contracts); ``REPRO_PAR`` controls the
    worker count, with ``REPRO_PAR=0`` forcing the in-process serial
    path.
    """
    return run_sweep(specs, max_workers=max_workers)

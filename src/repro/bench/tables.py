"""Plain-text table / CSV rendering for experiment output.

Every experiment produces rows the same way the paper's tables and
figure series read, and renders them with :func:`render_table` so
``pytest benchmarks/ --benchmark-only`` output is directly comparable
with the paper.
"""

from __future__ import annotations

import io
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["render_table", "rows_to_csv", "fmt_us", "fmt_ratio"]


def fmt_us(us: float) -> str:
    """Human scale for a microsecond quantity."""
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.2f}us"


def fmt_ratio(x: float) -> str:
    return f"{x:.2f}x"


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 note: Optional[str] = None) -> str:
    """Fixed-width table with a title rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    out = io.StringIO()
    out.write(f"\n=== {title} ===\n")
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in cells:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    if note:
        out.write(f"note: {note}\n")
    return out.getvalue()


def rows_to_csv(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(str(c) for c in row))
    return "\n".join(lines) + "\n"

"""Co-Array Fortran–style layer over the same conduit (paper future work)."""

from .coarray import Coarray, caf_co_sum, caf_sync_all, caf_sync_images

__all__ = ["Coarray", "caf_sync_all", "caf_sync_images", "caf_co_sum"]

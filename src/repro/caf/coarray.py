"""Co-Array Fortran–style coarrays over the OpenSHMEM runtime.

The second half of the paper's future-work sentence ("other PGAS
languages such as UPC or CAF"): a coarray is a symmetric array with one
*image* (copy) per PE, addressed as ``A(i)[img]``.  Like the UPC layer,
this sits entirely on the conduit/segment machinery and inherits
on-demand connections and piggybacked keys unchanged.

CAF idioms::

    A = Coarray(pe, shape=(8,), dtype=np.float64)
    A.local[:] = ...                       # A(:) on this image
    x = yield from A.get((3,), img)        # x = A(4)[img+1]  (0-based here)
    yield from A.put((0,), img, 7.0)       # A(1)[img+1] = 7.0
    yield from caf_sync_all(pe)            # SYNC ALL
    yield from caf_sync_images(pe, [img])  # SYNC IMAGES
"""

from __future__ import annotations

import math
from typing import Generator, Sequence, Tuple

import numpy as np

from ..errors import ShmemError

__all__ = ["Coarray", "caf_sync_all", "caf_sync_images", "caf_co_sum"]


class Coarray:
    """A symmetric array with one image per PE (dense, any rank)."""

    def __init__(self, pe, shape: Sequence[int], dtype=np.float64) -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s <= 0 for s in shape):
            raise ShmemError(f"invalid coarray shape {shape}")
        self.pe = pe
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.size = int(np.prod(shape))
        self.addr = pe.shmalloc(self.size * self.dtype.itemsize)

    # ------------------------------------------------------------------
    @property
    def num_images(self) -> int:
        """num_images()."""
        return self.pe.npes

    @property
    def this_image(self) -> int:
        """this_image() (0-based here, unlike Fortran's 1-based)."""
        return self.pe.mype

    @property
    def local(self) -> np.ndarray:
        """The local image, as a writable ndarray view."""
        return self.pe.view(self.addr, self.dtype, self.size).reshape(
            self.shape
        )

    def _offset(self, index: Tuple[int, ...]) -> int:
        if len(index) != len(self.shape):
            raise ShmemError(
                f"coarray index rank {len(index)} != array rank "
                f"{len(self.shape)}"
            )
        for i, (idx, extent) in enumerate(zip(index, self.shape)):
            if not (0 <= idx < extent):
                raise ShmemError(
                    f"coarray index {idx} out of bounds for dim {i} "
                    f"(extent {extent})"
                )
        return int(np.ravel_multi_index(index, self.shape))

    # ------------------------------------------------------------------
    def get(self, index: Tuple[int, ...], image: int) -> Generator:
        """``x = A(index)[image]`` — remote scalar read."""
        off = self._offset(index)
        addr = self.addr + off * self.dtype.itemsize
        if image == self.this_image:
            return self.local.flat[off].item()
        data = yield from self.pe.get(image, addr, self.dtype.itemsize)
        return np.frombuffer(data, dtype=self.dtype)[0].item()

    def put(self, index: Tuple[int, ...], image: int, value) -> Generator:
        """``A(index)[image] = value`` — remote scalar write."""
        off = self._offset(index)
        addr = self.addr + off * self.dtype.itemsize
        payload = self.dtype.type(value).tobytes()
        if image == self.this_image:
            self.pe.heap.write(addr, payload)
            return
        yield from self.pe.put(image, addr, payload)

    def get_slab(self, start: Tuple[int, ...], count: int,
                 image: int) -> Generator:
        """Contiguous (row-major) slab read of ``count`` elements."""
        off = self._offset(start)
        if off + count > self.size:
            raise ShmemError("coarray slab extends past the array")
        addr = self.addr + off * self.dtype.itemsize
        if image == self.this_image:
            flat = self.local.reshape(-1)
            return flat[off:off + count].copy()
        data = yield from self.pe.get(
            image, addr, count * self.dtype.itemsize
        )
        return np.frombuffer(data, dtype=self.dtype).copy()

    def put_slab(self, start: Tuple[int, ...], image: int,
                 values: np.ndarray) -> Generator:
        """Contiguous (row-major) slab write."""
        values = np.ascontiguousarray(values, dtype=self.dtype).reshape(-1)
        off = self._offset(start)
        if off + len(values) > self.size:
            raise ShmemError("coarray slab extends past the array")
        addr = self.addr + off * self.dtype.itemsize
        if image == self.this_image:
            flat = self.local.reshape(-1)
            flat[off:off + len(values)] = values
            return
        yield from self.pe.put(image, addr, values.tobytes())


def caf_sync_all(pe) -> Generator:
    """SYNC ALL (maps to shmem_barrier_all on the unified runtime)."""
    yield from pe.barrier_all()


def caf_sync_images(pe, images: Sequence[int]) -> Generator:
    """SYNC IMAGES: pairwise notify + wait with each named image.

    Implemented with remote atomic increments on a dedicated sync cell
    per direction, matching the point-to-point semantics (only the
    named images synchronise, nobody else blocks).
    """
    images = sorted(set(int(i) for i in images))
    if any(not (0 <= i < pe.npes) for i in images):
        raise ShmemError("sync images: image out of range")
    cells = getattr(pe, "_caf_sync_cells", None)
    if cells is None:
        # One counter per possible partner, allocated symmetrically on
        # first use (all PEs must use SYNC IMAGES symmetrically).
        addr = pe.shmalloc(8 * pe.npes)
        pe._caf_sync_cells = addr
        pe._caf_sync_seen = [0] * pe.npes
        cells = addr
    for img in images:
        if img == pe.mype:
            continue
        # Notify: bump my slot at the partner.
        yield from pe.atomic_inc(img, cells + 8 * pe.mype)
    for img in images:
        if img == pe.mype:
            continue
        pe._caf_sync_seen[img] += 1
        yield from pe.wait_until(
            cells + 8 * img, "ge", pe._caf_sync_seen[img]
        )


def caf_co_sum(pe, value: float, dtype=np.float64) -> Generator:
    """CO_SUM: collective sum with the result on every image."""
    itemsize = np.dtype(dtype).itemsize
    src = pe.shmalloc(itemsize)
    dst = pe.shmalloc(itemsize)
    pe.view(src, dtype, 1)[0] = value
    yield from pe.reduce(src, dst, 1, dtype, "sum")
    result = pe.view(dst, dtype, 1)[0].item()
    pe.shfree(src)
    pe.shfree(dst)
    return result

"""Opt-in invariant auditing for simulated runs (``repro.check``).

Wired like :mod:`repro.obs` and :mod:`repro.faults`: pass a
:class:`CheckPlan` via ``Job(check=...)`` or ``RuntimeConfig.check`` and
the job arms a :class:`Sanitizer` on every substrate.  Off path is one
``is None`` predicate per hook site; sanitized runs are byte-identical
in simulated time.

Also home to the static determinism lint::

    python -m repro.check.lint src/repro
"""

from ..errors import InvariantViolation
from .plan import CheckPlan
from .sanitizer import Sanitizer

__all__ = ["CheckPlan", "Sanitizer", "InvariantViolation"]

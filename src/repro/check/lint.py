"""Static determinism lint for simulation code.

AST-based checks for the bug class that breaks replay and the
parallel == serial byte-identity guarantee:

``set-iteration``
    Iterating a ``set`` literal/comprehension/constructor (``for x in
    set(...)``, ``{... for ...}``, ``set(xs) - set(ys)`` in a loop
    header) — CPython set order depends on insertion/hash history, so
    any event ordering fed from it is unstable.  Use
    ``dict.fromkeys(xs)`` for order-stable dedup or ``sorted(...)``.

``dict-keys-iteration``
    ``for k in d.keys()`` — redundant at best; when ``d`` was built
    from unordered inputs the explicit ``.keys()`` call usually marks
    a spot where ordering was never thought about.  Iterate the dict
    directly (insertion-ordered) or ``sorted(d)``.

``wall-clock``
    ``time.time()`` / ``perf_counter`` / ``datetime.now`` etc. inside
    sim paths — simulated code must read :data:`sim.now`.

``random-module``
    The stdlib :mod:`random` module (global, unseeded-per-run state).
    Sim code draws from the job's substreamed ``numpy`` Generators.

Suppress a deliberate use with ``# lint: allow-<rule>`` on the line.

Usage::

    python -m repro.check.lint src/repro [more paths...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple

__all__ = ["Finding", "lint_source", "lint_paths", "main"]

_WALL_CLOCK_TIME = {
    "time", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "time_ns", "clock_gettime",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _is_set_expr(node: ast.AST) -> bool:
    """Does this expression produce a set (unordered iteration)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: s | t, s & t, s - t, s ^ t — flag only when a
        # side is itself recognisably a set, to avoid integer math.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_dict_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: List[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[Finding] = []

    # -- helpers ------------------------------------------------------
    def _suppressed(self, line: int, rule: str) -> bool:
        if 1 <= line <= len(self.lines):
            return f"lint: allow-{rule}" in self.lines[line - 1]
        return False

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not self._suppressed(line, rule):
            self.findings.append(Finding(self.path, line, rule, message))

    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._flag(
                iter_node, "set-iteration",
                "iterating a set is hash-order dependent; use "
                "dict.fromkeys(...) or sorted(...)",
            )
        elif _is_dict_keys_call(iter_node):
            self._flag(
                iter_node, "dict-keys-iteration",
                "iterate the dict directly (insertion-ordered) or "
                "sorted(d)",
            )

    # -- iteration sites ----------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- wall clock / random ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            mod, attr = func.value.id, func.attr
            if mod == "time" and attr in _WALL_CLOCK_TIME:
                self._flag(
                    node, "wall-clock",
                    f"time.{attr}() in sim code; use sim.now",
                )
            elif mod == "datetime" and attr in _WALL_CLOCK_DATETIME:
                self._flag(
                    node, "wall-clock",
                    f"datetime.{attr}() in sim code; use sim.now",
                )
            elif mod == "random":
                self._flag(
                    node, "random-module",
                    f"random.{attr}() uses global unseeded state; draw "
                    f"from the job's numpy Generator substreams",
                )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._flag(
                    node, "random-module",
                    "stdlib random imported; sim code must draw from "
                    "the job's numpy Generator substreams",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(
                node, "random-module",
                "stdlib random imported; sim code must draw from the "
                "job's numpy Generator substreams",
            )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "syntax-error", str(exc.msg))]
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.path, f.line, f.rule))


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for root in paths:
        p = Path(root)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_source(f.read_text(), str(f)))
    return findings


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.check.lint PATH [PATH...]",
              file=sys.stderr)
        return 2
    findings = lint_paths(argv)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Declarative check plans: the *what* of invariant auditing.

A :class:`CheckPlan` is pure data — a frozen, hashable description of
which per-layer auditors the sanitizer should arm and how violations
surface.  It mirrors :class:`repro.faults.FaultPlan`: the same plan can
be printed, round-tripped through a config dict, attached to a
:class:`~repro.core.config.RuntimeConfig` or passed to ``Job(check=...)``
directly.  The runtime evaluation (per-layer hook state, the final
audit) lives in :class:`repro.check.sanitizer.Sanitizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict

from ..errors import ConfigError

__all__ = ["CheckPlan"]

#: The auditable layers, in report order.
_LAYERS = ("ib", "memory", "pmi", "conduit", "lifecycle")


@dataclass(frozen=True)
class CheckPlan:
    """A named bundle of auditor toggles.

    Example::

        plan = CheckPlan(name="teardown-audit", pmi=False)
        result = Job(npes=16, check=plan).run(app)
        result.check["violations"]   # [] on a clean run

    ``strict=True`` (the default) raises a structured
    :class:`~repro.errors.InvariantViolation` at the violation site;
    ``strict=False`` collects violations into the job's check report
    instead, letting a damaged run play out to completion.
    """

    name: str = "check"
    #: QP state-machine legality, WR/CQE conservation, QP-context
    #: cache accounting.
    ib: bool = True
    #: MemoryRegion lifetime, symmetric-heap symmetry, leak report.
    memory: bool = True
    #: KVS epoch monotonicity, fence pairing, memo-cache coherence.
    pmi: bool = True
    #: Handshake conformance and teardown legality.
    conduit: bool = True
    #: Connection-lifecycle legality: drained eviction, reconnect
    #: hygiene (no evict-with-outstanding-WRs, no reconnect storms).
    lifecycle: bool = True
    #: Raise at the violation site (True) or collect into the report.
    strict: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(f"CheckPlan.name must be a non-empty string, "
                              f"got {self.name!r}")
        for f in fields(self):
            if f.name == "name":
                continue
            value = getattr(self, f.name)
            if not isinstance(value, bool):
                raise ConfigError(
                    f"CheckPlan.{f.name} must be a bool, got {value!r}"
                )

    @property
    def empty(self) -> bool:
        """True when no auditor is armed (the plan does nothing)."""
        return not any(getattr(self, layer) for layer in _LAYERS)

    # -- config round-trip ---------------------------------------------
    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "CheckPlan":
        """Build a plan from a plain config mapping."""
        if not isinstance(spec, dict):
            raise ConfigError(f"CheckPlan spec must be a dict, got {spec!r}")
        valid = {f.name for f in fields(cls)}
        unknown = set(spec) - valid
        if unknown:
            raise ConfigError(f"unknown CheckPlan keys: {sorted(unknown)}")
        return cls(**spec)

    def as_dict(self) -> Dict[str, Any]:
        """Inverse of :meth:`from_dict` (plain types only)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

"""The runtime sanitizer: per-layer invariant auditors.

The :class:`Sanitizer` is *passive*, exactly like the fault injector:
substrates hold a ``check`` attribute that is ``None`` unless a job was
built with a :class:`~repro.check.plan.CheckPlan`, and every hook site
costs one ``if check is not None`` predicate when auditing is off.  All
auditing is pure host-side bookkeeping — no simulated time is charged,
no RNG stream is drawn — so a sanitized run is byte-identical in
simulated time to an unsanitized one (asserted by the golden-trace and
chaos byte-identity tests).

Violations are :class:`~repro.errors.InvariantViolation`\\ s carrying
layer, invariant name, rank, simulated time and (when observing) the
active span id.  Under ``strict`` plans they raise at the violation
site; otherwise they are collected into the job's check report.

Invariant catalogue
-------------------
ib
    * QP state machine: no post before RTS, transitions only from
      their legal predecessor states, no double destroy.
    * Destroy with outstanding WRs is *flagged* (recorded, never
      raised: an application may legitimately tear down with traffic
      in flight only if it previously quiesced — the record makes the
      case visible either way).
    * WR/CQE conservation: every tracked WR completes exactly once,
      errors exactly once, is flushed by its QP's destroy, or is still
      pending on a live QP at the end of the job.
    * QP-context cache accounting: per HCA,
      ``misses == capacity evictions + destroy removals + resident``.
memory
    * Remote access through a revoked (deregistered) or unknown rkey
      is a sanitizer error (the un-audited runtime NAKs it back to the
      requester as an error completion, mirroring IBV).
    * Symmetric-heap symmetry: every PE must produce the same
      ``shmalloc`` (offset, size) sequence.
    * Leak report: allocations never freed by ``finalize``.
pmi
    * KVS epoch monotonicity (+1 per commit) and range-memo hygiene
      (the memo must be dropped on commit).
    * Range-memo coherence: a memo hit must equal a reference fetch.
    * Fence pairing: every rank ends the job at the same fence epoch;
      every daemon collective has completed (result delivered, no
      stranded waiters).
conduit
    * No ConnectReply without a matching ConnectRequest.
    * No serve (server-side QP creation) after teardown began.
    * No duplicate connection registration for one peer.
    * Teardown completeness: a closed conduit holds no connections at
      the end of the job.
lifecycle
    * Drained eviction: a connection must be quiesced (zero
      outstanding WRs on its QP) before its QPs are destroyed by the
      disconnect protocol.
    * Reconnect hygiene: re-establishing the same (rank, peer) pair
      more than ``RECONNECT_STORM_N`` times inside
      ``RECONNECT_STORM_WINDOW_US`` flags an eviction-policy/workload
      mismatch (the reaper is thrashing a hot connection).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import InvariantViolation
from .plan import CheckPlan

__all__ = ["Sanitizer"]


class Sanitizer:
    """Runtime state of one job's invariant auditing."""

    #: Reconnects of one (rank, peer) pair inside the window that
    #: constitute a storm (tunable class attribute, like ASan's
    #: thresholds are env-tunable).
    RECONNECT_STORM_N = 4
    RECONNECT_STORM_WINDOW_US = 5_000.0

    def __init__(self, plan: CheckPlan, sim, obs=None) -> None:
        self.plan = plan
        self.sim = sim
        self.obs = obs
        #: Violations collected so far (also populated when strict —
        #: the raise happens after recording, so a crashed run still
        #: carries its evidence).
        self.violations: List[InvariantViolation] = []
        # -- ib: WR/CQE conservation ---------------------------------
        self._wr_posted = 0
        self._wr_completed = 0
        self._wr_errored = 0
        self._wr_flushed = 0
        #: Live RC QPs (registered, not destroyed) for the final audit.
        self._live_rc_qps: List[Any] = []
        # -- ib: cache accounting (per HCA node) ----------------------
        self._cache_hits: Dict[int, int] = {}
        self._cache_misses: Dict[int, int] = {}
        self._cache_evictions: Dict[int, int] = {}
        self._cache_removals: Dict[int, int] = {}
        # -- memory: heap symmetry ------------------------------------
        self._shmalloc_seq: Dict[int, List] = {}
        # -- pmi ------------------------------------------------------
        self._kvs_commits = 0
        # -- conduit --------------------------------------------------
        #: (rank, peer) pairs for which ``rank`` sent a ConnectRequest.
        self._requested: set = set()
        # -- lifecycle ------------------------------------------------
        self._evictions = 0
        self._reconnects = 0
        #: (rank, peer) -> recent reconnect timestamps (storm window).
        self._reconnect_times: Dict[tuple, List[float]] = {}
        self._installed: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # violation plumbing
    # ------------------------------------------------------------------
    def _violate(self, layer: str, invariant: str, detail: str,
                 rank=None, span=None, raise_now: bool = True) -> None:
        span_id = getattr(span, "span_id", span) if span is not None else None
        v = InvariantViolation(
            layer, invariant, detail, rank=rank,
            time_us=self.sim.now, span_id=span_id,
        )
        self.violations.append(v)
        if raise_now and self.plan.strict:
            raise v

    @staticmethod
    def _qp_span(qp):
        """The QP's bound flight-recorder parent span, if any."""
        bound = getattr(qp, "_obs", None)
        return bound[1] if bound else None

    # ------------------------------------------------------------------
    # ib hooks (called from repro.ib.qp / repro.ib.hca)
    # ------------------------------------------------------------------
    def on_qp_registered(self, qp) -> None:
        if self.plan.ib and getattr(qp, "is_rc", False):
            self._live_rc_qps.append(qp)

    def on_qp_state_error(self, qp, needed, detail: str) -> None:
        """A verbs call found the QP in an illegal state.

        Records (and under a strict plan raises) the violation; if it
        returns — ib auditing off, or non-strict — the caller still
        raises its legacy ``QPStateError`` so the illegal operation
        never proceeds.
        """
        if self.plan.ib:
            self._violate(
                "ib", "qp.state", detail,
                rank=qp.owner_rank, span=self._qp_span(qp),
            )

    def on_qp_destroy(self, qp) -> None:
        if not self.plan.ib:
            return
        try:
            self._live_rc_qps.remove(qp)
        except ValueError:
            pass
        pending = getattr(qp, "_pending", None)
        if pending:
            # Flagged, never raised: see the module docstring.
            self._wr_flushed += len(pending)
            self._violate(
                "ib", "qp.destroy_outstanding_wrs",
                f"QP {qp.qpn} destroyed with {len(pending)} WRs in flight",
                rank=qp.owner_rank, span=self._qp_span(qp), raise_now=False,
            )

    def on_qp_double_destroy(self, qp) -> None:
        if not self.plan.ib:
            return
        self._violate(
            "ib", "qp.double_destroy",
            f"QP {qp.qpn} destroyed twice",
            rank=qp.owner_rank, span=self._qp_span(qp),
        )

    def on_wr_posted(self, qp, token: int) -> None:
        if self.plan.ib:
            self._wr_posted += 1

    def on_wr_completed(self, qp, token: int) -> None:
        if self.plan.ib:
            self._wr_completed += 1

    def on_wr_errored(self, qp, token: int) -> None:
        if self.plan.ib:
            self._wr_errored += 1

    def on_unmatched_completion(self, qp, kind: str, token: int) -> None:
        if not self.plan.ib:
            return
        self._violate(
            "ib", "wr.unmatched_completion",
            f"QP {qp.qpn} got {kind} for unknown token {token}",
            rank=qp.owner_rank, span=self._qp_span(qp),
        )

    def on_cache_touch(self, hca, hit: bool, evicted: bool) -> None:
        if not self.plan.ib:
            return
        node = hca.node
        if hit:
            self._cache_hits[node] = self._cache_hits.get(node, 0) + 1
        else:
            self._cache_misses[node] = self._cache_misses.get(node, 0) + 1
        if evicted:
            self._cache_evictions[node] = (
                self._cache_evictions.get(node, 0) + 1
            )

    def on_cache_remove(self, hca) -> None:
        if self.plan.ib:
            node = hca.node
            self._cache_removals[node] = self._cache_removals.get(node, 0) + 1

    # ------------------------------------------------------------------
    # memory hooks (called from repro.ib.qp / repro.shmem.context)
    # ------------------------------------------------------------------
    def on_remote_access_error(self, qp, rkey: int, detail: str) -> None:
        """Inbound RDMA/atomic hit a revoked/unknown rkey.

        Without auditing the target NAKs and the requester sees an
        error completion; the sanitizer turns it into a hard error at
        the point of damage.
        """
        if not self.plan.memory:
            return
        self._violate(
            "memory", "region.revoked_access",
            detail, rank=qp.owner_rank, span=self._qp_span(qp),
        )

    def on_shmalloc(self, rank: int, offset: int, size: int) -> None:
        if self.plan.memory:
            self._shmalloc_seq.setdefault(rank, []).append((offset, size))

    # ------------------------------------------------------------------
    # pmi hooks (called from repro.pmi.kvs)
    # ------------------------------------------------------------------
    def on_kvs_commit(self, kvs, prev_epoch: int) -> None:
        if not self.plan.pmi:
            return
        self._kvs_commits += 1
        if kvs.epoch != prev_epoch + 1:
            self._violate(
                "pmi", "kvs.epoch_monotonicity",
                f"commit moved epoch {prev_epoch} -> {kvs.epoch}",
            )
        if kvs._range_key is not None:
            self._violate(
                "pmi", "kvs.memo_leak",
                f"range memo {kvs._range_key!r} survived the commit to "
                f"epoch {kvs.epoch}",
            )

    def on_range_memo_hit(self, kvs, prefix: str, count: int,
                          values) -> None:
        """Verify a memo hit against a reference fetch."""
        if not self.plan.pmi:
            return
        reference = [kvs.get(f"{prefix}{i}") for i in range(count)]
        if values != reference:
            self._violate(
                "pmi", "kvs.memo_incoherent",
                f"memoised get_range({prefix!r}, {count}) diverged from a "
                f"reference fetch",
            )

    # ------------------------------------------------------------------
    # conduit hooks (called from repro.gasnet)
    # ------------------------------------------------------------------
    def on_connect_request_sent(self, rank: int, peer: int) -> None:
        if self.plan.conduit:
            self._requested.add((rank, peer))

    def on_connect_reply_rx(self, rank: int, peer: int) -> None:
        if not self.plan.conduit:
            return
        if (rank, peer) not in self._requested:
            self._violate(
                "conduit", "handshake.unsolicited_reply",
                f"ConnectReply from {peer} without a matching request",
                rank=rank,
            )

    def on_serve_after_close(self, rank: int, peer: int) -> None:
        if not self.plan.conduit:
            return
        self._violate(
            "conduit", "handshake.serve_after_close",
            f"ConnectRequest from {peer} served after teardown began",
            rank=rank,
        )

    def on_duplicate_connection(self, rank: int, peer: int) -> None:
        if not self.plan.conduit:
            return
        self._violate(
            "conduit", "handshake.duplicate_connection",
            f"second connection registered for peer {peer}",
            rank=rank,
        )

    # ------------------------------------------------------------------
    # lifecycle hooks (called from repro.gasnet.ondemand_conduit)
    # ------------------------------------------------------------------
    def on_evict(self, rank: int, peer: int, outstanding_wrs: int) -> None:
        """The disconnect protocol is about to destroy a drained QP."""
        if not self.plan.lifecycle:
            return
        self._evictions += 1
        if outstanding_wrs > 0:
            self._violate(
                "lifecycle", "lifecycle.evict_with_outstanding_wrs",
                f"connection to {peer} evicted with {outstanding_wrs} WRs "
                f"still in flight (drain handshake skipped the quiesce)",
                rank=rank,
            )

    def on_reconnect(self, rank: int, peer: int) -> None:
        """A previously evicted (rank, peer) pair re-established."""
        if not self.plan.lifecycle:
            return
        self._reconnects += 1
        now = self.sim.now
        window = self.RECONNECT_STORM_WINDOW_US
        times = self._reconnect_times.setdefault((rank, peer), [])
        times.append(now)
        while times and times[0] < now - window:
            times.pop(0)
        if len(times) >= self.RECONNECT_STORM_N:
            self._violate(
                "lifecycle", "lifecycle.reconnect_storm",
                f"pe{rank} reconnected to {peer} {len(times)} times within "
                f"{window:g}us (eviction policy is thrashing a hot peer)",
                rank=rank,
            )

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, hcas=None, pmi_domain=None, network=None) -> "Sanitizer":
        """Arm the hook sites.  Mirrors ``FaultInjector.install``.

        Conduits and PEs read their ``check`` pointer from the network
        at construction time, so ``network`` must be armed before they
        are built (the Job does this).
        """
        if hcas is not None:
            for hca in hcas:
                hca.check = self
            self._installed["hcas"] = list(hcas)
        if pmi_domain is not None:
            pmi_domain.check = self
            pmi_domain.kvs.check = self
            self._installed["pmi_domain"] = pmi_domain
        if network is not None:
            network.check = self
        return self

    # ------------------------------------------------------------------
    # final audit
    # ------------------------------------------------------------------
    def final_audit(self, pes=(), conduits=(), pmi_clients=()) -> Dict[str, Any]:
        """End-of-run reconciliation; returns the check report payload.

        Runs after ``sim.run()`` completed, so it cannot perturb the
        simulation; under a strict plan the first end-state violation
        raises after being recorded.
        """
        before = len(self.violations)
        leaks: List[Dict[str, Any]] = []
        if self.plan.ib:
            self._audit_wr_conservation()
            self._audit_cache_accounting()
        if self.plan.memory:
            self._audit_heap_symmetry()
            leaks = self._heap_leak_report(pes)
        if self.plan.pmi:
            self._audit_fence_pairing(pmi_clients)
            self._audit_collectives()
        if self.plan.conduit:
            self._audit_teardown(conduits)
        report = self.report(leaks=leaks)
        if self.plan.strict and len(self.violations) > before:
            raise self.violations[before]
        return report

    def _audit_wr_conservation(self) -> None:
        still_pending = sum(
            len(qp._pending) for qp in self._live_rc_qps
        )
        accounted = (
            self._wr_completed + self._wr_errored + self._wr_flushed
            + still_pending
        )
        if self._wr_posted != accounted:
            self._violate(
                "ib", "wr.conservation",
                f"{self._wr_posted} WRs posted but {accounted} accounted "
                f"for ({self._wr_completed} completed, "
                f"{self._wr_errored} errored, {self._wr_flushed} flushed, "
                f"{still_pending} pending)",
                raise_now=False,
            )

    def _audit_cache_accounting(self) -> None:
        for hca in self._installed.get("hcas", ()):
            node = hca.node
            misses = self._cache_misses.get(node, 0)
            accounted = (
                self._cache_evictions.get(node, 0)
                + self._cache_removals.get(node, 0)
                + len(hca._qp_cache)
            )
            if misses != accounted:
                self._violate(
                    "ib", "hca.cache_accounting",
                    f"node {node}: {misses} cache misses vs {accounted} "
                    f"accounted (evictions + removals + resident)",
                    raise_now=False,
                )

    def _audit_heap_symmetry(self) -> None:
        if not self._shmalloc_seq:
            return
        ranks = sorted(self._shmalloc_seq)
        reference = self._shmalloc_seq[ranks[0]]
        for rank in ranks[1:]:
            if self._shmalloc_seq[rank] != reference:
                self._violate(
                    "memory", "heap.asymmetric_allocation",
                    f"pe{rank} shmalloc sequence diverges from "
                    f"pe{ranks[0]}'s",
                    rank=rank, raise_now=False,
                )

    @staticmethod
    def _heap_leak_report(pes) -> List[Dict[str, Any]]:
        leaks = []
        for pe in pes:
            heap = getattr(pe, "heap", None)
            if heap is not None and heap._allocs:
                leaks.append({
                    "rank": pe.rank,
                    "allocations": len(heap._allocs),
                    "bytes": sum(heap._allocs.values()),
                })
        return leaks

    def _audit_fence_pairing(self, pmi_clients) -> None:
        epochs = {c._fence_epoch for c in pmi_clients}
        if len(epochs) > 1:
            self._violate(
                "pmi", "fence.imbalance",
                f"ranks ended at different fence epochs: {sorted(epochs)}",
                raise_now=False,
            )

    def _audit_collectives(self) -> None:
        domain = self._installed.get("pmi_domain")
        if domain is None:
            return
        for daemon in domain.daemons:
            for cid, state in daemon._coll.items():
                if state.result is None or state.waiters:
                    self._violate(
                        "pmi", "collective.incomplete",
                        f"daemon {daemon.node}: collective {cid} never "
                        f"completed (result={state.result is not None}, "
                        f"waiters={len(state.waiters)})",
                        raise_now=False,
                    )

    def _audit_teardown(self, conduits) -> None:
        for conduit in conduits:
            if conduit._closed and conduit._conns:
                self._violate(
                    "conduit", "teardown.connections_leaked",
                    f"{len(conduit._conns)} connections survived teardown "
                    f"(peers {sorted(conduit._conns)[:5]})",
                    rank=conduit.rank, raise_now=False,
                )
        # A finalize that raced a handshake leaves an RC QP stuck
        # half-open (INIT/RTR) in some HCA's table with nothing left to
        # drive or destroy it.
        from ..ib.types import QPState

        for hca in self._installed.get("hcas", ()):
            for qp in hca._qps.values():
                if getattr(qp, "is_rc", False) and qp.state in (
                    QPState.INIT, QPState.RTR,
                ):
                    self._violate(
                        "conduit", "teardown.half_open_qp",
                        f"RC QP {qp.qpn} left {qp.state.value} at job end",
                        rank=qp.owner_rank, raise_now=False,
                    )

    # ------------------------------------------------------------------
    def report(self, leaks: Optional[List[Dict[str, Any]]] = None
               ) -> Dict[str, Any]:
        """The check payload attached to the JobResult."""
        return {
            "plan": self.plan.name,
            "strict": self.plan.strict,
            "violations": [v.as_dict() for v in self.violations],
            "heap_leaks": leaks or [],
            "stats": {
                "wr_posted": self._wr_posted,
                "wr_completed": self._wr_completed,
                "wr_errored": self._wr_errored,
                "wr_flushed": self._wr_flushed,
                "kvs_commits": self._kvs_commits,
                "connect_requests_seen": len(self._requested),
                "evictions": self._evictions,
                "reconnects": self._reconnects,
            },
        }

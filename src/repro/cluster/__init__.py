"""Cluster topology and calibrated cost models."""

from .params import CostModel
from .presets import CLUSTER_A_COST, CLUSTER_B_COST, cluster_a, cluster_b
from .topology import Cluster, Placement

__all__ = [
    "CostModel",
    "Cluster",
    "Placement",
    "CLUSTER_A_COST",
    "CLUSTER_B_COST",
    "cluster_a",
    "cluster_b",
]

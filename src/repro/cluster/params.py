"""Calibrated cost models.

Every latency, bandwidth, overhead and capacity knob used anywhere in
the simulator lives here, in one frozen dataclass, so that

* protocol code contains *no* magic numbers, and
* the two cluster presets (:mod:`repro.cluster.presets`) are pure data.

All times are **microseconds**, all sizes **bytes**, all bandwidths
**bytes per microsecond** (1 GB/s == 1000 B/us).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """All tunable costs for one simulated cluster.

    The defaults are the Cluster-A (OSU Westmere + QDR) calibration;
    presets build variants via :meth:`evolve`.
    """

    # ------------------------------------------------------------------
    # InfiniBand verbs / HCA
    # ------------------------------------------------------------------
    #: CPU+HCA time to create a UD queue pair.
    ud_qp_create_us: float = 30.0
    #: CPU+HCA time to create an RC queue pair (larger context).
    rc_qp_create_us: float = 55.0
    #: QP state transitions (RESET->INIT, INIT->RTR, RTR->RTS).  RTR is
    #: by far the most expensive on real hardware (path resolution,
    #: context load).
    qp_modify_init_us: float = 8.0
    qp_modify_rtr_us: float = 85.0
    qp_modify_rts_us: float = 40.0
    #: QP teardown including the per-connection disconnect exchange the
    #: connection manager performs at finalize.
    qp_destroy_us: float = 900.0
    #: Memory registration: page pinning + HCA translation-table update
    #: (~2.4 ms/MB matches the few-hundred-MB/s pinning rates of the
    #: paper's era).
    mr_register_base_us: float = 60.0
    mr_register_per_mb_us: float = 2400.0
    mr_deregister_us: float = 25.0
    #: CPU overhead of posting one work request / polling one completion.
    post_wr_us: float = 0.30
    poll_cq_us: float = 0.15

    #: HCA on-board QP-context cache: number of QP contexts that fit.
    #: Traffic on QPs beyond this working set pays a per-message
    #: context-fetch penalty (paper Section I, drawback 3).
    qp_cache_entries: int = 128
    qp_cache_miss_penalty_us: float = 1.1

    #: Host memory charged per queue pair (send/recv WQEs + context).
    rc_qp_memory_bytes: int = 88 * 1024
    ud_qp_memory_bytes: int = 24 * 1024
    #: Per-connection bookkeeping in the runtime (addr handles, flow
    #: control state).
    conn_state_bytes: int = 4 * 1024

    # ------------------------------------------------------------------
    # Fabric (data network)
    # ------------------------------------------------------------------
    #: One-way wire + NIC traversal latency between two nodes that share
    #: a leaf switch.
    fabric_base_latency_us: float = 0.9
    #: Extra latency per additional switch hop (2 extra hops when
    #: crossing the spine).
    fabric_hop_latency_us: float = 0.25
    #: Link bandwidth in bytes/us (QDR 32 Gb/s ~ 4000 B/us).
    fabric_bandwidth: float = 4000.0
    #: Leaf switch radix: nodes per leaf switch.
    leaf_radix: int = 18
    #: Intra-node (shared-memory) transport.
    intra_node_latency_us: float = 0.35
    intra_node_bandwidth: float = 11000.0
    #: Extra round-trip charged to RDMA reads and to atomics.
    rdma_read_extra_us: float = 1.0
    atomic_extra_us: float = 0.9

    # ------------------------------------------------------------------
    # UD reliability model
    # ------------------------------------------------------------------
    ud_mtu_bytes: int = 2048
    ud_loss_prob: float = 0.0005
    ud_duplicate_prob: float = 0.0001
    #: Extra fabric dwell time of a duplicated datagram's second copy
    #: (switch buffering that caused the duplicate in the first place).
    ud_duplicate_delay_us: float = 3.0
    ud_retry_timeout_us: float = 800.0
    ud_max_retries: int = 12
    #: Transient RC-QP-creation failure (ENOMEM) handling in the
    #: on-demand conduit: bounded exponential backoff, base doubling
    #: per attempt up to the cap, with deterministic per-(rank, peer)
    #: jitter so colliding ranks decorrelate.
    qp_create_max_retries: int = 6
    qp_create_backoff_base_us: float = 50.0
    qp_create_backoff_cap_us: float = 3200.0

    # ------------------------------------------------------------------
    # PMI / out-of-band network (management Ethernet, TCP)
    # ------------------------------------------------------------------
    #: Client <-> node-local PMI daemon (unix socket / loopback).
    pmi_local_rtt_us: float = 6.0
    #: Daemon <-> daemon TCP hop latency.
    pmi_tcp_latency_us: float = 35.0
    #: Effective daemon <-> daemon TCP bandwidth (1 GbE management
    #: network with per-message RPC framing overheads).
    pmi_tcp_bandwidth: float = 40.0
    #: Fixed CPU time for a daemon to handle one request.
    pmi_server_cpu_us: float = 3.0
    #: Encoded size of one KVS entry (key + value + framing).
    pmi_entry_bytes: int = 96
    #: Fan-out of the daemon tree used for fence/allgather.
    pmi_tree_fanout: int = 2
    #: Per-KVS-entry CPU time a daemon spends parsing/serialising entries
    #: during fence/allgather data movement (PMI wire format is ASCII).
    pmi_entry_cpu_us: float = 2.0

    # ------------------------------------------------------------------
    # Conduit (GASNet-like) costs
    # ------------------------------------------------------------------
    #: CPU time to run one active-message handler.
    am_handler_cpu_us: float = 0.5
    #: CPU cost per on-demand connect request/reply processed by the
    #: connection-manager thread (Fig. 4 protocol).
    conn_handshake_cpu_us: float = 3.0
    #: Extra per-connection CPU charged during *static* bulk wire-up
    #: (request construction, KVS parsing, bookkeeping for each peer).
    static_wireup_per_peer_us: float = 30.0

    # ------------------------------------------------------------------
    # Job launch / startup
    # ------------------------------------------------------------------
    #: Process-arrival skew: PE i begins start_pes at a uniformly random
    #: offset in [0, launch_skew_us].
    launch_skew_us: float = 1500.0
    #: Shared-memory segment creation + attach during init, per node
    #: base plus per local rank.
    shm_setup_base_us: float = 180_000.0
    shm_setup_per_rank_us: float = 12_000.0
    #: Fixed "other" init work (symmetric heap bookkeeping, env parsing).
    init_misc_us: float = 120_000.0
    #: Job-launcher overhead outside start_pes (fork/exec, stdio wiring)
    #: counted in wall-clock application time.
    launch_overhead_us: float = 200_000.0
    #: Default symmetric heap size registered with the HCA at init.
    symmetric_heap_mb: float = 256.0
    #: Intra-node (shared memory) barrier cost per participant round.
    shm_barrier_us: float = 1.8

    # ------------------------------------------------------------------
    # Application compute scaling
    # ------------------------------------------------------------------
    #: Multiplier applied to every modelled compute delay (lets the
    #: Sandy Bridge preset run "faster" than Westmere).
    compute_scale: float = 1.0

    def evolve(self, **overrides) -> "CostModel":
        """A copy with the given fields replaced (presets use this)."""
        return replace(self, **overrides)

    # -- derived helpers -------------------------------------------------
    def mr_register_us(self, size_bytes: int) -> float:
        """Registration cost for a region of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("negative region size")
        return self.mr_register_base_us + self.mr_register_per_mb_us * (
            size_bytes / (1024.0 * 1024.0)
        )

    def wire_time(self, nbytes: int, hops: int) -> float:
        """Inter-node latency+serialisation for one fabric traversal."""
        return (
            self.fabric_base_latency_us
            + self.fabric_hop_latency_us * max(0, hops - 1)
            + nbytes / self.fabric_bandwidth
        )

    def intra_node_time(self, nbytes: int) -> float:
        """Shared-memory transfer time within one node."""
        return self.intra_node_latency_us + nbytes / self.intra_node_bandwidth

    def pmi_tcp_time(self, nbytes: int) -> float:
        """One daemon-to-daemon TCP message."""
        return self.pmi_tcp_latency_us + nbytes / self.pmi_tcp_bandwidth

    def as_dict(self) -> Dict[str, float]:
        from dataclasses import asdict

        return asdict(self)

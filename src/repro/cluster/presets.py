"""Cluster presets matching the paper's two testbeds (Section V-A).

* **Cluster-A** — 144 nodes, dual quad-core Westmere 2.67 GHz, Mellanox
  ConnectX QDR (32 Gb/s).  Microbenchmarks, NAS, Graph500 ran here,
  fully subscribed at 8 processes per node.
* **Cluster-B** — TACC Stampede: dual 8-core Sandy Bridge 2.7 GHz,
  ConnectX-3 FDR (56 Gb/s).  Startup experiments (Figures 1 and 5) ran
  here at 16 processes per node.

The absolute values are calibrations, not measurements: they were tuned
so the *shapes* of the paper's figures reproduce (see EXPERIMENTS.md).
"""

from __future__ import annotations

from functools import lru_cache

from .params import CostModel
from .topology import Cluster

__all__ = ["CLUSTER_A_COST", "CLUSTER_B_COST", "cluster_a", "cluster_b"]


#: OSU Westmere + QDR ConnectX (the CostModel defaults).
CLUSTER_A_COST = CostModel()

#: Stampede: faster fabric (FDR, 7000 B/us), bigger leaf switches,
#: slightly faster CPUs, larger management network and higher PMI
#: daemon fan-out (SLURM tree).
CLUSTER_B_COST = CostModel().evolve(
    fabric_bandwidth=7000.0,
    fabric_base_latency_us=0.7,
    leaf_radix=20,
    compute_scale=0.85,
    pmi_tree_fanout=2,
    pmi_tcp_latency_us=40.0,
)


# Topology construction is O(npes) and read-only afterwards (rank→node
# maps, per-node rank lists); a sweep revisits the same (npes, ppn)
# points for every config/app combination, so preset clusters are
# cached per process.  Jobs never mutate a Cluster.
@lru_cache(maxsize=64)
def cluster_a(npes: int, ppn: int = 8) -> Cluster:
    """Cluster-A sized for ``npes`` ranks (default fully subscribed)."""
    return Cluster(npes=npes, ppn=ppn, cost=CLUSTER_A_COST, name="Cluster-A")


@lru_cache(maxsize=64)
def cluster_b(npes: int, ppn: int = 16) -> Cluster:
    """Cluster-B (Stampede) sized for ``npes`` ranks."""
    return Cluster(npes=npes, ppn=ppn, cost=CLUSTER_B_COST, name="Cluster-B")

"""Cluster topology: nodes, process placement, switch distance.

A :class:`Cluster` maps PE ranks to compute nodes and answers the two
questions the transport layers care about:

* are two ranks on the same node (shared memory path)?
* how many switch hops separate two nodes (fabric latency)?

Placement is *block* by default (ranks 0..ppn-1 on node 0, ...), which
is how the paper's experiments were run (fully subscribed nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .params import CostModel

__all__ = ["Cluster", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Placement policy: ``block`` or ``cyclic``."""

    policy: str = "block"

    def node_of(self, rank: int, npes: int, ppn: int) -> int:
        if self.policy == "block":
            return rank // ppn
        if self.policy == "cyclic":
            nnodes = (npes + ppn - 1) // ppn
            return rank % nnodes
        raise ValueError(f"unknown placement policy {self.policy!r}")


class Cluster:
    """A homogeneous cluster of ``nnodes`` nodes with ``ppn`` cores used.

    Parameters
    ----------
    npes:
        Total number of processing elements (ranks) in the job.
    ppn:
        Processes per node (fully subscribed in the paper: 16 on
        Cluster-B, 8 on Cluster-A).
    cost:
        The calibrated :class:`~repro.cluster.params.CostModel`.
    name:
        Human-readable preset name (for reports).
    """

    def __init__(
        self,
        npes: int,
        ppn: int,
        cost: CostModel,
        name: str = "custom",
        placement: Placement = Placement("block"),
    ) -> None:
        if npes < 1:
            raise ValueError("npes must be >= 1")
        if ppn < 1:
            raise ValueError("ppn must be >= 1")
        self.npes = npes
        self.ppn = ppn
        self.cost = cost
        self.name = name
        self.placement = placement
        self.nnodes = (npes + ppn - 1) // ppn
        self._node_of: List[int] = [
            placement.node_of(rank, npes, ppn) for rank in range(npes)
        ]
        self._node_ranks: List[List[int]] = [[] for _ in range(self.nnodes)]
        self._local_rank: List[int] = [0] * npes
        for rank, node in enumerate(self._node_of):
            self._local_rank[rank] = len(self._node_ranks[node])
            self._node_ranks[node].append(rank)

    # -- rank/node mapping ----------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        return self._node_of[rank]

    def ranks_on_node(self, node: int) -> List[int]:
        return list(self._node_ranks[node])

    def local_rank(self, rank: int) -> int:
        """Position of ``rank`` among the ranks of its node."""
        return self._local_rank[rank]

    def local_size(self, rank: int) -> int:
        return len(self._node_ranks[self._node_of[rank]])

    def same_node(self, a: int, b: int) -> bool:
        return self._node_of[a] == self._node_of[b]

    # -- fabric geometry --------------------------------------------------
    def hops(self, node_a: int, node_b: int) -> int:
        """Switch hops between two nodes (0 when identical).

        Two-level fat tree: nodes under the same leaf switch are one
        hop apart; crossing the spine adds two more.
        """
        if node_a == node_b:
            return 0
        radix = self.cost.leaf_radix
        if node_a // radix == node_b // radix:
            return 1
        return 3

    def rank_distance_hops(self, rank_a: int, rank_b: int) -> int:
        return self.hops(self._node_of[rank_a], self._node_of[rank_b])

    def lid_of(self, rank: int) -> int:
        """InfiniBand LID of the node hosting ``rank`` (one HCA/node)."""
        return 0x100 + self._node_of[rank]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Cluster {self.name}: {self.npes} PEs on {self.nnodes} nodes"
            f" x {self.ppn} ppn>"
        )

"""Core: runtime configuration, the job launcher, metrics."""

from .config import RuntimeConfig
from .job import Job
from .metrics import JobResult, ResourceReport, StartupReport

__all__ = ["RuntimeConfig", "Job", "JobResult", "ResourceReport", "StartupReport"]

"""Runtime configuration: the paper's design axes as data.

The paper's "Current Design" and "Proposed Design" are the two preset
corners; ablations mix the axes independently (e.g. static connections
with non-blocking PMI, Section IV-D's observation that the overlap
cannot help the static scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..check import CheckPlan
from ..errors import ConfigError
from ..faults import FaultPlan
from ..gasnet import LifecyclePolicy
from ..obs.timeline import canonical_observe

__all__ = ["RuntimeConfig"]

_CONNECTION_MODES = ("static", "ondemand")
_PMI_MODES = ("blocking", "nonblocking")
_BARRIER_MODES = ("global", "intranode")


@dataclass(frozen=True)
class RuntimeConfig:
    """One point in the design space evaluated by the paper."""

    #: ``static`` (full wire-up at init) or ``ondemand`` (Fig. 4).
    connection_mode: str = "ondemand"
    #: ``blocking`` Put/Fence/Get or ``nonblocking`` PMIX_Iallgather.
    pmi_mode: str = "nonblocking"
    #: Barriers inside start_pes: ``global`` or ``intranode``.
    barrier_mode: str = "intranode"
    #: On-demand only: piggyback segment keys on the connect handshake
    #: (Section IV-C).  When False, the runtime sends a separate
    #: request/reply exchange after connecting — the baseline
    #: inefficiency #2 the paper eliminates (ablation D1).
    piggyback_segments: bool = True
    #: Symmetric heap size (MB) registered at init — drives the
    #: memory-registration cost, as on the real systems.
    heap_mb: float = 256.0
    #: Real backing buffer per PE (KB) actually materialised for data.
    #: Raise for data-heavy apps; see SymmetricHeap.
    heap_backing_kb: int = 64
    #: RNG master seed for the whole job.
    seed: int = 12345
    #: Enable the flight recorder (:mod:`repro.obs`): span tracing +
    #: metrics registry on every substrate.  Off by default; when off
    #: the instrumentation costs one predicate check per site.
    #: Accepts ``bool``, ``{"timeline": ...}`` (adds the time-series
    #: sampler), or a :class:`repro.obs.TimelineConfig`; normalised to
    #: ``False`` / ``True`` / ``TimelineConfig`` so the dataclass stays
    #: hashable.
    observe: Any = False
    #: Deterministic fault plan (:class:`repro.faults.FaultPlan` or the
    #: equivalent config dict); ``None`` disables injection.
    fault_plan: Optional[FaultPlan] = None
    #: Invariant sanitizer plan (:class:`repro.check.CheckPlan`, the
    #: equivalent config dict, or ``True`` for the default plan);
    #: ``None`` disables auditing.
    check: Optional[CheckPlan] = None
    #: Connection-lifecycle policy (:class:`repro.gasnet.LifecyclePolicy`
    #: or the equivalent config dict): idle-connection reaping and
    #: transparent reconnect on the on-demand conduit.  ``None`` (the
    #: default) keeps eviction off — connections live until finalize,
    #: exactly as in the paper's evaluation.  Ignored by the static
    #: conduit, which owns no per-peer lifecycle.
    lifecycle: Optional[LifecyclePolicy] = None
    #: Analytical phase models (:mod:`repro.sim.macro`): reproduce the
    #: startup metrics through closed-form cost curves instead of the
    #: per-PE event swarm.  Off by default — the exact engine is the
    #: reference; macro mode exists for very large scale points
    #: (Figure 5 beyond ~10^5 PEs).  Incompatible with trace, faults,
    #: observe, check and lifecycle; ``Job(macro=...)`` overrides.
    macro_phases: bool = False

    def __post_init__(self) -> None:
        if self.connection_mode not in _CONNECTION_MODES:
            raise ConfigError(f"connection_mode must be one of {_CONNECTION_MODES}")
        if self.pmi_mode not in _PMI_MODES:
            raise ConfigError(f"pmi_mode must be one of {_PMI_MODES}")
        if self.barrier_mode not in _BARRIER_MODES:
            raise ConfigError(f"barrier_mode must be one of {_BARRIER_MODES}")
        if self.heap_mb <= 0:
            raise ConfigError("heap_mb must be positive")
        if self.heap_backing_kb <= 0:
            raise ConfigError("heap_backing_kb must be positive")
        object.__setattr__(self, "observe", canonical_observe(self.observe))
        if isinstance(self.fault_plan, dict):
            object.__setattr__(
                self, "fault_plan", FaultPlan.from_dict(self.fault_plan)
            )
        elif self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise ConfigError(
                f"fault_plan must be a FaultPlan or config dict, "
                f"got {self.fault_plan!r}"
            )
        if self.check is True:
            object.__setattr__(self, "check", CheckPlan())
        elif self.check is False:
            object.__setattr__(self, "check", None)
        elif isinstance(self.check, dict):
            object.__setattr__(self, "check", CheckPlan.from_dict(self.check))
        elif self.check is not None and not isinstance(self.check, CheckPlan):
            raise ConfigError(
                f"check must be a CheckPlan, config dict, or bool, "
                f"got {self.check!r}"
            )
        if isinstance(self.lifecycle, dict):
            object.__setattr__(
                self, "lifecycle", LifecyclePolicy.from_dict(self.lifecycle)
            )
        elif self.lifecycle is not None and not isinstance(
            self.lifecycle, LifecyclePolicy
        ):
            raise ConfigError(
                f"lifecycle must be a LifecyclePolicy or config dict, "
                f"got {self.lifecycle!r}"
            )

    # -- the paper's two corners ------------------------------------------
    # The unmodified corners are process-wide singletons: RuntimeConfig
    # is frozen, and sweep workers request the same design point for
    # every grid cell (validation in __post_init__ is not free).
    _current_singleton = None
    _proposed_singleton = None

    @classmethod
    def current(cls, **overrides) -> "RuntimeConfig":
        """The baseline: static connections, blocking PMI, global barriers."""
        base = cls._current_singleton
        if base is None or base.__class__ is not cls:
            base = cls(
                connection_mode="static", pmi_mode="blocking",
                barrier_mode="global",
            )
            cls._current_singleton = base
        return base.evolve(**overrides) if overrides else base

    @classmethod
    def proposed(cls, **overrides) -> "RuntimeConfig":
        """The paper's design: on-demand + PMIX_Iallgather + intra-node."""
        base = cls._proposed_singleton
        if base is None or base.__class__ is not cls:
            base = cls(
                connection_mode="ondemand", pmi_mode="nonblocking",
                barrier_mode="intranode",
            )
            cls._proposed_singleton = base
        return base.evolve(**overrides) if overrides else base

    # Friendly aliases.
    static = current
    on_demand = proposed

    def evolve(self, **overrides) -> "RuntimeConfig":
        return replace(self, **overrides)

    @property
    def label(self) -> str:
        """Short label for tables ("static+blocking+global")."""
        return (
            f"{self.connection_mode}+{self.pmi_mode}+{self.barrier_mode}"
        )

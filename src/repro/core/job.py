"""The job launcher: assembles a machine, runs an application, reports.

``Job`` is the package's main entry point::

    from repro.core import Job, RuntimeConfig
    from repro.apps import HelloWorld

    result = Job(npes=256, config=RuntimeConfig.proposed()).run(HelloWorld())
    print(result.startup.phase_means, result.wall_time_s)

One ``Job`` builds one fully wired simulated machine — fabric, HCAs,
PMI daemon tree, conduits, OpenSHMEM PEs (and an MPI communicator per
PE for hybrid apps) — spawns every PE's main process with a realistic
launch skew, and runs the discrete-event simulation to completion.
"""

from __future__ import annotations

import gc

from typing import Callable, Dict, List, Optional

from ..check import CheckPlan, Sanitizer
from ..cluster import Cluster, cluster_a
from ..errors import ConfigError, InvariantViolation
from ..faults import FaultInjector, FaultPlan
from ..gasnet import ConduitNetwork, OnDemandConduit, StaticConduit
from ..gasnet.conduit import install_timeline_probes as _conduit_probes
from ..ib import HCA, Fabric, VerbsContext
from ..ib.hca import install_timeline_probes as _hca_probes
from ..mpi import Communicator
from ..obs import Observability, parse_observe
from ..shmem.runtime import install_timeline_probes as _shmem_probes
from ..pmi import PMIClient, PMIDomain
from ..shmem import ShmemPE
from ..shmem.models import run_macro_job, supported_corner
from ..sim import Barrier, Counters, RngRegistry, Simulator, Tracer, spawn, spawn_batch
from .config import RuntimeConfig
from .metrics import JobResult, ResourceReport, StartupReport

__all__ = ["Job"]


class Job:
    """One simulated job launch."""

    def __init__(
        self,
        npes: int,
        config: Optional[RuntimeConfig] = None,
        cluster: Optional[Cluster] = None,
        cluster_factory: Optional[Callable[[int], Cluster]] = None,
        trace: bool = False,
        faults: Optional[FaultPlan] = None,
        observe=None,
        check: Optional[CheckPlan] = None,
        scheduler: str = "calendar",
        macro: Optional[bool] = None,
    ) -> None:
        if npes < 1:
            raise ConfigError("npes must be >= 1")
        self.config = config or RuntimeConfig.proposed()
        if cluster is not None:
            self.cluster = cluster
        else:
            factory = cluster_factory or cluster_a
            self.cluster = factory(npes)
        if self.cluster.npes != npes:
            raise ConfigError(
                f"cluster sized for {self.cluster.npes} PEs, job wants {npes}"
            )
        self.npes = npes

        # -- analytical phase models (macro mode) ----------------------
        # Explicit arg wins over config, like faults/observe/check.
        self.macro = (
            bool(macro) if macro is not None else self.config.macro_phases
        )
        if self.macro:
            # The macro layer reproduces metrics, not events: anything
            # that hooks the event stream has nothing to hook.
            if trace:
                raise ConfigError(
                    "macro mode produces no event trace (trace=True)"
                )
            plan = faults if faults is not None else self.config.fault_plan
            if plan is not None and not plan.empty:
                raise ConfigError("macro mode cannot inject faults")
            obs_arg = observe if observe is not None else self.config.observe
            obs_on, _ = parse_observe(obs_arg)
            if obs_on:
                raise ConfigError("macro mode has no flight recorder")
            if check is not None and check is not False or (
                check is None and self.config.check is not None
            ):
                raise ConfigError("macro mode cannot run the sanitizer")
            lifecycle = self.config.lifecycle
            if lifecycle is not None and lifecycle.enabled:
                raise ConfigError(
                    "macro mode does not model connection lifecycle"
                )
            supported_corner(self.config)  # fail fast on ablations
            self._scheduler = scheduler
            # No machine: the reducers read MacroRunResult instead.
            self.sim = None
            self.obs = None
            self.tracer = None
            self.sanitizer = None
            self.fault_injector = None
            return

        # -- machine assembly ------------------------------------------
        self.sim = Simulator(scheduler=scheduler)
        #: Flight recorder (spans + metrics registry, optionally the
        #: timeline sampler); None unless the job was built with
        #: observe=True / observe={"timeline": ...} (arg wins over
        #: config).  Every substrate holds an ``obs`` pointer that stays
        #: None when off, so instrumentation costs one predicate check
        #: per site.
        obs_arg = observe if observe is not None else self.config.observe
        obs_on, timeline_cfg = parse_observe(obs_arg)
        self.obs: Optional[Observability] = (
            Observability(self.sim, timeline=timeline_cfg) if obs_on else None
        )
        self.counters = (
            self.obs.counters_facade() if self.obs is not None else Counters()
        )
        self.rng = RngRegistry(self.config.seed)
        self.fabric = Fabric(self.sim, self.cluster, self.rng, self.counters)
        cost = self.cluster.cost
        self.hcas = [
            HCA(self.sim, self.fabric, node=n, lid=0x100 + n,
                cost=cost, counters=self.counters)
            for n in range(self.cluster.nnodes)
        ]
        self.ctxs = [
            VerbsContext(
                self.sim, self.hcas[self.cluster.node_of(r)], r, cost,
                self.counters,
            )
            for r in range(npes)
        ]
        self.pmi_domain = PMIDomain(self.sim, self.cluster, self.counters)
        self.pmi = [PMIClient(self.pmi_domain, r) for r in range(npes)]
        if self.obs is not None:
            self.fabric.obs = self.obs
            for hca in self.hcas:
                hca.obs = self.obs
            self.pmi_domain.obs = self.obs
            for client in self.pmi:
                client.obs = self.obs
        # -- fault injection (explicit arg wins over config) ------------
        plan = faults if faults is not None else self.config.fault_plan
        self.fault_injector: Optional[FaultInjector] = None
        if plan is not None and not plan.empty:
            self.fault_injector = FaultInjector(
                plan, self.sim, self.rng, self.counters
            ).install(
                fabric=self.fabric, hcas=self.hcas,
                pmi_domain=self.pmi_domain,
            )
            if self.obs is not None:
                self.fault_injector.obs = self.obs
        # -- invariant sanitizer (explicit arg wins over config) --------
        check_plan = check if check is not None else self.config.check
        if check_plan is True:
            check_plan = CheckPlan()
        elif check_plan is False:
            check_plan = None
        elif isinstance(check_plan, dict):
            check_plan = CheckPlan.from_dict(check_plan)
        elif check_plan is not None and not isinstance(check_plan, CheckPlan):
            raise ConfigError(
                f"check must be a CheckPlan, config dict, or bool, "
                f"got {check_plan!r}"
            )
        self.sanitizer: Optional[Sanitizer] = None
        if check_plan is not None and not check_plan.empty:
            self.sanitizer = Sanitizer(
                check_plan, self.sim, obs=self.obs
            ).install(hcas=self.hcas, pmi_domain=self.pmi_domain)
        self.network = ConduitNetwork()
        self.network.obs = self.obs
        self.network.check = self.sanitizer
        #: Protocol-level event log (connects, AMs, RMA); off by default
        #: so it costs one pointer check on the hot paths.
        self.tracer = Tracer(self.sim, enabled=trace)
        self.network.tracer = self.tracer
        conduit_cls = (
            StaticConduit if self.config.connection_mode == "static"
            else OnDemandConduit
        )
        self.conduits = [
            conduit_cls(
                self.sim, self.network, self.ctxs[r], self.cluster,
                self.pmi[r], r,
            )
            for r in range(npes)
        ]
        lifecycle = self.config.lifecycle
        if (
            lifecycle is not None and lifecycle.enabled
            and self.config.connection_mode == "ondemand"
        ):
            for conduit in self.conduits:
                conduit.install_lifecycle(lifecycle)
        self.pes = [
            ShmemPE(
                self.sim, r, self.cluster, self.ctxs[r], self.conduits[r],
                self.pmi[r], self.counters, self.config,
            )
            for r in range(npes)
        ]
        registry: Dict[int, ShmemPE] = {r: pe for r, pe in enumerate(self.pes)}
        node_barriers = [
            Barrier(self.sim, parties=len(self.cluster.ranks_on_node(n)))
            for n in range(self.cluster.nnodes)
        ]
        for r, pe in enumerate(self.pes):
            pe.install_peer_registry(registry)
            pe.node_barrier = node_barriers[self.cluster.node_of(r)]
            pe.obs = self.obs
            pe.check = self.sanitizer

        # -- timeline probes (machine fully assembled at this point) ----
        timeline = self.obs.timeline if self.obs is not None else None
        if timeline is not None:
            _conduit_probes(timeline, self.conduits, self.counters)
            _hca_probes(timeline, self.hcas, self.counters)
            self.pmi_domain.install_timeline_probes(timeline)
            _shmem_probes(timeline, self.pes)
            # Scheduler depth: how much work the DES is juggling —
            # pending_events is a pure len() sum over the queues.
            timeline.add_probe("sim.event_queue_depth",
                               lambda: self.sim.pending_events)

    # ------------------------------------------------------------------
    def run(self, app) -> JobResult:
        """Launch ``app`` on every PE and simulate to completion."""
        if self.macro:
            res = run_macro_job(
                app, self.npes, self.config, self.cluster,
                scheduler=self._scheduler,
            )
            return JobResult(
                npes=self.npes,
                config_label=self.config.label,
                wall_time_us=res.wall_time_us,
                app_done_us=res.app_done_us,
                startup=StartupReport.from_pes(res.pes),
                resources=ResourceReport.from_pes(res.pes),
                app_results=res.app_results,
                counters=res.counters,
                telemetry=None,
                check=None,
                macro=True,
            )
        skew_rng = self.rng.stream("launch-skew")
        skews = skew_rng.uniform(0.0, self.cluster.cost.launch_skew_us,
                                 size=self.npes)
        uses_mpi = getattr(app, "uses_mpi", False)
        app_done_at: List[float] = [0.0] * self.npes
        all_done_at: List[float] = [0.0] * self.npes
        results: List = [None] * self.npes

        def pe_main(rank: int):
            pe = self.pes[rank]
            yield float(skews[rank])
            yield from pe.start_pes()
            if uses_mpi:
                pe.mpi = Communicator(pe)
            value = yield from app.run(pe)
            app_done_at[rank] = self.sim.now
            results[rank] = value
            pe.snapshot_resources()
            yield from pe.finalize()
            all_done_at[rank] = self.sim.now

        # The launch broadcast is one aggregate wave: every PE main
        # takes its first step from a single scheduler entry instead of
        # npes individual queue hops (order unchanged — see spawn_batch).
        procs = spawn_batch(
            self.sim, ((pe_main(r), f"pe{r}") for r in range(self.npes))
        )
        done = {"ok": False}
        timeline = self.obs.timeline if self.obs is not None else None

        def join_all(sim):
            yield sim.all_of(procs)
            done["ok"] = True
            if timeline is not None:
                # Final sample + disarm; the one already-scheduled tick
                # fires as a no-op so the queue still drains.  Without
                # this the self-rearming sampler would keep the run
                # alive forever (same hazard the lifecycle reaper parks
                # around).
                timeline.stop()

        spawn(self.sim, join_all(self.sim), name="join")
        if timeline is not None:
            timeline.start()
        # The event storm allocates heavily but creates no garbage
        # cycles the run itself needs collected; at tens of thousands
        # of PEs the cyclic GC's generational scans are a measurable
        # fraction of wall time, so pause it for the simulation proper.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.sim.run()
        except BaseException as exc:
            # A strict sanitizer violation inside a PE process arrives
            # wrapped in the engine's generic ProcessFailure; surface
            # the structured violation itself at the job boundary.
            cause = exc.__cause__
            if isinstance(cause, InvariantViolation):
                raise cause from exc
            raise
        finally:
            if gc_was_enabled:
                gc.enable()
        if not done["ok"]:
            msg = (
                "job did not complete: a PE is deadlocked "
                "(event queue drained with processes still waiting)"
            )
            if self.sanitizer is not None and self.sanitizer.violations:
                heads = "; ".join(
                    str(v) for v in self.sanitizer.violations[:5]
                )
                msg += (
                    f" — sanitizer recorded "
                    f"{len(self.sanitizer.violations)} violation(s): {heads}"
                )
            raise RuntimeError(msg)

        check_report = None
        if self.sanitizer is not None:
            check_report = self.sanitizer.final_audit(
                pes=self.pes, conduits=self.conduits, pmi_clients=self.pmi,
            )

        launch = self.cluster.cost.launch_overhead_us
        return JobResult(
            npes=self.npes,
            config_label=self.config.label,
            wall_time_us=launch + max(all_done_at),
            app_done_us=launch + max(app_done_at),
            startup=StartupReport.from_pes(self.pes),
            resources=ResourceReport.from_pes(self.pes),
            app_results=results,
            counters=self.counters.as_dict(),
            telemetry=self.obs.telemetry() if self.obs is not None else None,
            check=check_report,
        )

"""Job-level measurement containers (what the benchmarks report)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ConfigError
from ..shmem.startup import STARTUP_PHASES

__all__ = ["StartupReport", "ResourceReport", "JobResult"]


@dataclass
class StartupReport:
    """Aggregated ``start_pes`` timing across all PEs (Figures 1, 5)."""

    #: Mean time per phase (us), keyed by the paper's phase labels.
    phase_means: Dict[str, float]
    #: Mean / max of the whole start_pes call (us).
    mean_us: float
    max_us: float

    @classmethod
    def from_pes(cls, pes) -> "StartupReport":
        n = len(pes)
        if n == 0:
            raise ConfigError("cannot build a StartupReport from 0 PEs")
        sums: Dict[str, float] = {p: 0.0 for p in STARTUP_PHASES}
        durations: List[float] = []
        for pe in pes:
            bd = pe.timer.breakdown()
            for phase, t in bd.items():
                sums[phase] = sums.get(phase, 0.0) + t
            durations.append(pe.init_duration or 0.0)
        return cls(
            phase_means={p: s / n for p, s in sums.items()},
            mean_us=sum(durations) / n,
            max_us=max(durations),
        )


@dataclass
class ResourceReport:
    """Per-process endpoint/connection/memory usage (Figure 9, Table I)."""

    mean_endpoints: float  #: QPs created per process (RC + UD).
    mean_rc_qps: float
    mean_connections: float
    mean_active_peers: float  #: distinct peers communicated with (Table I).
    mean_fabric_peers: float  #: distinct cross-node RC-connected peers.
    mean_qp_memory_bytes: float

    @classmethod
    def from_pes(cls, pes) -> "ResourceReport":
        n = len(pes)
        if n == 0:
            raise ConfigError("cannot build a ResourceReport from 0 PEs")
        usages = [pe.resource_usage() for pe in pes]

        def mean(key: str) -> float:
            return sum(u[key] for u in usages) / n

        return cls(
            mean_endpoints=mean("rc_qps") + mean("ud_qps"),
            mean_rc_qps=mean("rc_qps"),
            mean_connections=mean("connections"),
            mean_active_peers=mean("peers"),
            mean_fabric_peers=mean("active_connections"),
            mean_qp_memory_bytes=mean("qp_memory_bytes"),
        )


@dataclass
class JobResult:
    """Everything one simulated job run produced."""

    npes: int
    config_label: str
    #: Wall-clock of the whole job as the launcher reports it (us),
    #: including launch overhead — what "Hello World" measures.
    wall_time_us: float
    #: Time from launch until the last PE finished the *application*
    #: (excludes finalize/teardown).
    app_done_us: float
    startup: StartupReport
    resources: ResourceReport
    #: Per-PE values returned by the application's run().
    app_results: List[Any]
    counters: Dict[str, int]
    #: Flight-recorder payload (span stats + metrics snapshot) when the
    #: job ran with ``observe=True``; ``None`` otherwise.
    telemetry: Optional[Dict[str, Any]] = None
    #: Sanitizer report (plan, violations, stats, leak report) when the
    #: job ran with ``check=...``; ``None`` otherwise.
    check: Optional[Dict[str, Any]] = None
    #: True when the metrics came from the analytical phase-model layer
    #: (``Job(macro=True)``) instead of the exact event simulation.
    macro: bool = False

    @property
    def wall_time_s(self) -> float:
        return self.wall_time_us / 1e6

    @property
    def mean_peers(self) -> float:
        """Average communicating peers per process (Table I)."""
        return self.resources.mean_active_peers

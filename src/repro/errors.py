"""Exception hierarchy shared across the repro stack."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "VerbsError",
    "QPStateError",
    "ResourceExhaustedError",
    "MemoryRegistrationError",
    "RemoteAccessError",
    "PMIError",
    "ConduitError",
    "ShmemError",
    "MPIError",
    "ConfigError",
    "InvariantViolation",
]


class ReproError(RuntimeError):
    """Base class for all library errors."""


class VerbsError(ReproError):
    """Misuse of the simulated verbs interface."""


class QPStateError(VerbsError):
    """Operation attempted on a QP in the wrong state."""


class ResourceExhaustedError(VerbsError):
    """Transient ENOMEM-style verbs failure (e.g. QP context memory);
    callers are expected to back off and retry."""


class MemoryRegistrationError(VerbsError):
    """Invalid memory registration or rkey/lkey lookup."""


class RemoteAccessError(VerbsError):
    """RDMA/atomic access outside a registered region or with a bad rkey."""


class PMIError(ReproError):
    """PMI client/server protocol error."""


class ConduitError(ReproError):
    """GASNet-like conduit error."""


class ShmemError(ReproError):
    """OpenSHMEM semantic error (bad symmetric address, use before init...)."""


class MPIError(ReproError):
    """MPI layer error."""


class ConfigError(ReproError):
    """Invalid runtime configuration."""


class InvariantViolation(ReproError):
    """A protocol/lifetime invariant was broken (``repro.check``).

    Raised (or collected, under a non-strict plan) by the opt-in
    sanitizer.  Carries enough structure to locate the violation in a
    simulated run: the layer, the invariant name, the acting rank, the
    simulated time, and — when the flight recorder is on — the id of
    the active span.
    """

    def __init__(
        self,
        layer: str,
        invariant: str,
        detail: str,
        rank=None,
        time_us=None,
        span_id=None,
    ) -> None:
        where = f"pe{rank}" if rank is not None else "?"
        when = f"{time_us:.3f}us" if time_us is not None else "?"
        super().__init__(
            f"[{layer}:{invariant}] {where} @ {when}: {detail}"
        )
        self.layer = layer
        self.invariant = invariant
        self.detail = detail
        self.rank = rank
        self.time_us = time_us
        self.span_id = span_id

    def as_dict(self):
        return {
            "layer": self.layer,
            "invariant": self.invariant,
            "detail": self.detail,
            "rank": self.rank,
            "time_us": self.time_us,
            "span_id": self.span_id,
        }

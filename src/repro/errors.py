"""Exception hierarchy shared across the repro stack."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "VerbsError",
    "QPStateError",
    "ResourceExhaustedError",
    "MemoryRegistrationError",
    "RemoteAccessError",
    "PMIError",
    "ConduitError",
    "ShmemError",
    "MPIError",
    "ConfigError",
]


class ReproError(RuntimeError):
    """Base class for all library errors."""


class VerbsError(ReproError):
    """Misuse of the simulated verbs interface."""


class QPStateError(VerbsError):
    """Operation attempted on a QP in the wrong state."""


class ResourceExhaustedError(VerbsError):
    """Transient ENOMEM-style verbs failure (e.g. QP context memory);
    callers are expected to back off and retry."""


class MemoryRegistrationError(VerbsError):
    """Invalid memory registration or rkey/lkey lookup."""


class RemoteAccessError(VerbsError):
    """RDMA/atomic access outside a registered region or with a bad rkey."""


class PMIError(ReproError):
    """PMI client/server protocol error."""


class ConduitError(ReproError):
    """GASNet-like conduit error."""


class ShmemError(ReproError):
    """OpenSHMEM semantic error (bad symmetric address, use before init...)."""


class MPIError(ReproError):
    """MPI layer error."""


class ConfigError(ReproError):
    """Invalid runtime configuration."""

"""Deterministic parallel sweep execution (see DESIGN.md).

Experiment harnesses describe their job grids as picklable
:class:`JobSpec` descriptors and hand them to :func:`run_sweep`, which
fans the independent simulations out across worker processes (or runs
them serially in-process — same results, byte for byte).
"""

from .identity import (
    canonical_json,
    canonical_spec,
    spec_hash,
    spec_identity,
)
from .pool import (
    JobSpec,
    SweepError,
    execute,
    resolve_workers,
    resolve_workers_info,
    run_sweep,
)

__all__ = [
    "JobSpec",
    "SweepError",
    "canonical_json",
    "canonical_spec",
    "execute",
    "resolve_workers",
    "resolve_workers_info",
    "run_sweep",
    "spec_hash",
    "spec_identity",
]

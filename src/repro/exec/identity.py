"""Canonical JobSpec identity: the content hash that *is* the result key.

A :class:`~repro.exec.JobSpec` fully determines its
:class:`~repro.core.metrics.JobResult` (the determinism contract in
``repro.exec.pool``), so a collision-free digest of the spec's semantic
content is a sound cache key: two specs with the same hash produce
byte-identical results, and a cached result can be returned in place of
a fresh run with no loss of exactness.  ``repro.serve`` builds its
content-addressed result cache on exactly this property.

Canonicalisation rules
----------------------
The hash covers the *effective* simulation inputs, after the same
precedence :func:`repro.exec.execute` and :class:`repro.core.Job`
apply, so trivially-aliased spellings of the same run share a hash:

* ``label`` is display-only and **never** hashed.
* ``ppn=None`` folds to the testbed default (8 on A, 16 on B) —
  the value ``_cluster_for`` would use anyway.
* ``seed`` (the per-spec override) folds into ``config.seed``:
  ``JobSpec(config=cfg, seed=7)`` and ``JobSpec(config=cfg.evolve(
  seed=7))`` hash identically, mirroring ``execute()``'s
  ``config.evolve(seed=...)``.
* spec-level ``observe`` / ``faults`` / ``check`` / ``macro`` win over
  their ``config`` counterparts exactly as ``Job`` resolves them; only
  the effective value is hashed, in its canonical plain form
  (``canonical_observe`` / ``as_dict``).
* empty plans fold to ``None``: a ``FaultPlan`` with no rules, a
  ``CheckPlan`` with every auditor off, an empty ``cost_overrides``
  tuple, and a disabled ``LifecyclePolicy`` all behave exactly like
  their absent forms in ``Job``, so they hash like them too.
* a lifecycle policy under ``connection_mode="static"`` folds to
  ``None`` (the static conduit never installs one).
* plan ``name`` fields are kept conservatively: they are display-only
  today, but hashing them costs only a missed dedup, never a wrong
  cache hit.

Values must be plain data (bool/int/float/str/None, mappings,
sequences) — anything else raises a one-line :class:`ConfigError`
rather than hashing an unstable ``repr``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import numbers
from typing import Any, Dict, List, Mapping, Optional

from ..errors import ConfigError

__all__ = [
    "default_ppn",
    "canonical_spec",
    "canonical_json",
    "spec_hash",
    "spec_identity",
]

#: Bump when the canonical layout changes incompatibly — persisted
#: caches keyed on the old layout then miss cleanly instead of
#: colliding.
_CANONICAL_VERSION = 1

#: Hex digits of the full hash appended to :func:`spec_identity`
#: strings (48 bits — collision-free at any realistic sweep size).
_IDENTITY_DIGEST_CHARS = 12


def default_ppn(testbed: str) -> int:
    """The ppn ``execute`` uses when the spec leaves it ``None``."""
    return 8 if testbed == "A" else 16


def _plain(value: Any, where: str) -> Any:
    """Recursively reduce ``value`` to JSON-canonical plain data."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, Mapping):
        out: Dict[str, Any] = {}
        for k in value:
            if not isinstance(k, str):
                raise ConfigError(
                    f"JobSpec content hash: {where} has non-string key {k!r}"
                )
            out[k] = _plain(value[k], f"{where}.{k}")
        return out
    if isinstance(value, (list, tuple)):
        return [_plain(v, f"{where}[{i}]") for i, v in enumerate(value)]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # App params may hold frozen config dataclasses (e.g. a NAS
        # problem class); fold them to their fields, tagged with the
        # type so same-shaped configs of different types stay distinct.
        out = {"__type__": type(value).__qualname__}
        for f in dataclasses.fields(value):
            out[f.name] = _plain(getattr(value, f.name),
                                 f"{where}.{f.name}")
        return out
    raise ConfigError(
        f"JobSpec content hash: {where} holds unhashable value {value!r} "
        f"of type {type(value).__name__}; specs must carry plain data"
    )


def _canonical_observe(value: Any) -> Any:
    """``False`` / ``True`` / timeline-config dict."""
    from ..obs.timeline import canonical_observe

    canon = canonical_observe(value)
    if canon is False or canon is True:
        return canon
    return _plain(canon.as_dict(), "observe")


def canonical_spec(spec: Any) -> Dict[str, Any]:
    """The canonical plain-data form of a spec (what gets hashed).

    Deterministic, JSON-serialisable, and label-free; see the module
    docstring for the folding rules.
    """
    app = spec.app
    app_type = f"{type(app).__module__}.{type(app).__qualname__}"
    params = {
        k: _plain(v, f"app.{k}") for k, v in sorted(vars(app).items())
    }

    config = spec.config

    # Effective values, resolved with Job's arg-wins-over-config rules.
    observe = spec.observe if spec.observe is not False else config.observe
    faults = spec.faults if spec.faults is not None else config.fault_plan
    check = spec.check if spec.check is not None else config.check
    macro = True if spec.macro else bool(config.macro_phases)
    seed = spec.seed if spec.seed is not None else config.seed

    faults_c = (
        None if faults is None or faults.empty
        else _plain(faults.as_dict(), "faults")
    )
    check_c = (
        None if check is None or check.empty
        else _plain(check.as_dict(), "check")
    )
    lifecycle = config.lifecycle
    lifecycle_c = (
        None
        if (lifecycle is None or not lifecycle.enabled
            or config.connection_mode != "ondemand")
        else _plain(lifecycle.as_dict(), "lifecycle")
    )

    overrides = spec.cost_overrides
    overrides_c: Optional[List[List[Any]]] = (
        None if not overrides
        else [[k, _plain(v, f"cost_overrides.{k}")] for k, v in overrides]
    )

    return {
        "v": _CANONICAL_VERSION,
        "app": {"type": app_type, "params": params},
        "npes": spec.npes,
        "testbed": spec.testbed,
        "ppn": spec.ppn if spec.ppn is not None else default_ppn(spec.testbed),
        "cost_overrides": overrides_c,
        "config": {
            "connection_mode": config.connection_mode,
            "pmi_mode": config.pmi_mode,
            "barrier_mode": config.barrier_mode,
            "piggyback_segments": config.piggyback_segments,
            "heap_mb": _plain(config.heap_mb, "config.heap_mb"),
            "heap_backing_kb": config.heap_backing_kb,
            "seed": seed,
            "lifecycle": lifecycle_c,
        },
        "observe": _canonical_observe(observe),
        "faults": faults_c,
        "check": check_c,
        "macro": macro,
    }


def canonical_json(spec: Any) -> str:
    """The canonical form as compact, key-sorted JSON (the hash input)."""
    try:
        return json.dumps(
            canonical_spec(spec), sort_keys=True,
            separators=(",", ":"), allow_nan=False,
        )
    except ValueError as exc:  # NaN/Inf have no canonical JSON form
        raise ConfigError(
            f"JobSpec content hash: non-finite float in spec: {exc}"
        ) from exc


def spec_hash(spec: Any) -> str:
    """SHA-256 hex digest of the canonical spec — the result-cache key."""
    return hashlib.sha256(canonical_json(spec).encode("ascii")).hexdigest()


def spec_identity(spec: Any) -> str:
    """Collision-free human-readable identity (never the ``label``).

    The derived descriptive prefix (app, size, design point, every
    armed subsystem) plus the first 12 hex chars of
    :func:`spec_hash`, so error messages and progress lines always
    distinguish specs that differ *anywhere* semantic — including
    ``faults`` and ``cost_overrides``, which the display ``key``
    historically omitted.
    """
    app_name = getattr(spec.app, "name", type(spec.app).__name__)
    parts = [app_name, f"n{spec.npes}", spec.config.label,
             f"tb{spec.testbed}"]
    if spec.ppn is not None:
        parts.append(f"ppn{spec.ppn}")
    if spec.seed is not None:
        parts.append(f"seed{spec.seed}")
    if spec.observe:
        parts.append("obs" if spec.observe is True else "obs-tl")
    if spec.faults is not None and not spec.faults.empty:
        parts.append("faults")
    if spec.check is not None:
        parts.append("check")
    if spec.cost_overrides:
        parts.append("co")
    if spec.macro:
        parts.append("macro")
    return "-".join(parts) + f"#{spec_hash(spec)[:_IDENTITY_DIGEST_CHARS]}"

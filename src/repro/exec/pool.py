"""The sweep pool: fan independent simulations out across cores.

Every experiment point — one ``(app, npes, config, testbed)`` tuple —
is a complete, self-seeded discrete-event simulation: it builds its own
:class:`~repro.sim.engine.Simulator` and draws every random number from
``RngRegistry(config.seed)``.  Two runs of the same :class:`JobSpec`
therefore produce identical :class:`~repro.core.metrics.JobResult`\\ s
*wherever they run*, which makes the paper sweeps (Figure 5's seven job
sizes x two designs, Figure 9's app x size grid, the ablations)
embarrassingly parallel.

Determinism contract
--------------------
* A :class:`JobSpec` fully determines its result (no wall-clock, no
  global state, no cross-job RNG).
* :func:`run_sweep` returns results **in spec order** — position ``i``
  of the output is the result of ``specs[i]`` regardless of which
  worker finished first.
* The serial fallback (``REPRO_PAR=0``, ``max_workers=1``, a single
  spec, or a single-core host) runs the same ``execute`` function
  in-process; parallel and serial output are byte-identical.

Failure contract
----------------
Any exception inside a job — in the worker or on the serial path — is
re-raised as :class:`SweepError` carrying the failing :class:`JobSpec`
(``.spec``) and the original exception (``.cause`` / ``__cause__``).
A worker process dying outright (segfault, OOM-kill) surfaces the
pool's :class:`BrokenProcessPool` the same way.

Worker model
------------
Workers are plain ``ProcessPoolExecutor`` processes.  On platforms with
``fork`` they inherit the parent's already-imported modules (warm
start); elsewhere an initializer pre-imports the heavy packages once
per worker so per-job import cost is zero either way.  Clusters and
config singletons are cached per process (see ``repro.cluster.presets``
and ``RuntimeConfig.current``), so a worker running many points of one
sweep builds each distinct ``(npes, ppn)`` topology once.
"""

from __future__ import annotations

import gc
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..check import CheckPlan
from ..errors import ConfigError
from ..faults import FaultPlan
from .identity import default_ppn, spec_identity

__all__ = ["JobSpec", "SweepError", "execute", "resolve_workers",
           "resolve_workers_info", "run_sweep"]

_TESTBEDS = ("A", "B")

#: Jobs at or above this size leave enough cyclic garbage (generators,
#: waitables, conduit machinery) that sweeping it eagerly after the run
#: is a clear win: without the collect, every later job in the same
#: process pays progressively more for generational GC over the dead
#: machine (measured: a 2048-PE static point runs ~15% slower when it
#: follows an uncollected 4096-PE one).
_GC_SWEEP_NPES = 256


class SweepError(RuntimeError):
    """A sweep job failed; carries the spec and the original exception.

    The message names the job by its collision-free :attr:`JobSpec.
    identity` (with the display ``label``, when set, as a prefix) so a
    failure is never misattributed to a different point of the grid —
    ``label`` alone can be shared, and the descriptive ``key`` omits
    ``faults``/``cost_overrides``.
    """

    def __init__(self, spec: "JobSpec", cause: BaseException) -> None:
        identity = spec.identity
        name = f"{spec.label} ({identity})" if spec.label else identity
        super().__init__(f"sweep job {name} failed: {cause!r}")
        self.spec = spec
        self.cause = cause


@dataclass(frozen=True)
class JobSpec:
    """One picklable experiment point.

    ``config`` (with ``seed`` folded in) plus the cluster description
    (``testbed``/``ppn``/``cost_overrides``) and the ``app`` instance
    fully determine the simulation.  App instances must be picklable
    module-level classes holding plain parameters — every app in
    ``repro.apps`` and ``repro.bench.microbench`` qualifies.
    """

    app: Any
    npes: int
    config: Any  # RuntimeConfig (kept untyped to avoid an import cycle)
    testbed: str = "A"
    ppn: Optional[int] = None
    #: Override ``config.seed`` for this point (ablation sweeps vary the
    #: seed without re-evolving the whole config).
    seed: Optional[int] = None
    #: Flight-recorder switch: ``bool``, ``{"timeline": ...}``, or a
    #: ``repro.obs.TimelineConfig``; normalised to ``False`` / ``True``
    #: / ``TimelineConfig`` so specs stay hashable + picklable.
    observe: Any = False
    faults: Optional[FaultPlan] = None
    #: Invariant sanitizer plan (CheckPlan or config dict); ``None``
    #: runs unaudited.
    check: Optional[CheckPlan] = None
    #: CostModel fields to evolve on top of the testbed's preset (e.g.
    #: ``{"qp_cache_entries": 8}`` for ablation D5).  Normalised to a
    #: sorted tuple so specs stay hashable.
    cost_overrides: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: Human-readable tag used in error messages and progress output.
    label: Optional[str] = None
    #: Run through the analytical phase-model layer instead of the
    #: exact event simulation (``Job(macro=True)``); the scale sweeps
    #: flip this on for their largest points.
    macro: bool = False

    def __post_init__(self) -> None:
        if self.npes < 1:
            raise ConfigError(f"JobSpec.npes must be >= 1, got {self.npes}")
        if self.testbed not in _TESTBEDS:
            raise ConfigError(
                f"JobSpec.testbed must be one of {_TESTBEDS}, "
                f"got {self.testbed!r}"
            )
        if self.ppn is not None and self.ppn < 1:
            raise ConfigError(f"JobSpec.ppn must be >= 1, got {self.ppn}")
        from ..obs.timeline import canonical_observe

        object.__setattr__(self, "observe", canonical_observe(self.observe))
        overrides = self.cost_overrides
        if isinstance(overrides, Mapping):
            overrides = tuple(sorted(overrides.items()))
            object.__setattr__(self, "cost_overrides", overrides)
        if overrides:
            # Validate here, with the offending key in hand — an
            # unhashable value (e.g. a list) would otherwise explode
            # deep inside _custom_cluster's lru_cache with an opaque
            # TypeError long after construction.
            for entry in overrides:
                try:
                    key, value = entry
                except (TypeError, ValueError):
                    raise ConfigError(
                        f"JobSpec.cost_overrides entries must be "
                        f"(name, value) pairs, got {entry!r}"
                    )
                if not isinstance(key, str):
                    raise ConfigError(
                        f"JobSpec.cost_overrides keys must be strings, "
                        f"got {key!r}"
                    )
                try:
                    hash(value)
                except TypeError:
                    raise ConfigError(
                        f"JobSpec.cost_overrides[{key!r}] must be a "
                        f"hashable value, got {value!r}"
                    )
        if self.check is True:
            object.__setattr__(self, "check", CheckPlan())
        elif self.check is False:
            object.__setattr__(self, "check", None)
        elif isinstance(self.check, Mapping):
            object.__setattr__(self, "check", CheckPlan.from_dict(dict(self.check)))
        elif self.check is not None and not isinstance(self.check, CheckPlan):
            raise ConfigError(
                f"JobSpec.check must be a CheckPlan, config dict, or bool, "
                f"got {self.check!r}"
            )

    @property
    def key(self) -> str:
        """Display string: the ``label`` when set, else a descriptive
        derived form.  NOT collision-free — distinct specs can share a
        label, and the derived form elides override details.  Anything
        attributing behaviour to a spec (errors, dedup, caching) must
        use :attr:`identity` or :func:`repro.exec.spec_hash` instead.
        """
        if self.label:
            return self.label
        app_name = getattr(self.app, "name", type(self.app).__name__)
        parts = [app_name, f"n{self.npes}", self.config.label,
                 f"tb{self.testbed}"]
        if self.ppn is not None:
            parts.append(f"ppn{self.ppn}")
        if self.seed is not None:
            parts.append(f"seed{self.seed}")
        if self.observe:
            parts.append("obs" if self.observe is True else "obs-tl")
        if self.faults is not None and not self.faults.empty:
            parts.append("faults")
        if self.check is not None:
            parts.append("check")
        if self.cost_overrides:
            parts.append("co")
        if self.macro:
            parts.append("macro")
        return "-".join(parts)

    @property
    def identity(self) -> str:
        """Collision-free identity string (see :func:`spec_identity`):
        the derived descriptive form — ``label`` never shadows it —
        plus a short content-hash suffix covering every semantic field,
        including ``faults`` and ``cost_overrides``."""
        return spec_identity(self)


@lru_cache(maxsize=32)
def _custom_cluster(testbed: str, npes: int, ppn: int,
                    overrides: Tuple[Tuple[str, Any], ...]):
    from ..cluster import CLUSTER_A_COST, CLUSTER_B_COST
    from ..cluster.topology import Cluster

    base = CLUSTER_A_COST if testbed == "A" else CLUSTER_B_COST
    return Cluster(npes=npes, ppn=ppn, cost=base.evolve(**dict(overrides)),
                   name=f"Cluster-{testbed}*")


def _cluster_for(spec: JobSpec):
    from ..cluster import cluster_a, cluster_b

    ppn = spec.ppn if spec.ppn is not None else default_ppn(spec.testbed)
    if spec.cost_overrides:
        return _custom_cluster(spec.testbed, spec.npes, ppn,
                               spec.cost_overrides)
    factory = cluster_a if spec.testbed == "A" else cluster_b
    return factory(spec.npes, ppn=ppn)


def execute(spec: JobSpec) -> Any:
    """Run one spec to completion in this process; returns a JobResult.

    This is the single code path both the serial fallback and the pool
    workers run — parallel == serial by construction.
    """
    from ..core import Job

    config = spec.config
    if spec.seed is not None:
        config = config.evolve(seed=spec.seed)
    job = Job(
        npes=spec.npes,
        config=config,
        cluster=_cluster_for(spec),
        faults=spec.faults,
        observe=spec.observe or None,
        check=spec.check,
        macro=spec.macro or None,
    )
    try:
        return job.run(spec.app)
    finally:
        if spec.npes >= _GC_SWEEP_NPES:
            del job
            gc.collect()


# ----------------------------------------------------------------------
# worker-count policy
# ----------------------------------------------------------------------
def _detect_host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers_info(max_workers: Optional[int] = None,
                         njobs: Optional[int] = None,
                         host_cpus: Optional[int] = None) -> Dict[str, Any]:
    """Pick the worker count; returns the decision *and* why.

    Policy: ``REPRO_PAR=0`` (or ``1``) is a global kill switch forcing
    the serial path even when the caller asked for workers (single-core
    CI, debugging).  ``REPRO_PAR=N`` sets the default when the caller
    passed no explicit ``max_workers``.  With neither, auto-detect from
    CPU affinity.  The count is clamped to the number of jobs **and to
    the host CPUs actually available** — oversubscribing a process pool
    of CPU-bound simulations only adds fork and context-switch cost (a
    2-worker sweep on a 1-CPU host measured a 0.81x "speedup"), so a
    request beyond the affinity mask falls back rather than thrashing.
    On a single-core host every request degrades to the serial path.

    Returns a dict so callers can record the policy outcome in result
    metadata (``BENCH_sweep.json`` stores it verbatim):

    ``requested``
        The worker count asked for (explicit argument or ``REPRO_PAR``),
        or ``None`` for auto-detect.
    ``host_cpus``
        CPUs available to this process (affinity-aware).
    ``workers``
        The resolved count — what :func:`run_sweep` will use.
    ``mode``
        ``"parallel"`` or ``"serial"``.
    ``reason``
        Why the count differs from the request (``"REPRO_PAR kill
        switch"``, ``"clamped to host CPUs"``, ``"single-core host"``,
        ``"clamped to job count"``), or ``None``.

    ``host_cpus`` may be passed explicitly to make the policy testable
    independent of the machine running the tests.
    """
    if host_cpus is None:
        host_cpus = _detect_host_cpus()
    info: Dict[str, Any] = {
        "requested": max_workers,
        "host_cpus": host_cpus,
        "workers": 1,
        "mode": "serial",
        "reason": None,
    }
    env = os.environ.get("REPRO_PAR", "").strip()
    if env:
        try:
            env_workers = int(env)
        except ValueError:
            raise ConfigError(f"REPRO_PAR must be an integer, got {env!r}")
        if env_workers <= 1:
            info["reason"] = "REPRO_PAR kill switch"
            return info
        if max_workers is None:
            max_workers = env_workers
            info["requested"] = env_workers
    workers = max_workers if max_workers is not None else host_cpus
    if workers > host_cpus:
        workers = host_cpus
        info["reason"] = ("single-core host" if host_cpus <= 1
                          else "clamped to host CPUs")
    if njobs is not None and workers > njobs:
        workers = njobs
        info["reason"] = "clamped to job count"
    workers = max(1, workers)
    info["workers"] = workers
    info["mode"] = "parallel" if workers > 1 else "serial"
    if workers == 1 and info["reason"] is None and host_cpus <= 1:
        info["reason"] = "single-core host"
    return info


def resolve_workers(max_workers: Optional[int] = None,
                    njobs: Optional[int] = None,
                    host_cpus: Optional[int] = None) -> int:
    """The worker count alone (see :func:`resolve_workers_info`)."""
    return resolve_workers_info(max_workers, njobs, host_cpus)["workers"]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def _warm_worker() -> None:
    """Per-worker initializer: pre-import the heavy packages once so no
    job pays import cost (a no-op under ``fork``, where the worker
    inherits the parent's modules)."""
    import repro.apps  # noqa: F401
    import repro.bench.microbench  # noqa: F401
    import repro.core  # noqa: F401


def _run_serial(specs: List[JobSpec],
                progress: Optional[Callable] = None) -> List[Any]:
    results = []
    for i, spec in enumerate(specs):
        try:
            results.append(execute(spec))
        except Exception as exc:
            raise SweepError(spec, exc) from exc
        if progress is not None:
            progress(spec, i + 1, len(specs))
    return results


def _run_parallel(specs: List[JobSpec], workers: int,
                  progress: Optional[Callable] = None) -> List[Any]:
    import multiprocessing

    mp_context = None
    if "fork" in multiprocessing.get_all_start_methods():
        # Warm-start workers: they inherit every module the parent has
        # already imported instead of re-importing under spawn.
        mp_context = multiprocessing.get_context("fork")
    pool = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context,
        initializer=_warm_worker,
    )
    try:
        # Results are keyed by submission position — completion order
        # never matters, so the merge is deterministic by construction.
        futures = [pool.submit(execute, spec) for spec in specs]
        results = []
        for i, (spec, future) in enumerate(zip(specs, futures)):
            try:
                results.append(future.result())
            except BrokenProcessPool as exc:
                # The worker died without raising (crash/OOM-kill);
                # attach the first spec whose result we could not get.
                raise SweepError(spec, exc) from exc
            except Exception as exc:
                for pending in futures[i + 1:]:
                    pending.cancel()
                raise SweepError(spec, exc) from exc
            if progress is not None:
                progress(spec, i + 1, len(specs))
        return results
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def run_sweep(specs: Iterable[JobSpec],
              max_workers: Optional[int] = None,
              progress: Optional[Callable] = None) -> List[Any]:
    """Run every spec; returns JobResults in spec order.

    ``progress``, when given, is called as ``progress(spec, done,
    total)`` after each job completes (in spec order).
    """
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, JobSpec):
            raise ConfigError(f"run_sweep expects JobSpecs, got {spec!r}")
    if not specs:
        return []
    workers = resolve_workers(max_workers, njobs=len(specs))
    if workers <= 1:
        return _run_serial(specs, progress)
    return _run_parallel(specs, workers, progress)

"""Deterministic, seed-driven fault injection (see DESIGN.md).

Split into declarative plans (:mod:`repro.faults.plan`) and their
runtime evaluation (:mod:`repro.faults.injector`)::

    from repro.core import Job
    from repro.faults import FaultPlan, UDFault

    plan = FaultPlan(name="lossy", ud=(UDFault("drop", prob=0.2),))
    Job(npes=64, faults=plan).run(app)

Every decision draws from named sub-streams of the job's master seed,
so a (plan, seed) pair replays byte-identically — the chaos matrix in
``tests/faults`` leans on this to pin the handshake's adverse paths.
"""

from .injector import FaultInjector
from .plan import FaultPlan, PMIFault, QPCreateFault, UDFault

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "UDFault",
    "QPCreateFault",
    "PMIFault",
]

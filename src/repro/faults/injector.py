"""Runtime fault evaluation: the *when and to whom* of a FaultPlan.

One :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a simulation run: it owns the per-rule firing budgets and draws all
randomness from **named sub-streams** of the run's master
:class:`~repro.sim.rng.RngRegistry` — one stream per (rule, src, dst)
pair — so

* the same (plan, seed) always produces byte-identical schedules, and
* faults on one pair never perturb the draws another pair sees.

The injector is passive: the substrates consult it at their hook
points (``Fabric.transmit``, ``HCA.try_alloc_rc_context``,
``Daemon.occupy``) and it answers "what happens to this operation".
Attach it with :meth:`install`, or let ``Job(faults=plan)`` do so.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from .plan import FaultPlan, PMIFault, QPCreateFault, UDFault

if TYPE_CHECKING:  # pragma: no cover
    from ..ib.fabric import Fabric
    from ..ib.hca import HCA
    from ..pmi.server import PMIDomain
    from ..sim import Counters, RngRegistry, Simulator

__all__ = ["FaultInjector", "UDVerdict"]

#: Fate of one UD datagram: ``dropped``; extra delivery delay for the
#: original copy; delays of any injected duplicate copies.
UDVerdict = Tuple[bool, float, Tuple[float, ...]]

_NO_FAULT: UDVerdict = (False, 0.0, ())


class FaultInjector:
    """Evaluates one plan against one simulation run."""

    def __init__(
        self,
        plan: FaultPlan,
        sim: "Simulator",
        rng: "RngRegistry",
        counters: "Counters",
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.rng = rng
        self.counters = counters
        #: Flight recorder (installed by ``Job(observe=True)``); fault
        #: hits become instant spans on the "faults" track.
        self.obs = None
        #: Per-UD-rule firing counts (first_n budgets).
        self._ud_fired: List[int] = [0] * len(plan.ud)
        #: Per-QP-rule firing counts; per-rank rules key by rank.
        self._qp_fired: List[Dict[Optional[int], int]] = [
            {} for _ in plan.qp_create
        ]

    # ------------------------------------------------------------------
    def install(
        self,
        fabric: Optional["Fabric"] = None,
        hcas: Iterable["HCA"] = (),
        pmi_domain: Optional["PMIDomain"] = None,
    ) -> "FaultInjector":
        """Attach this injector to the given substrates."""
        if fabric is not None:
            fabric.faults = self
        for hca in hcas:
            hca.faults = self
        if pmi_domain is not None:
            pmi_domain.faults = self
        return self

    # ------------------------------------------------------------------
    # UD datagrams (consulted by Fabric.transmit)
    # ------------------------------------------------------------------
    def ud_fate(self, src_node: int, dst_node: int,
                kind: Optional[str] = None) -> UDVerdict:
        """Decide the fate of one UD datagram src_node -> dst_node.

        ``kind`` is the payload's class name (``None`` when the caller
        does not discriminate); rules with a ``kind`` only fire on a
        matching datagram.
        """
        plan_ud = self.plan.ud
        if not plan_ud:
            return _NO_FAULT
        now = self.sim.now
        extra = 0.0
        dups: List[float] = []
        for i, rule in enumerate(plan_ud):
            if rule.src is not None and rule.src != src_node:
                continue
            if rule.dst is not None and rule.dst != dst_node:
                continue
            if rule.kind is not None and rule.kind != kind:
                continue
            if rule.window is not None and not (
                rule.window[0] <= now < rule.window[1]
            ):
                continue
            if rule.first_n is not None and self._ud_fired[i] >= rule.first_n:
                continue
            stream = None
            if rule.prob < 1.0 or rule.jitter_us > 0.0:
                stream = self.rng.substream(
                    f"faults.ud.{i}", src_node, dst_node
                )
            if rule.prob < 1.0 and stream.random() >= rule.prob:
                continue
            self._ud_fired[i] += 1
            delay = rule.delay_us
            if rule.jitter_us > 0.0:
                delay += stream.random() * rule.jitter_us
            obs = self.obs
            if rule.action == "drop":
                self.counters.add("faults.ud_dropped")
                if obs is not None:
                    obs.spans.event("fault.ud_drop", "faults", rule=i,
                                    src_node=src_node, dst_node=dst_node)
                return (True, 0.0, ())
            if rule.action == "duplicate":
                self.counters.add("faults.ud_duplicated")
                if obs is not None:
                    obs.spans.event("fault.ud_duplicate", "faults", rule=i,
                                    src_node=src_node, dst_node=dst_node)
                dups.append(delay)
            else:  # "delay"
                self.counters.add("faults.ud_delayed")
                if obs is not None:
                    obs.spans.event("fault.ud_delay", "faults", rule=i,
                                    src_node=src_node, dst_node=dst_node,
                                    delay_us=delay)
                extra += delay
        if extra == 0.0 and not dups:
            return _NO_FAULT
        return (False, extra, tuple(dups))

    # ------------------------------------------------------------------
    # RC QP creation (consulted by HCA.try_alloc_rc_context)
    # ------------------------------------------------------------------
    def qp_create_fails(self, rank: int) -> bool:
        """True when this RC QP creation should fail ENOMEM-style."""
        now = self.sim.now
        for i, rule in enumerate(self.plan.qp_create):
            if rule.rank is not None and rule.rank != rank:
                continue
            if rule.window is not None and not (
                rule.window[0] <= now < rule.window[1]
            ):
                continue
            fired = self._qp_fired[i]
            key = rank if rule.per_rank else None
            if rule.first_n is not None and fired.get(key, 0) >= rule.first_n:
                continue
            if rule.prob < 1.0:
                stream = self.rng.substream(f"faults.qp.{i}", rank)
                if stream.random() >= rule.prob:
                    continue
            fired[key] = fired.get(key, 0) + 1
            self.counters.add("faults.qp_create_failed")
            if self.obs is not None:
                self.obs.spans.event("fault.qp_enomem", "faults", rule=i,
                                     rank=rank)
            return True
        return False

    # ------------------------------------------------------------------
    # PMI daemons (consulted by Daemon.occupy)
    # ------------------------------------------------------------------
    def pmi_adjust(
        self, node: int, arrival: float, cpu: float
    ) -> Tuple[float, float]:
        """Apply outage deferrals and slowdown factors to daemon work."""
        for rule in self.plan.pmi:
            if rule.node is not None and rule.node != node:
                continue
            start, end = rule.window
            if rule.outage and start <= arrival < end:
                # Daemon is restarting: the request is accepted once it
                # is back up (clients see it as a very slow server).
                arrival = end
                self.counters.add("faults.pmi_deferrals")
                if self.obs is not None:
                    self.obs.spans.event("fault.pmi_outage", "faults",
                                         node=node, deferred_to=end)
            if rule.slowdown > 1.0 and start <= arrival < end:
                cpu *= rule.slowdown
                self.counters.add("faults.pmi_slowdowns")
                if self.obs is not None:
                    self.obs.spans.event("fault.pmi_slowdown", "faults",
                                         node=node, factor=rule.slowdown)
        return arrival, cpu

"""Declarative fault plans: the *what* of fault injection.

A :class:`FaultPlan` is pure data — a frozen description of which
adverse events the simulated machine should suffer.  It deliberately
knows nothing about the simulator: the same plan object can be printed,
round-tripped through a config dict, and attached to any number of
runs.  The runtime evaluation (seeded RNG streams, per-rule budgets,
counters) lives in :class:`repro.faults.injector.FaultInjector`.

Three rule families cover the adverse paths the paper's on-demand
handshake must survive (Sections IV-A/IV-E):

* :class:`UDFault`       — drop / duplicate / delay UD datagrams,
  scoped per (src, dst) node pair, time window, probability, or a
  "first N matching packets" budget (blackhole intervals and
  "drop the first N requests to peer P" compose from these);
* :class:`QPCreateFault` — ENOMEM-style RC QP creation failures the
  conduit must ride out with bounded exponential backoff;
* :class:`PMIFault`      — process-manager daemon slowdown factors and
  restart (outage) windows.

All times are simulated microseconds, matching the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigError

__all__ = ["FaultPlan", "UDFault", "QPCreateFault", "PMIFault"]

#: Half-open activity interval ``[start_us, end_us)``.
Window = Tuple[float, float]

_UD_ACTIONS = ("drop", "duplicate", "delay")


def _check_window(window: Optional[Window], what: str) -> None:
    if window is None:
        return
    if len(window) != 2 or not window[0] < window[1] or window[0] < 0:
        raise ConfigError(
            f"{what}: window must be (start, end) with 0 <= start < end, "
            f"got {window!r}"
        )


def _check_prob(prob: float, what: str) -> None:
    if not 0.0 <= prob <= 1.0:
        raise ConfigError(f"{what}: prob must be in [0, 1], got {prob!r}")


def _check_first_n(first_n: Optional[int], what: str) -> None:
    if first_n is not None and first_n < 1:
        raise ConfigError(f"{what}: first_n must be >= 1, got {first_n!r}")


@dataclass(frozen=True)
class UDFault:
    """One UD datagram fault rule.

    A packet matches when its source/destination node, the current
    simulated time, the per-rule ``first_n`` budget and a Bernoulli
    draw (from the rule's own RNG stream, keyed per (src, dst) pair)
    all agree.  ``action`` then decides the packet's fate:

    * ``"drop"``      — silently discarded (the fabric counts it);
    * ``"duplicate"`` — a second copy is delivered ``delay_us`` (+
      jitter) later;
    * ``"delay"``     — delivery is postponed by ``delay_us`` (+
      jitter), which *reorders* it past packets sent after it.
    """

    action: str
    #: Source / destination node index (``None`` matches any).
    src: Optional[int] = None
    dst: Optional[int] = None
    #: Payload class name to match (e.g. ``"ConnectRequest"``,
    #: ``"Disconnect"``, ``"DisconnectAck"``); ``None`` matches any
    #: datagram.  Lets a plan target one leg of a handshake — "drop
    #: every DisconnectAck" — without touching the rest.
    kind: Optional[str] = None
    #: Per-matching-packet firing probability.
    prob: float = 1.0
    #: Fire on at most the first N matching packets, then go inert.
    first_n: Optional[int] = None
    #: Active only inside ``[start, end)`` (``None`` = always).
    window: Optional[Window] = None
    #: Fixed extra delay for ``duplicate``/``delay`` actions.
    delay_us: float = 0.0
    #: Uniform extra delay in ``[0, jitter_us)`` from the rule's stream.
    jitter_us: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _UD_ACTIONS:
            raise ConfigError(
                f"UDFault action must be one of {_UD_ACTIONS}, "
                f"got {self.action!r}"
            )
        _check_prob(self.prob, "UDFault")
        _check_first_n(self.first_n, "UDFault")
        _check_window(self.window, "UDFault")
        if self.delay_us < 0 or self.jitter_us < 0:
            raise ConfigError("UDFault: delay_us/jitter_us must be >= 0")
        if self.kind is not None and (
            not isinstance(self.kind, str) or not self.kind
        ):
            raise ConfigError(
                f"UDFault: kind must be a non-empty payload class name "
                f"or None, got {self.kind!r}"
            )


@dataclass(frozen=True)
class QPCreateFault:
    """RC QP creation fails with an ENOMEM-style error.

    Models HCA on-board QP-context exhaustion under contention: the
    failure is transient, so a retry after backoff succeeds once the
    ``first_n`` budget is spent (or the window closes).
    """

    #: Only this PE's creations fail (``None`` matches any rank).
    rank: Optional[int] = None
    prob: float = 1.0
    first_n: Optional[int] = None
    #: Count the ``first_n`` budget per rank instead of globally.
    per_rank: bool = False
    window: Optional[Window] = None

    def __post_init__(self) -> None:
        _check_prob(self.prob, "QPCreateFault")
        _check_first_n(self.first_n, "QPCreateFault")
        _check_window(self.window, "QPCreateFault")


@dataclass(frozen=True)
class PMIFault:
    """PMI daemon degradation over one time window.

    ``slowdown`` multiplies the daemon's per-request CPU time;
    ``outage=True`` models a daemon restart: work arriving inside the
    window is deferred until the daemon is back at ``window[1]``.
    """

    window: Window = (0.0, 0.0)
    #: Node whose daemon is affected (``None`` = every daemon).
    node: Optional[int] = None
    slowdown: float = 1.0
    outage: bool = False

    def __post_init__(self) -> None:
        _check_window(self.window, "PMIFault")
        if self.slowdown < 1.0:
            raise ConfigError(
                f"PMIFault: slowdown must be >= 1, got {self.slowdown!r}"
            )
        if not self.outage and self.slowdown == 1.0:
            raise ConfigError("PMIFault: rule has no effect "
                              "(slowdown == 1 and outage is False)")


_RULE_TYPES = {"ud": UDFault, "qp_create": QPCreateFault, "pmi": PMIFault}


@dataclass(frozen=True)
class FaultPlan:
    """A named bundle of fault rules, buildable in code or from config.

    Example::

        plan = FaultPlan(
            name="flaky-startup",
            ud=(UDFault("drop", prob=0.2),
                UDFault("drop", dst=3, first_n=2)),
            qp_create=(QPCreateFault(first_n=1, per_rank=True),),
        )

    or equivalently ``FaultPlan.from_dict({...})`` with the same field
    names (rule windows may be 2-element lists).
    """

    name: str = "faults"
    ud: Tuple[UDFault, ...] = ()
    qp_create: Tuple[QPCreateFault, ...] = ()
    pmi: Tuple[PMIFault, ...] = ()

    def __post_init__(self) -> None:
        # Config dicts hand in lists; normalise to tuples so the plan
        # stays frozen-hashable and order-stable.
        for fam in _RULE_TYPES:
            value = getattr(self, fam)
            if not isinstance(value, tuple):
                object.__setattr__(self, fam, tuple(value))
        for fam, rule_type in _RULE_TYPES.items():
            for rule in getattr(self, fam):
                if not isinstance(rule, rule_type):
                    raise ConfigError(
                        f"FaultPlan.{fam} entries must be "
                        f"{rule_type.__name__}, got {rule!r}"
                    )

    @property
    def empty(self) -> bool:
        return not (self.ud or self.qp_create or self.pmi)

    # -- config round-trip ---------------------------------------------
    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from a plain config mapping."""
        if not isinstance(spec, dict):
            raise ConfigError(f"FaultPlan spec must be a dict, got {spec!r}")
        unknown = set(spec) - ({"name"} | set(_RULE_TYPES))
        if unknown:
            raise ConfigError(f"unknown FaultPlan keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {"name": spec.get("name", "faults")}
        for fam, rule_type in _RULE_TYPES.items():
            rules = []
            for entry in spec.get(fam, ()):
                if isinstance(entry, rule_type):
                    rules.append(entry)
                    continue
                entry = dict(entry)
                if entry.get("window") is not None:
                    entry["window"] = tuple(entry["window"])
                valid = {f.name for f in fields(rule_type)}
                bad = set(entry) - valid
                if bad:
                    raise ConfigError(
                        f"unknown {rule_type.__name__} fields: {sorted(bad)}"
                    )
                rules.append(rule_type(**entry))
            kwargs[fam] = tuple(rules)
        return cls(**kwargs)

    def as_dict(self) -> Dict[str, Any]:
        """Inverse of :meth:`from_dict` (plain types only)."""
        out: Dict[str, Any] = {"name": self.name}
        for fam in _RULE_TYPES:
            out[fam] = [
                {
                    f.name: (list(v) if isinstance(v := getattr(r, f.name),
                                                   tuple) else v)
                    for f in fields(type(r))
                }
                for r in getattr(self, fam)
            ]
        return out

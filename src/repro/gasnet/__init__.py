"""GASNet-like conduits: active messages, static and on-demand wiring."""

from .conduit import Conduit, ConduitNetwork, Connection
from .lifecycle import LifecyclePolicy, select_victims
from .messages import (
    ActiveMessage,
    ConnectReply,
    ConnectRequest,
    Disconnect,
    DisconnectAck,
)
from .ondemand_conduit import OnDemandConduit
from .segment import SegmentInfo, SegmentTable, decode_segments, encode_segments
from .static_conduit import StaticConduit

__all__ = [
    "Conduit",
    "ConduitNetwork",
    "Connection",
    "ActiveMessage",
    "ConnectRequest",
    "ConnectReply",
    "Disconnect",
    "DisconnectAck",
    "LifecyclePolicy",
    "select_victims",
    "OnDemandConduit",
    "StaticConduit",
    "SegmentInfo",
    "SegmentTable",
    "encode_segments",
    "decode_segments",
]

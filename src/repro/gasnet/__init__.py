"""GASNet-like conduits: active messages, static and on-demand wiring."""

from .conduit import Conduit, ConduitNetwork, Connection
from .messages import ActiveMessage, ConnectReply, ConnectRequest
from .ondemand_conduit import OnDemandConduit
from .segment import SegmentInfo, SegmentTable, decode_segments, encode_segments
from .static_conduit import StaticConduit

__all__ = [
    "Conduit",
    "ConduitNetwork",
    "Connection",
    "ActiveMessage",
    "ConnectRequest",
    "ConnectReply",
    "OnDemandConduit",
    "StaticConduit",
    "SegmentInfo",
    "SegmentTable",
    "encode_segments",
    "decode_segments",
]

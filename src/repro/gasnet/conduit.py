"""Base conduit: endpoints, progress engine, active messages, RMA.

The conduit is the GASNet-like layer between the runtime (OpenSHMEM /
MPI) and the verbs substrate.  One conduit object per PE.  Concrete
subclasses decide *when connections are made*:

* :class:`repro.gasnet.static_conduit.StaticConduit` — full wire-up at
  init (the ibv-conduit behaviour the paper starts from);
* :class:`repro.gasnet.ondemand_conduit.OnDemandConduit` — the paper's
  contribution: UD handshake on first communication, with the upper
  layer's *exchange payload* (segment keys) piggybacked.

Design notes
------------
* All PEs of a node share the node's HCA; **intra-node** peers use a
  shared-memory path (no QPs, no connections) — this matches the
  MVAPICH2-X unified runtime and is what makes the paper's intra-node
  barrier free of fabric connections.
* Each PE runs a **progress process** (the paper's "connection manager
  thread", Fig. 4) draining one shared receive CQ: UD handshake
  packets and RC active messages both land there.
* Blocking RMA/AM operations serialise per connection (a lock models
  non-thread-safe QP posting); handlers run in the progress process and
  must never initiate AMs themselves (documented no-deadlock rule —
  collectives put all sends in the main process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..cluster import Cluster
from ..errors import ConduitError, RemoteAccessError, VerbsError
from ..ib import (
    CompletionQueue,
    EndpointAddress,
    RCQueuePair,
    UDQueuePair,
    VerbsContext,
    WorkCompletion,
)
from ..ib.types import Opcode, WCStatus
from ..pmi import PMIClient, PMIHandle
from ..sim import Semaphore, SimEvent, Simulator, Tracer, spawn
from .messages import (
    ActiveMessage,
    ConnectReply,
    ConnectRequest,
    Disconnect,
    DisconnectAck,
)

__all__ = [
    "Conduit",
    "ConduitNetwork",
    "Connection",
    "install_timeline_probes",
]


def install_timeline_probes(timeline, conduits: List["Conduit"],
                            counters) -> None:
    """Register the conduit layer's time-series probes.

    Called by ``Job`` when a telemetry timeline is enabled.  Every
    callable is a pure read of live conduit state — the determinism
    contract in :mod:`repro.obs.timeline` depends on that.

    ``conduit.peak_connections`` samples the running high-water mark
    (not the instantaneous sum), so the timeline's recorded peak equals
    the scalar peak the experiments report even when a transient
    maximum falls between two sampling ticks.
    """
    def live_connections() -> int:
        return sum(len(c._conns) for c in conduits)

    def max_pe_connections() -> int:
        return max((len(c._conns) for c in conduits), default=0)

    def peak_connections() -> int:
        return max((c.peak_connections for c in conduits), default=0)

    def draining() -> int:
        return sum(len(getattr(c, "_draining", ())) for c in conduits)

    def outstanding_wrs() -> int:
        total = 0
        for c in conduits:
            for conn in c._conns.values():
                total += len(conn.qp._pending)
        return total

    timeline.add_probe("conduit.connections", live_connections)
    timeline.add_probe("conduit.connections_max_pe", max_pe_connections)
    timeline.add_probe("conduit.peak_connections", peak_connections)
    timeline.add_probe("conduit.draining", draining)
    timeline.add_probe("conduit.outstanding_wrs", outstanding_wrs)
    # Cumulative counts sampled over time (rates fall out in the diff
    # tool); Counters.__getitem__ reads without inserting, so these are
    # side-effect-free too.
    timeline.add_probe("conduit.evictions", lambda: counters["conduit.evictions"],
                       kind="counter")
    timeline.add_probe("conduit.reconnects",
                       lambda: counters["conduit.reconnects"], kind="counter")
    timeline.add_probe(
        "conduit.ud_retransmits",
        lambda: (counters["conduit.connect_retries"]
                 + counters["conduit.disconnect_retries"]),
        kind="counter",
    )


class ConduitNetwork:
    """Registry of every PE's conduit in one job (for intra-node paths
    and lazy QP materialisation)."""

    def __init__(self) -> None:
        self._conduits: Dict[int, "Conduit"] = {}
        #: Job-wide memo for bootstrap data that is identical on every
        #: PE (e.g. the parsed UD directory) — avoids O(N^2) Python
        #: work at scale.  Timing is still charged per PE.
        self.shared_cache: Dict[str, Any] = {}
        #: Optional protocol tracer shared by every conduit (installed
        #: by ``Job(trace=True)``); used by the golden-trace
        #: determinism tests.
        self.tracer: Optional[Tracer] = None
        #: Flight recorder (repro.obs.Observability) shared by every
        #: conduit; installed by ``Job(observe=True)``, else None.
        self.obs = None
        #: Invariant sanitizer shared by every conduit; installed by
        #: ``Job(check=...)``, else None.
        self.check = None

    def register(self, conduit: "Conduit") -> None:
        self._conduits[conduit.rank] = conduit

    def peer(self, rank: int) -> "Conduit":
        return self._conduits[rank]

    def __len__(self) -> int:
        return len(self._conduits)


@dataclass
class Connection:
    """An established RC connection to one remote peer."""

    peer: int
    qp: RCQueuePair
    send_cq: CompletionQueue
    lock: Semaphore
    #: Lifecycle bookkeeping — only maintained when an eviction policy
    #: is installed (:class:`repro.gasnet.lifecycle.LifecyclePolicy`);
    #: stays at the defaults otherwise.
    last_used_us: float = 0.0
    credits: int = 0


class Conduit:
    """Abstract base conduit (one per PE)."""

    #: Subclass tag used in reports ("static" / "on-demand").
    mode = "abstract"

    def __init__(
        self,
        sim: Simulator,
        network: ConduitNetwork,
        ctx: VerbsContext,
        cluster: Cluster,
        pmi: PMIClient,
        rank: int,
    ) -> None:
        self.sim = sim
        self.network = network
        self.ctx = ctx
        self.cluster = cluster
        self.cost = cluster.cost
        self.pmi = pmi
        self.rank = rank
        self.counters = ctx.counters
        self.tracer = network.tracer
        self.obs = network.obs
        self.check = network.check

        self._handlers: Dict[str, Callable] = {}
        self._conns: Dict[int, Connection] = {}
        self._recv_cq: Optional[CompletionQueue] = None
        self._ud_send_cq: Optional[CompletionQueue] = None
        self.ud_qp: Optional[UDQueuePair] = None

        #: rank -> EndpointAddress of every peer's UD QP, or None until
        #: resolved (possibly from a non-blocking PMI handle).
        self._ud_directory: Optional[Dict[int, EndpointAddress]] = None
        self._dir_handle: Optional[PMIHandle] = None
        self._dir_parser: Optional[Callable[[Any], EndpointAddress]] = None

        #: Opaque blob piggybacked on connect request/reply.
        self._exchange_payload: bytes = b""
        #: Callback(peer, payload_bytes) when a peer's blob arrives.
        self._payload_cb: Optional[Callable[[int, bytes], None]] = None

        #: Server-side readiness (Section IV-E: replies are held until
        #: the PE has registered its own segments).
        self._ready = False
        self._held_requests: List[ConnectRequest] = []
        #: Set once teardown begins; late handshake traffic must be
        #: dropped, not served (it would leak a half-open QP).
        self._closed = False

        #: Distinct peers this PE initiated communication with over any
        #: path (fabric or intra-node) — what Table I counts.
        self.touched_peers: set = set()

        #: Eviction policy (:class:`~repro.gasnet.lifecycle.
        #: LifecyclePolicy`) or None.  Installed only on the on-demand
        #: conduit; every lifecycle code path hides behind this one
        #: pointer check, like obs/faults/check.
        self.lifecycle = None
        #: High-water mark of simultaneously established connections
        #: (what a bounded-footprint claim is measured against).
        self.peak_connections = 0

        #: Non-blocking-implicit RMA tracking (shmem_*_nbi + quiet).
        self._nbi_outstanding = 0
        self._nbi_drained: Optional[SimEvent] = None

        network.register(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def init_endpoint(self) -> Generator:
        """Create the UD endpoint + shared CQ and start the progress
        engine.  Must run before anything else."""
        self._recv_cq = self.ctx.create_cq("shared-recv")
        self._ud_send_cq = self.ctx.create_cq("ud-send")
        self.ud_qp = yield from self.ctx.create_ud_qp(
            self._ud_send_cq, self._recv_cq
        )
        spawn(self.sim, self._progress_loop(), name=f"progress-{self.rank}")

    @property
    def ud_address(self) -> EndpointAddress:
        if self.ud_qp is None:
            raise ConduitError(f"PE {self.rank}: endpoint not initialised")
        return self.ud_qp.address

    def mark_ready(self) -> None:
        """Segments registered: serve any held connect requests."""
        self._ready = True
        held, self._held_requests = self._held_requests, []
        for req in held:
            spawn(
                self.sim,
                self._serve_request(req),
                name=f"held-req-{self.rank}<-{req.src_rank}",
            )

    def shutdown(self) -> Generator:
        """Tear down all materialised connections (charged per QP)."""
        self._closed = True
        for conn in list(self._conns.values()):
            yield from self.ctx.destroy_qp(conn.qp)
        self._conns.clear()
        if self.ud_qp is not None:
            yield self.cost.qp_destroy_us
            self.ud_qp.destroy()

    # ------------------------------------------------------------------
    # directory / payload plumbing
    # ------------------------------------------------------------------
    def set_ud_directory(self, directory: Dict[int, EndpointAddress]) -> None:
        """Install a fully resolved rank -> UD address map."""
        self._ud_directory = directory

    def set_ud_directory_handle(
        self,
        handle: PMIHandle,
        parser: Optional[Callable[[Any], EndpointAddress]] = None,
    ) -> None:
        """Install a *pending* directory: a PMIX_Iallgather handle whose
        per-rank values ``parser`` turns into endpoint addresses
        (``None`` when the values already are addresses).  The conduit
        waits on it lazily, at first use (Section IV-D)."""
        self._dir_handle = handle
        self._dir_parser = parser

    def resolve_directory(self) -> Generator:
        """Block until the UD directory is available (PMIX_Wait)."""
        if self._ud_directory is None:
            if self._dir_handle is None:
                raise ConduitError(
                    f"PE {self.rank}: no UD directory and no pending handle"
                )
            result = yield self._dir_handle.wait()
            if self._dir_parser is None:
                # Values already are endpoint addresses; every PE shares
                # the collective's result object.
                self._ud_directory = result
            else:
                cached = self.network.shared_cache.get("ud_directory")
                if cached is None:
                    cached = {r: self._dir_parser(v) for r, v in result.items()}
                    self.network.shared_cache["ud_directory"] = cached
                self._ud_directory = cached
        return self._ud_directory

    def set_exchange_payload(self, data: bytes) -> None:
        """Blob to piggyback on connect packets (opaque to the conduit)."""
        self._exchange_payload = bytes(data)

    def on_peer_payload(self, callback: Callable[[int, bytes], None]) -> None:
        self._payload_cb = callback

    def _deliver_payload(self, peer: int, payload: bytes) -> None:
        if self._payload_cb is not None and payload:
            self._payload_cb(peer, payload)

    # ------------------------------------------------------------------
    # connection state
    # ------------------------------------------------------------------
    def is_connected(self, peer: int) -> bool:
        return peer in self._conns

    @property
    def connection_count(self) -> int:
        return len(self._conns)

    def connected_peers(self) -> List[int]:
        return sorted(self._conns)

    def _register_connection(self, peer: int, qp: RCQueuePair,
                             send_cq: CompletionQueue) -> Connection:
        if self.check is not None and peer in self._conns:
            self.check.on_duplicate_connection(self.rank, peer)
        conn = Connection(
            peer=peer, qp=qp, send_cq=send_cq, lock=Semaphore(self.sim, 1)
        )
        self._conns[peer] = conn
        if len(self._conns) > self.peak_connections:
            self.peak_connections = len(self._conns)
        lc = self.lifecycle
        if lc is not None:
            conn.last_used_us = self.sim.now
            conn.credits = lc.credits
        self.counters.add("conduit.connections")
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "connected", peer)
        return conn

    def ensure_connected(self, peer: int) -> Generator:
        """Guarantee an RC connection to ``peer`` exists (may block)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _acquire_conn(self, peer: int) -> Generator:
        """Connect (if needed) and return the connection, lock held.

        Re-validates after the lock acquisition: with a lifecycle policy
        installed the reaper can evict the connection between
        ``ensure_connected`` and the acquire (the drain itself holds the
        lock), so a poster waking up must check it still owns the *live*
        incarnation and transparently reconnect otherwise.  The caller
        must release ``conn.lock``.
        """
        while True:
            yield from self.ensure_connected(peer)
            conn = self._conns[peer]
            yield conn.lock.acquire()
            if self._conns.get(peer) is conn:
                lc = self.lifecycle
                if lc is not None:
                    conn.last_used_us = self.sim.now
                    conn.credits = lc.credits
                return conn
            conn.lock.release()

    # ------------------------------------------------------------------
    # progress engine
    # ------------------------------------------------------------------
    def _progress_loop(self) -> Generator:
        while True:
            wc = yield self._recv_cq.wait()
            msg = wc.data
            tr = self.tracer
            if tr is not None and tr.enabled:
                tr.log(
                    f"pe{self.rank}", "rx",
                    (type(msg).__name__, getattr(msg, "src_rank", None)),
                )
            if isinstance(msg, ConnectRequest):
                yield from self._on_connect_request(msg)
            elif isinstance(msg, ConnectReply):
                yield from self._on_connect_reply(msg)
            elif isinstance(msg, ActiveMessage):
                lc = self.lifecycle
                if lc is not None:
                    conn = self._conns.get(msg.src_rank)
                    if conn is not None:
                        conn.last_used_us = self.sim.now
                        conn.credits = lc.credits
                yield self.cost.am_handler_cpu_us
                yield from self._dispatch_am(msg)
            elif isinstance(msg, Disconnect):
                yield from self._on_disconnect(msg)
            elif isinstance(msg, DisconnectAck):
                yield from self._on_disconnect_ack(msg)
            else:  # pragma: no cover - protocol guard
                raise ConduitError(
                    f"PE {self.rank}: unexpected message {msg!r}"
                )

    def _on_connect_request(self, req: ConnectRequest) -> Generator:
        """Subclasses implement the server side of the handshake."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _on_connect_reply(self, rep: ConnectReply) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def _on_disconnect(self, msg: Disconnect) -> Generator:
        """Only the on-demand conduit retires connections."""
        raise ConduitError(
            f"PE {self.rank}: unexpected Disconnect from {msg.src_rank} "
            f"on a {self.mode} conduit"
        )
        yield  # pragma: no cover

    def _on_disconnect_ack(self, msg: DisconnectAck) -> Generator:
        raise ConduitError(
            f"PE {self.rank}: unexpected DisconnectAck from "
            f"{msg.src_rank} on a {self.mode} conduit"
        )
        yield  # pragma: no cover

    def _serve_request(self, req: ConnectRequest) -> Generator:
        yield from self._on_connect_request(req)

    # ------------------------------------------------------------------
    # active messages
    # ------------------------------------------------------------------
    def register_handler(self, name: str, fn: Callable) -> None:
        """Register AM handler ``fn(src_rank, data)`` (may be a generator).

        Handlers run in the progress process and MUST NOT send AMs or
        block on remote state (no-deadlock rule).
        """
        if name in self._handlers:
            raise ConduitError(f"duplicate AM handler {name!r}")
        self._handlers[name] = fn

    def _dispatch_am(self, msg: ActiveMessage) -> Generator:
        try:
            fn = self._handlers[msg.handler]
        except KeyError:
            raise ConduitError(
                f"PE {self.rank}: no AM handler {msg.handler!r}"
            ) from None
        result = fn(msg.src_rank, msg.data)
        if hasattr(result, "send"):  # generator handler
            yield from result
        else:
            return
        if False:  # pragma: no cover
            yield

    def am_send(self, peer: int, handler: str, data: Any = None,
                data_bytes: int = 0) -> Generator:
        """Send an active message (blocks until delivered/acked)."""
        msg = ActiveMessage(
            src_rank=self.rank, handler=handler, data=data,
            data_bytes=data_bytes,
        )
        self.counters.add("conduit.am_sent")
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "am_send", (peer, handler))
        if peer != self.rank:
            self.touched_peers.add(peer)
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            yield from self._intra_deliver(peer, msg)
            return
        conn = yield from self._acquire_conn(peer)
        try:
            yield from self.ctx.post_send(conn.qp, msg, msg.nbytes)
            yield from self.ctx.poll(conn.send_cq)  # ack
        finally:
            conn.lock.release()

    def _intra_deliver(self, peer: int, msg: ActiveMessage) -> Generator:
        """Shared-memory delivery to a same-node peer's progress engine."""
        yield self.cost.post_wr_us
        delay = self.cost.intra_node_time(msg.nbytes)
        target_cq = self.network.peer(peer)._recv_cq
        wc = WorkCompletion(
            wr_id=0, opcode=Opcode.RECV, byte_len=msg.nbytes, data=msg
        )
        self.sim._schedule_at(self.sim.now + delay, target_cq.push, wc)
        self.counters.add("conduit.intra_am")

    # ------------------------------------------------------------------
    # RMA (blocking; see module docstring)
    # ------------------------------------------------------------------
    def rdma_put(self, peer: int, data: bytes, raddr: int, rkey: int) -> Generator:
        self.counters.add("conduit.puts")
        self.counters.add("conduit.put_bytes", len(data))
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "put", (peer, len(data)))
        if peer != self.rank:
            self.touched_peers.add(peer)
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            yield self.cost.intra_node_time(len(data))
            self.network.peer(peer).ctx.mm.rdma_write(raddr, rkey, data)
            return
        conn = yield from self._acquire_conn(peer)
        try:
            yield from self.ctx.post_rdma_write(conn.qp, data, raddr, rkey)
            yield from self.ctx.poll(conn.send_cq)
        finally:
            conn.lock.release()

    def rdma_get(self, peer: int, nbytes: int, raddr: int, rkey: int) -> Generator:
        self.counters.add("conduit.gets")
        self.counters.add("conduit.get_bytes", nbytes)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "get", (peer, nbytes))
        if peer != self.rank:
            self.touched_peers.add(peer)
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            yield self.cost.intra_node_time(nbytes)
            return self.network.peer(peer).ctx.mm.rdma_read(raddr, rkey, nbytes)
        conn = yield from self._acquire_conn(peer)
        try:
            yield from self.ctx.post_rdma_read(conn.qp, nbytes, raddr, rkey)
            wc = yield from self.ctx.poll(conn.send_cq)
            return wc.data
        finally:
            conn.lock.release()

    def atomic(self, peer: int, op: str, raddr: int, rkey: int,
               compare: int = 0, operand: int = 0) -> Generator:
        """64-bit remote atomic; returns the old value."""
        self.counters.add("conduit.atomics")
        if peer != self.rank:
            self.touched_peers.add(peer)
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            yield self.cost.intra_node_time(8) + self.cost.atomic_extra_us
            return self.network.peer(peer).ctx.mm.atomic(
                raddr, rkey, op, compare, operand
            )
        conn = yield from self._acquire_conn(peer)
        try:
            yield from self.ctx.post_atomic(
                conn.qp, op, raddr, rkey, compare=compare, swap_or_add=operand
            )
            wc = yield from self.ctx.poll(conn.send_cq)
            return wc.data
        finally:
            conn.lock.release()

    # ------------------------------------------------------------------
    # non-blocking-implicit RMA (put_nbi/get_nbi + quiet)
    # ------------------------------------------------------------------
    def rdma_put_nbi(self, peer: int, data: bytes, raddr: int,
                     rkey: int) -> Generator:
        """Initiate a put and return; completion is implicit (quiet)."""
        self.counters.add("conduit.nbi_puts")
        self.counters.add("conduit.put_bytes", len(data))
        if peer != self.rank:
            self.touched_peers.add(peer)
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            # Shared-memory path: initiate now, land after the copy time.
            self._nbi_begin()
            delay = self.cost.intra_node_time(len(data))
            target_mm = self.network.peer(peer).ctx.mm

            def _land(_arg) -> None:
                target_mm.rdma_write(raddr, rkey, data)
                self._nbi_end()

            self.sim._schedule_at(self.sim.now + delay, _land, None)
            yield self.cost.post_wr_us
            return
        yield from self.ensure_connected(peer)
        self._nbi_begin()
        spawn(
            self.sim,
            self._nbi_tracker(peer, "write", bytes(data), 0, raddr, rkey, None),
            name=f"nbi-put-{self.rank}->{peer}",
        )
        yield self.cost.post_wr_us

    def rdma_get_nbi(self, peer: int, nbytes: int, raddr: int, rkey: int,
                     on_data: Callable[[bytes], None]) -> Generator:
        """Initiate a get; ``on_data(bytes)`` runs at completion."""
        self.counters.add("conduit.nbi_gets")
        self.counters.add("conduit.get_bytes", nbytes)
        if peer != self.rank:
            self.touched_peers.add(peer)
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            self._nbi_begin()
            delay = self.cost.intra_node_time(nbytes)
            source_mm = self.network.peer(peer).ctx.mm

            def _land(_arg) -> None:
                on_data(source_mm.rdma_read(raddr, rkey, nbytes))
                self._nbi_end()

            self.sim._schedule_at(self.sim.now + delay, _land, None)
            yield self.cost.post_wr_us
            return
        yield from self.ensure_connected(peer)
        self._nbi_begin()
        spawn(
            self.sim,
            self._nbi_tracker(peer, "read", None, nbytes, raddr, rkey, on_data),
            name=f"nbi-get-{self.rank}<-{peer}",
        )
        yield self.cost.post_wr_us

    def _nbi_tracker(self, peer: int, op: str, data, nbytes: int,
                     raddr: int, rkey: int, on_data) -> Generator:
        """Post under the connection lock, then wait for the completion
        *outside* it so later operations pipeline behind this one.

        WC pairing stays correct because completions on one RC QP are
        FIFO and every poster registers its CQ waiter in post order
        (registration happens before the lock is released).
        """
        conn = yield from self._acquire_conn(peer)
        try:
            if op == "write":
                yield from self.ctx.post_rdma_write(conn.qp, data, raddr, rkey)
            else:
                yield from self.ctx.post_rdma_read(conn.qp, nbytes, raddr, rkey)
            waiter = conn.send_cq.wait()  # synchronous FIFO registration
        finally:
            conn.lock.release()
        try:
            wc = yield waiter
            yield self.cost.poll_cq_us
            if wc.status is not WCStatus.SUCCESS:
                if wc.status is WCStatus.REMOTE_ACCESS_ERROR:
                    raise RemoteAccessError(
                        f"PE {self.rank}: nbi {op} to {peer} failed "
                        f"remotely: {wc.data}"
                    )
                raise VerbsError(
                    f"PE {self.rank}: nbi {op} to {peer} completed with "
                    f"{wc.status.value}"
                )
            if op == "read" and on_data is not None:
                on_data(wc.data)
        finally:
            self._nbi_end()

    def _nbi_begin(self) -> None:
        self._nbi_outstanding += 1

    def _nbi_end(self) -> None:
        self._nbi_outstanding -= 1
        if self._nbi_outstanding == 0 and self._nbi_drained is not None:
            self._nbi_drained.succeed()
            self._nbi_drained = None

    def quiet(self) -> Generator:
        """Block until every outstanding nbi operation is complete."""
        while self._nbi_outstanding > 0:
            if self._nbi_drained is None:
                self._nbi_drained = self.sim.event()
            yield self._nbi_drained

    # ------------------------------------------------------------------
    # UD helpers for the handshake
    # ------------------------------------------------------------------
    def _ud_send(self, dst: EndpointAddress, msg, nbytes: int) -> Generator:
        yield from self.ctx.ud_send(self.ud_qp, dst, msg, nbytes)
        self._ud_send_cq.drain()

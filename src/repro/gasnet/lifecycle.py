"""Connection-lifecycle policy: when established connections retire.

The paper's Fig. 9 / QP-context-cache story is about what happens when
connection count exceeds HCA cache capacity; establishing on demand is
only half the answer at production scale — long-running services with
rotating hot partners also need connections to *go away* once idle, or
steady-state QP footprint grows without bound.

:class:`LifecyclePolicy` is pure data, mirroring
:class:`repro.faults.FaultPlan` and :class:`repro.check.CheckPlan`: a
frozen, hashable description of the eviction strategy that can be
round-tripped through a config dict and attached to a
:class:`~repro.core.config.RuntimeConfig`.  The runtime evaluation (the
reaper process, the Disconnect/DisconnectAck drain handshake) lives in
:class:`repro.gasnet.ondemand_conduit.OnDemandConduit`.

Eviction defaults **off** (``RuntimeConfig.lifecycle is None``): every
existing experiment and the 128-PE golden trace stay byte-identical
unless a policy is explicitly installed.

Victim selection is a pure function (:func:`select_victims`) so the
policies are unit-testable without a simulator and provably
deterministic: candidates are ordered by ``(last_used_us, peer)``, never
by dict/set iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError

__all__ = ["LifecyclePolicy", "select_victims"]

_POLICIES = ("lru", "credit")


@dataclass(frozen=True)
class LifecyclePolicy:
    """Idle-connection reaping strategy for the on-demand conduit.

    Example::

        policy = LifecyclePolicy(max_connections=8,
                                 idle_timeout_us=20_000.0)
        config = RuntimeConfig.proposed(lifecycle=policy)

    * ``"lru"``    — a connection idle for ``idle_timeout_us`` is
      evicted; additionally, whenever the connection count exceeds
      ``max_connections`` the least-recently-used connections are
      evicted down to the cap regardless of age.
    * ``"credit"`` — each connection holds ``credits`` tokens, refilled
      on every use; each reaper scan debits one token from connections
      untouched since the previous scan and evicts those at zero (a
      coarse, constant-space CLOCK approximation).  The
      ``max_connections`` cap applies identically.
    """

    #: Master switch: a disabled policy is wired nowhere (the conduit
    #: keeps ``lifecycle is None``), pinning byte-identity trivially.
    enabled: bool = True
    #: Victim-selection strategy.
    policy: str = "lru"
    #: Evict connections unused for this long (simulated us).
    idle_timeout_us: float = 20_000.0
    #: Reaper scan period (simulated us).
    scan_interval_us: float = 5_000.0
    #: Soft cap on per-PE connection count; ``None`` = idle-only.
    max_connections: Optional[int] = None
    #: Credit policy: scans-without-use before eviction.
    credits: int = 4
    #: Poll period while quiescing outstanding WRs during a drain.
    drain_poll_us: float = 5.0

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigError(
                f"LifecyclePolicy.enabled must be a bool, got "
                f"{self.enabled!r}"
            )
        if self.policy not in _POLICIES:
            raise ConfigError(
                f"LifecyclePolicy.policy must be one of {_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.idle_timeout_us <= 0:
            raise ConfigError("LifecyclePolicy.idle_timeout_us must be > 0")
        if self.scan_interval_us <= 0:
            raise ConfigError("LifecyclePolicy.scan_interval_us must be > 0")
        if self.max_connections is not None and self.max_connections < 1:
            raise ConfigError(
                "LifecyclePolicy.max_connections must be >= 1 or None"
            )
        if self.credits < 1:
            raise ConfigError("LifecyclePolicy.credits must be >= 1")
        if self.drain_poll_us <= 0:
            raise ConfigError("LifecyclePolicy.drain_poll_us must be > 0")

    # -- config round-trip ---------------------------------------------
    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "LifecyclePolicy":
        """Build a policy from a plain config mapping."""
        if not isinstance(spec, dict):
            raise ConfigError(
                f"LifecyclePolicy spec must be a dict, got {spec!r}"
            )
        valid = {f.name for f in fields(cls)}
        unknown = set(spec) - valid
        if unknown:
            raise ConfigError(
                f"unknown LifecyclePolicy keys: {sorted(unknown)}"
            )
        return cls(**spec)

    def as_dict(self) -> Dict[str, Any]:
        """Inverse of :meth:`from_dict` (plain types only)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def select_victims(
    now: float,
    candidates: Iterable[Tuple[int, float, int]],
    policy: LifecyclePolicy,
) -> List[int]:
    """Pick peers to evict this scan, oldest-first, deterministically.

    ``candidates`` yields ``(peer, last_used_us, credits)`` for every
    *evictable* connection (the caller excludes peers already draining).
    Returns peer ranks in eviction order.  Selection depends only on the
    candidate tuples, never on their iteration order.
    """
    ranked = sorted(candidates, key=lambda c: (c[1], c[0]))
    victims: List[int] = []
    if policy.policy == "credit":
        for peer, _last_used, credits in ranked:
            if credits <= 0:
                victims.append(peer)
    else:  # "lru"
        for peer, last_used, _credits in ranked:
            if now - last_used >= policy.idle_timeout_us:
                victims.append(peer)
    if policy.max_connections is not None:
        surviving = len(ranked) - len(victims)
        overflow = surviving - policy.max_connections
        if overflow > 0:
            chosen = set(victims)
            for peer, _last_used, _credits in ranked:
                if overflow <= 0:
                    break
                if peer not in chosen:
                    victims.append(peer)
                    chosen.add(peer)
                    overflow -= 1
    return victims

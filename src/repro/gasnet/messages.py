"""Conduit wire messages (carried as packet payloads).

Plain ``__slots__`` classes, not dataclasses: an :class:`ActiveMessage`
is allocated per AM on the hot path, so these stay ``__dict__``-free.
"""

from __future__ import annotations

from typing import Any

from ..ib import EndpointAddress

__all__ = [
    "ConnectRequest",
    "ConnectReply",
    "Disconnect",
    "DisconnectAck",
    "ActiveMessage",
]

#: Fixed header bytes for the connect handshake messages (rank, qpn,
#: lid, flags — roughly what the mvapich2x conduit sends).
CONNECT_HEADER_BYTES = 24
#: Active-message header (handler id, size, token).
AM_HEADER_BYTES = 16


class ConnectRequest:
    """UD connect request: client -> server (Figure 4).

    ``payload`` is the opaque exchange blob the upper layer (OpenSHMEM)
    asked the conduit to piggyback — the conduit never interprets it.
    """

    __slots__ = ("src_rank", "rc_addr", "payload", "attempt", "span_id")

    def __init__(
        self,
        src_rank: int,
        rc_addr: EndpointAddress,
        payload: bytes = b"",
        attempt: int = 0,
        span_id=None,
    ) -> None:
        self.src_rank = src_rank
        self.rc_addr = rc_addr
        self.payload = payload
        #: Retransmission attempt (for tracing/diagnostics only).
        self.attempt = attempt
        #: Flight-recorder span context (int or None).  Observation
        #: metadata, not wire payload: never part of ``nbytes``.
        self.span_id = span_id

    @property
    def nbytes(self) -> int:
        return CONNECT_HEADER_BYTES + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConnectRequest(src_rank={self.src_rank}, "
            f"rc_addr={self.rc_addr!r}, attempt={self.attempt})"
        )


class ConnectReply:
    """UD connect reply: server -> client, same piggyback rules."""

    __slots__ = ("src_rank", "rc_addr", "payload", "span_id")

    def __init__(
        self,
        src_rank: int,
        rc_addr: EndpointAddress,
        payload: bytes = b"",
        span_id=None,
    ) -> None:
        self.src_rank = src_rank
        self.rc_addr = rc_addr
        self.payload = payload
        #: Flight-recorder span context (int or None); not in nbytes.
        self.span_id = span_id

    @property
    def nbytes(self) -> int:
        return CONNECT_HEADER_BYTES + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConnectReply(src_rank={self.src_rank}, "
            f"rc_addr={self.rc_addr!r})"
        )


class Disconnect:
    """UD disconnect request: initiator -> target (establish in reverse).

    ``gen`` is the initiator's generation number for this connection
    (how many times the pair has connected): a retransmitted Disconnect
    from a *previous* incarnation must not tear down a fresh
    reconnection, so acks echo the generation and stale ones are
    dropped.
    """

    __slots__ = ("src_rank", "gen", "attempt", "span_id")

    def __init__(
        self,
        src_rank: int,
        gen: int,
        attempt: int = 0,
        span_id=None,
    ) -> None:
        self.src_rank = src_rank
        self.gen = gen
        #: Retransmission attempt (for tracing/diagnostics only).
        self.attempt = attempt
        #: Flight-recorder span context (int or None); not in nbytes.
        self.span_id = span_id

    @property
    def nbytes(self) -> int:
        return CONNECT_HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Disconnect(src_rank={self.src_rank}, gen={self.gen}, "
            f"attempt={self.attempt})"
        )


class DisconnectAck:
    """UD disconnect ack: target -> initiator, echoing ``gen``."""

    __slots__ = ("src_rank", "gen", "span_id")

    def __init__(self, src_rank: int, gen: int, span_id=None) -> None:
        self.src_rank = src_rank
        self.gen = gen
        #: Flight-recorder span context (int or None); not in nbytes.
        self.span_id = span_id

    @property
    def nbytes(self) -> int:
        return CONNECT_HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DisconnectAck(src_rank={self.src_rank}, gen={self.gen})"


class ActiveMessage:
    """A GASNet-core-style active message riding an RC connection."""

    __slots__ = ("src_rank", "handler", "data", "data_bytes")

    def __init__(
        self,
        src_rank: int,
        handler: str,
        data: Any = None,
        data_bytes: int = 0,
    ) -> None:
        self.src_rank = src_rank
        self.handler = handler
        self.data = data
        self.data_bytes = data_bytes

    @property
    def nbytes(self) -> int:
        return AM_HEADER_BYTES + self.data_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActiveMessage(src_rank={self.src_rank}, "
            f"handler={self.handler!r}, data_bytes={self.data_bytes})"
        )

"""Conduit wire messages (carried as packet payloads)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..ib import EndpointAddress

__all__ = ["ConnectRequest", "ConnectReply", "ActiveMessage"]

#: Fixed header bytes for the connect handshake messages (rank, qpn,
#: lid, flags — roughly what the mvapich2x conduit sends).
CONNECT_HEADER_BYTES = 24
#: Active-message header (handler id, size, token).
AM_HEADER_BYTES = 16


@dataclass(frozen=True)
class ConnectRequest:
    """UD connect request: client -> server (Figure 4).

    ``payload`` is the opaque exchange blob the upper layer (OpenSHMEM)
    asked the conduit to piggyback — the conduit never interprets it.
    """

    src_rank: int
    rc_addr: EndpointAddress
    payload: bytes = b""
    #: Retransmission attempt (for tracing/diagnostics only).
    attempt: int = 0

    @property
    def nbytes(self) -> int:
        return CONNECT_HEADER_BYTES + len(self.payload)


@dataclass(frozen=True)
class ConnectReply:
    """UD connect reply: server -> client, same piggyback rules."""

    src_rank: int
    rc_addr: EndpointAddress
    payload: bytes = b""

    @property
    def nbytes(self) -> int:
        return CONNECT_HEADER_BYTES + len(self.payload)


@dataclass(frozen=True)
class ActiveMessage:
    """A GASNet-core-style active message riding an RC connection."""

    src_rank: int
    handler: str
    data: Any = None
    data_bytes: int = 0

    @property
    def nbytes(self) -> int:
        return AM_HEADER_BYTES + self.data_bytes

"""Closed-form conduit cost models (macro phase layer).

Two groups, with very different exactness contracts:

* :func:`static_wireup_us` / :func:`static_teardown_us` — the static
  conduit's bulk charges are already closed-form in the exact engine
  (``bulk_charge_rc_qps`` / ``bulk_charge_qp_destroy`` yield one
  aggregate delay), so these mirror them bit for bit.
* :func:`finalize_model` — the on-demand design's finalize (a rank-tree
  barrier whose cross-node edges connect lazily through the Figure-4
  UD handshake, then a QP sweep).  This is a **lossless-UD model**: it
  reproduces the exact engine's event structure assuming no UD drops,
  no duplicates and an idle progress engine, which holds in
  expectation but not per-seed (``ud_loss_probability`` is small yet
  nonzero).  It feeds the modeled ``wall_time_us`` of macro on-demand
  runs and the modeled finalize counters; the equivalence fixtures
  assert neither (see DESIGN.md, "Analytical phase models").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..cluster import Cluster
from ..cluster.params import CostModel
from .messages import AM_HEADER_BYTES, CONNECT_HEADER_BYTES
from .segment import SegmentInfo, encode_segments

__all__ = [
    "static_wireup_us",
    "static_teardown_us",
    "exchange_payload_bytes",
    "finalize_model",
]


def static_wireup_us(cost: CostModel, npes: int) -> float:
    """Simulated time of ``StaticConduit.wireup`` after the directory
    resolves: one bulk RC charge plus the per-peer bookkeeping sweep."""
    per_qp = cost.rc_qp_create_us + (
        cost.qp_modify_init_us + cost.qp_modify_rtr_us + cost.qp_modify_rts_us
    )
    return npes * per_qp + npes * cost.static_wireup_per_peer_us


def static_teardown_us(cost: CostModel, npes: int) -> float:
    """Simulated time of ``StaticConduit.teardown_charge``."""
    return npes * cost.qp_destroy_us


def exchange_payload_bytes(heap_region_size: int) -> int:
    """Size of the piggybacked segment blob every on-demand handshake
    carries (one :class:`~repro.gasnet.segment.SegmentInfo` per PE)."""
    return len(encode_segments([
        SegmentInfo(addr=0, size=heap_region_size, rkey=1)
    ]))


def _rc_rtt_us(cost: CostModel, nbytes: int, hops: int) -> Tuple[float, float]:
    """(sender_block, mailbox_arrival) deltas of one RC active message
    on a warm connection: post, wire, remote handler; the ack ride
    back releases the sender (lossless, idle progress engine)."""
    wire = cost.wire_time(nbytes, hops)
    ack = cost.wire_time(AM_HEADER_BYTES, hops)
    arrival = cost.post_wr_us + wire + cost.am_handler_cpu_us
    block = cost.post_wr_us + wire + ack + cost.poll_cq_us
    return block, arrival


def _intra_am_us(cost: CostModel, nbytes: int) -> Tuple[float, float]:
    """(sender_block, mailbox_arrival) of one same-node active message
    (``Conduit._intra_deliver``: post, shared-memory hop, handler)."""
    arrival = (cost.post_wr_us + cost.intra_node_time(nbytes)
               + cost.am_handler_cpu_us)
    return cost.post_wr_us, arrival


def _connect_us(cost: CostModel, hops: int, payload: int) -> float:
    """Client-observed latency of one Figure-4 handshake (lossless):
    client QP to INIT, UD request, serve (QP to RTR + UD reply),
    client RTR→RTS.  Both directories are assumed resolved."""
    msg = CONNECT_HEADER_BYTES + payload
    ud_flight = cost.post_wr_us + cost.wire_time(msg, hops)
    client_setup = cost.rc_qp_create_us + cost.qp_modify_init_us
    serve = (cost.conn_handshake_cpu_us + cost.rc_qp_create_us
             + cost.qp_modify_init_us + cost.qp_modify_rtr_us)
    client_finish = (cost.conn_handshake_cpu_us + cost.qp_modify_rtr_us
                     + cost.qp_modify_rts_us)
    return client_setup + ud_flight + serve + ud_flight + client_finish


def finalize_model(
    cluster: Cluster,
    enter_times: Sequence[float],
    dir_release: Sequence[float],
    payload_bytes: int,
) -> Tuple[List[float], Dict[str, int]]:
    """Model the on-demand finalize: barrier_all + shutdown sweep.

    ``enter_times[r]`` is when PE ``r`` enters ``finalize`` (its app
    completion); ``dir_release[node]`` is when the PMI allgather
    releases that node's clients (``resolve_directory`` blocks on it at
    the first cross-node send).  Returns per-PE completion times and
    the modeled finalize counter deltas.

    The barrier is the binary rank tree of
    :func:`repro.shmem.collectives.tree_parent_children` (root 0,
    world team): gather up, broadcast down.  Cross-node edges pay one
    lazy connect on first use (both sides of the edge register a
    connection); down-phase traffic reuses it.  The sweep then destroys
    every RC connection plus the UD QP.
    """
    cost = cluster.cost
    npes = cluster.npes
    am = AM_HEADER_BYTES  # barrier AMs carry no payload
    ready = list(enter_times)  # when each PE may send its up message
    nconns = [0] * npes
    counters: Dict[str, int] = {
        "shmem.barriers": npes,
        "conduit.am_sent": 0,
        "conduit.intra_am": 0,
        "conduit.connect_requests": 0,
        "conduit.connections": 0,
    }

    def children_of(rank: int) -> List[int]:
        first = 2 * rank + 1
        return [c for c in (first, first + 1) if c < npes]

    # Up phase: reverse rank order visits children before parents.
    for rank in range(npes - 1, 0, -1):
        parent = (rank - 1) // 2
        counters["conduit.am_sent"] += 1
        if cluster.same_node(rank, parent):
            counters["conduit.intra_am"] += 1
            _block, arrival = _intra_am_us(cost, am)
            arrive = ready[rank] + arrival
        else:
            hops = cluster.hops(rank, parent)
            # Lazy connect: the client waits for its node's directory,
            # the server side resolves its own before replying.
            t = ready[rank]
            t = max(t, dir_release[cluster.node_of(rank)],
                    dir_release[cluster.node_of(parent)])
            t += _connect_us(cost, hops, payload_bytes)
            counters["conduit.connect_requests"] += 1
            counters["conduit.connections"] += 2
            nconns[rank] += 1
            nconns[parent] += 1
            _block, arrival = _rc_rtt_us(cost, am, hops)
            arrive = t + arrival
        if arrive > ready[parent]:
            ready[parent] = arrive

    # Down phase: each PE forwards to its children sequentially (the
    # sender blocks per send: post + ack for RC, post for intra).
    exit_at = [0.0] * npes
    exit_at[0] = ready[0]
    for rank in range(npes):
        t = exit_at[rank]
        for child in children_of(rank):
            counters["conduit.am_sent"] += 1
            if cluster.same_node(rank, child):
                counters["conduit.intra_am"] += 1
                block, arrival = _intra_am_us(cost, am)
            else:
                hops = cluster.hops(rank, child)
                block, arrival = _rc_rtt_us(cost, am, hops)
            exit_at[child] = t + arrival
            t += block
        exit_at[rank] = t

    # Shutdown sweep: every registered RC connection plus the UD QP.
    done = [
        exit_at[r] + (nconns[r] + 1) * cost.qp_destroy_us
        for r in range(npes)
    ]
    return done, counters

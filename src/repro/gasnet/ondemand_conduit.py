"""The on-demand conduit: the paper's contribution (Sections IV-A/C/E).

Connection establishment follows Figure 4 exactly:

1. the **client** creates an RC QP (RESET->INIT) and sends a UD
   ``ConnectRequest`` carrying its ``<lid, qpn>`` *plus the upper
   layer's exchange payload* (OpenSHMEM's serialized segment keys);
2. the **server**'s connection-manager (progress process) creates its
   own RC QP, moves it INIT->RTR toward the client, replies with a UD
   ``ConnectReply`` (again piggybacking its payload), then RTR->RTS;
3. the client, on reply, moves INIT->RTR->RTS and flushes queued work.

Robustness (Section IV-A, IV-E):

* UD is lossy: the client retransmits after ``ud_retry_timeout_us``,
  up to ``ud_max_retries`` times; duplicate requests and replies are
  idempotent.
* **Collision** (both sides initiate simultaneously): the lower rank
  stays client; the higher rank abandons its client attempt and serves
  the incoming request reusing the QP it already created.
* **Server not ready** (segments not yet registered because there is
  no global barrier anymore): requests are *held* and served on
  ``mark_ready()``; the client's retransmission covers a lost wake-up.

Connection retirement mirrors establishment in reverse (installed via
:meth:`OnDemandConduit.install_lifecycle`; off by default):

1. a reaper process periodically selects idle/over-cap victims
   (:func:`repro.gasnet.lifecycle.select_victims`);
2. the **initiator** removes the connection from its table (new senders
   transparently wait out the drain, then reconnect through the normal
   ``_connect`` path), quiesces its outstanding WRs under the
   connection lock, and sends a UD ``Disconnect`` with the same
   retry/idempotence discipline as ``ConnectRequest``;
3. the **target** drains its own half the same way, destroys its RC QP
   (releasing the HCA cache slot), and replies ``DisconnectAck`` — the
   ack is cached and retransmittable for the initiator's whole retry
   window, exactly like the ``ConnectReply`` cache;
4. the initiator destroys its QP on ack (or unilaterally after the
   retry budget — the peer's half is swept at finalize, and late
   traffic to the dead QP is NAKed, never written through).

**Disconnect collisions** resolve by the establish rule: the lower rank
stays initiator; the higher rank abandons its own handshake and acks
the peer's *after* finishing its local drain (acking early would let
the peer destroy a QP our in-flight WRs still need).  A
``ConnectRequest`` racing a drain is parked until the drain completes,
then served — reconnect-after-evict, never connect-during-drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..errors import ConduitError, ResourceExhaustedError
from ..ib import CompletionQueue, RCQueuePair
from ..sim import SimEvent, spawn
from .conduit import Conduit, Connection
from .lifecycle import LifecyclePolicy, select_victims
from .messages import ConnectReply, ConnectRequest, Disconnect, DisconnectAck

__all__ = ["OnDemandConduit"]


@dataclass
class _PendingConnect:
    """Client-side state for an in-flight handshake.

    Registered *before* the client's QP exists (QP creation itself
    takes simulated time) so that concurrent senders to the same peer
    always share one handshake.
    """

    event: SimEvent
    qp: Optional[RCQueuePair] = None
    send_cq: Optional[CompletionQueue] = None
    abandoned: bool = False  # collision: peer serves us instead
    #: Flight-recorder span covering this client attempt (or None).
    span: object = None


@dataclass
class _PendingDisconnect:
    """State of one in-flight drain handshake (either role).

    ``done`` fires only at the epilogue, *after* the entry has left
    ``_draining`` — waiters (new senders, shutdown) re-check the tables
    on wake.  ``ack`` (initiator role only) fires when the peer's
    ``DisconnectAck`` arrives or a lost collision abandons the
    handshake; it never outlives the entry's removal ordering rules.
    """

    done: SimEvent
    gen: int
    role: str  # "initiator" | "target"
    ack: Optional[SimEvent] = None
    abandoned: bool = False  # collision: we lost; peer's drain wins
    #: The peer's generation from its Disconnect (collision-loser ack).
    peer_gen: Optional[int] = None
    #: Flight-recorder span covering this drain (or None).
    span: object = None


class OnDemandConduit(Conduit):
    """Connections are made lazily, on first communication."""

    mode = "on-demand"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pending: Dict[int, _PendingConnect] = {}
        #: Peers we are currently serving (reply possibly in flight).
        self._serving: Dict[int, ConnectReply] = {}
        #: Serves currently executing in the progress process; teardown
        #: must drain them or it races a half-built QP.
        self._active_serves = 0
        self._serves_drained: Optional[SimEvent] = None
        #: Peers whose connection is mid-drain (either role).
        self._draining: Dict[int, _PendingDisconnect] = {}
        #: Cached DisconnectAcks, retransmittable like ConnectReplies.
        self._disc_acks: Dict[int, DisconnectAck] = {}
        #: Per-peer establishment generation (1 on first connect);
        #: stale Disconnect retransmissions carry an older generation
        #: and must not tear down a fresh reconnection.
        self._conn_gens: Dict[int, int] = {}
        #: When each drain completed, for the reconnect-latency metric.
        self._evicted_at: Dict[int, float] = {}
        self._reaper_started = False
        #: Set while the reaper is parked with nothing to watch;
        #: _register_connection fires it so the loop resumes scanning.
        self._reaper_wake: Optional[SimEvent] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> Generator:
        """Drain or abort in-flight handshakes, then tear down.

        Finalize can race the progress engine: a serve spawned for a
        late ConnectRequest builds its RC QP over several simulated
        steps, and sweeping connections mid-build leaves a half-open QP
        nothing ever destroys.  Close first (the progress engine drops
        new requests from here on), abort held requests, wait out any
        client attempts and in-flight serves, then run the QP sweep.
        """
        self._closed = True
        if self._reaper_wake is not None and not self._reaper_wake.triggered:
            # A parked reaper re-checks _closed on wake and exits.
            self._reaper_wake.succeed()
        held, self._held_requests = self._held_requests, []
        if held:
            # Never served now; the senders' retry budgets expired long
            # before finalize's barrier let us get here.
            self.counters.add("conduit.held_dropped_at_close", len(held))
        for pending in list(self._pending.values()):
            if not pending.event.triggered:
                yield pending.event
        # Serves and drain handshakes can re-enter (a parked request
        # adopted mid-drain spawns a fresh serve after this loop last
        # looked), so re-arm with a fresh event on every pass instead
        # of trusting one lazily-created drained event to cover them
        # all.  Every waited event fires only after its table entry is
        # removed, so each pass either blocks or terminates the loop.
        while self._active_serves > 0 or self._draining:
            for pending in list(self._draining.values()):
                if not pending.done.triggered:
                    yield pending.done
            if self._active_serves > 0:
                self._serves_drained = self.sim.event()
                yield self._serves_drained
        self._serves_drained = None
        # The reply/ack caches die with the conduit; their TTL timers
        # are _closed-guarded and must find nothing left to mutate.
        self._serving.clear()
        self._disc_acks.clear()
        yield from super().shutdown()

    def install_lifecycle(self, policy: LifecyclePolicy) -> None:
        """Arm idle-connection reaping (connections never retire
        otherwise).  A disabled policy is not installed at all, so
        every lifecycle code path stays behind ``lifecycle is None``."""
        if not policy.enabled:
            return
        self.lifecycle = policy
        if self._ready and not self._reaper_started:
            self._spawn_reaper()

    def mark_ready(self) -> None:
        super().mark_ready()
        if self.lifecycle is not None and not self._reaper_started:
            self._spawn_reaper()

    def _spawn_reaper(self) -> None:
        self._reaper_started = True
        spawn(self.sim, self._reaper_loop(), name=f"reaper-{self.rank}")

    def _reaper_loop(self) -> Generator:
        """Periodically evict idle / over-cap connections.

        Exits on ``_closed`` so a finished job drains instead of
        ticking forever; victim order is pinned by
        :func:`~repro.gasnet.lifecycle.select_victims`, never by table
        iteration order.
        """
        lc = self.lifecycle
        last_scan = self.sim.now
        while not self._closed:
            if not self._conns and not self._draining:
                # Nothing to watch: park until the next establishment
                # registers.  An idle reaper must not keep ticking —
                # it would hold the event queue open forever after the
                # job's real work has drained.
                self._reaper_wake = self.sim.event()
                yield self._reaper_wake
                self._reaper_wake = None
                if self._closed:
                    return
                last_scan = self.sim.now
            yield self.sim.timeout(lc.scan_interval_us)
            if self._closed:
                return
            if lc.policy == "credit":
                for conn in self._conns.values():
                    if conn.last_used_us <= last_scan and conn.credits > 0:
                        conn.credits -= 1
            last_scan = self.sim.now
            candidates = [
                (peer, conn.last_used_us, conn.credits)
                for peer, conn in self._conns.items()
                if peer not in self._draining
            ]
            for peer in select_victims(self.sim.now, candidates, lc):
                if self._closed:
                    return
                yield from self._disconnect(peer, reason=lc.policy)

    # ------------------------------------------------------------------
    # disconnect: initiator side
    # ------------------------------------------------------------------
    def _disconnect(self, peer: int, reason: str = "idle") -> Generator:
        """Retire the connection to ``peer`` (drain handshake,
        establish in reverse)."""
        if self._closed or peer in self._draining or peer not in self._conns:
            return
        conn = self._conns.pop(peer)
        # The cached ConnectReply (duplicate-request idempotence) names
        # this incarnation's QP; once the drain starts, a request from
        # the peer is a *fresh* establish and must be served anew.
        self._serving.pop(peer, None)
        pending = _PendingDisconnect(
            done=self.sim.event(), ack=self.sim.event(),
            gen=self._conn_gens.get(peer, 0), role="initiator",
        )
        self._draining[peer] = pending
        self.counters.add("conduit.disconnect_requests")
        obs = self.obs
        if obs is not None:
            pending.span = obs.spans.start(
                "conduit.disconnect", f"pe{self.rank}", peer=peer,
                reason=reason, gen=pending.gen,
            )
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "disconnect", peer)
        try:
            # Quiesce: the connection is out of the table, so new
            # posters re-route through ensure_connected and wait out
            # the drain; the lock excludes the poster that is already
            # in, and outstanding WRs complete while the peer's QP is
            # still alive (it destroys only after draining its half).
            yield conn.lock.acquire()
            try:
                yield from self._quiesce(conn)
                acked = yield from self._disconnect_handshake(peer, pending)
                if pending.abandoned:
                    # Lost collision: the peer's handshake retires the
                    # pair; ack as soon as our half is quiesced.  The
                    # ack must not wait for the local destroy —
                    # qp_destroy_us exceeds the UD retry timeout, so
                    # acking late makes the winner retransmit (and,
                    # on a tight budget, time out) on every collision.
                    yield from self._send_disc_ack(
                        peer, pending.peer_gen, span_parent=pending.span
                    )
                yield from self._destroy_drained(peer, conn)
            finally:
                conn.lock.release()
            if pending.abandoned:
                outcome = "collision"
            elif acked:
                outcome = "evicted"
            else:
                self.counters.add("conduit.disconnect_timeouts")
                outcome = "timeout"
            self.counters.add("conduit.evictions")
            if obs is not None:
                # Labelled registry series (policy = whichever policy
                # evicted, "idle"/"manual" for non-reaper retirements)
                # so lru-vs-credit comparisons fall out of telemetry
                # alone, next to conduit.reconnect_latency_us.
                obs.metrics.counter("conduit.evictions",
                                    policy=reason).inc()
                if pending.span is not None:
                    obs.spans.finish(pending.span, outcome=outcome)
        finally:
            self._evicted_at[peer] = self.sim.now
            self._finish_draining(peer, pending)

    def _quiesce(self, conn: Connection) -> Generator:
        lc = self.lifecycle
        drain_poll = lc.drain_poll_us if lc is not None else 5.0
        while conn.qp._pending:
            yield self.sim.timeout(drain_poll)

    def _disconnect_handshake(
        self, peer: int, pending: "_PendingDisconnect"
    ) -> Generator:
        """Send Disconnect with the ConnectRequest retry discipline;
        returns True when the peer acked."""
        directory = yield from self.resolve_directory()
        dst_ud = directory[peer]
        obs = self.obs
        span_id = pending.span.span_id if pending.span is not None else None
        sends = 0
        for attempt in range(self.cost.ud_max_retries + 1):
            if pending.ack.triggered:
                break
            if self._closed:
                # Finalize has begun: peers drop handshake traffic from
                # here on; fall through to the unilateral destroy.
                break
            msg = Disconnect(
                src_rank=self.rank, gen=pending.gen, attempt=attempt,
                span_id=span_id,
            )
            if attempt < self.cost.ud_max_retries:
                if obs is not None:
                    obs.spans.event(
                        "conduit.ud_disconnect", f"pe{self.rank}",
                        parent=pending.span, peer=peer, attempt=attempt,
                    )
                yield from self._ud_send(dst_ud, msg, msg.nbytes)
                sends += 1
                if sends > 1:
                    self.counters.add("conduit.disconnect_retries")
            # else: final grace wait for an in-flight ack.
            timeout = self.sim.timeout(self.cost.ud_retry_timeout_us)
            which, _value = yield self.sim.any_of([pending.ack, timeout])
            if which is pending.ack:
                break
        return pending.ack.triggered and not pending.abandoned

    def _destroy_drained(self, peer: int, conn: Connection) -> Generator:
        if self.check is not None:
            self.check.on_evict(self.rank, peer, len(conn.qp._pending))
        yield from self.ctx.destroy_qp(conn.qp)

    def _finish_draining(
        self, peer: int, pending: "_PendingDisconnect"
    ) -> None:
        """Epilogue for both roles: remove the entry, then wake waiters
        (strictly in that order — see shutdown's drain loop)."""
        if self._draining.get(peer) is pending:
            del self._draining[peer]
        if not pending.done.triggered:
            pending.done.succeed()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def ensure_connected(self, peer: int) -> Generator:
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            return
        while True:
            draining = self._draining.get(peer)
            if draining is not None:
                # The previous incarnation is mid-drain: wait it out,
                # then reconnect below (transparent reconnect-after-
                # evict through the normal _connect path).
                yield draining.done
                continue
            if peer in self._conns:
                return
            pending = self._pending.get(peer)
            if pending is not None:
                # Someone on this PE is already connecting: piggyback.
                # Re-check on wake: the attempt may have failed (its
                # event fires then too) — mount our own attempt rather
                # than return unconnected.
                yield pending.event
                continue
            yield from self._connect(peer)
            # Re-validate rather than return: between the connect
            # event firing and this process resuming, the progress
            # loop can have accepted a Disconnect for the *fresh*
            # connection (the peer's reaper raced our establish) and
            # moved it into _draining already.
            continue

    def _connect(self, peer: int) -> Generator:
        ev = self.sim.event()
        pending = _PendingConnect(event=ev)
        self._pending[peer] = pending
        obs = self.obs
        if obs is not None:
            # Root span of this establishment attempt; the server's
            # serve span links back to it via the request's span_id.
            pending.span = obs.spans.start(
                "conduit.connect", f"pe{self.rank}", peer=peer
            )
        if peer in self._serving:
            # Our own progress engine is already serving this peer's
            # request: sending our own request too would cross the
            # handshakes and pair mismatched QPs.  The serve's epilogue
            # wakes our pending event.
            yield ev
            self._finish_connect_span(pending, "served")
            return
        directory = yield from self.resolve_directory()
        dst_ud = directory[peer]
        send_cq = self.ctx.create_cq(f"rc-send-{peer}")
        qp = yield from self._create_rc_qp_backoff(send_cq, peer)
        if pending.span is not None:
            qp.observe(obs.spans, pending.span)
        yield from self.ctx.modify_init(qp)
        if pending.abandoned or ev.triggered or peer in self._conns:
            # While we were creating the QP, our own progress process
            # served (or is serving) the peer's request — the
            # established connection does not use this QP.
            qp.destroy()
            if not ev.triggered:
                if pending.abandoned:
                    # Serve in flight: it wakes this event when done.
                    yield ev
                else:
                    self._finish_superseded(peer, pending)
            if self._pending.get(peer) is pending:
                del self._pending[peer]
            self._finish_connect_span(pending, "superseded")
            return
        pending.qp = qp
        pending.send_cq = send_cq
        self.counters.add("conduit.connect_requests")
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "connect_req", peer)

        req_payload = self._exchange_payload
        req_span_id = (
            pending.span.span_id if pending.span is not None else None
        )
        if self.check is not None:
            self.check.on_connect_request_sent(self.rank, peer)
        sends = 0
        for attempt in range(self.cost.ud_max_retries + 1):
            req = ConnectRequest(
                src_rank=self.rank, rc_addr=qp.address,
                payload=req_payload, attempt=attempt,
                span_id=req_span_id,
            )
            if attempt < self.cost.ud_max_retries:
                if obs is not None:
                    obs.spans.event(
                        "conduit.ud_request", f"pe{self.rank}",
                        parent=pending.span, peer=peer, attempt=attempt,
                    )
                yield from self._ud_send(dst_ud, req, req.nbytes)
                sends += 1
                if sends > 1:
                    # Count actual retransmissions only — neither the
                    # first send nor the final grace pass is a retry.
                    self.counters.add("conduit.connect_retries")
                    if obs is not None:
                        obs.metrics.counter(
                            "conduit.connect_retransmits").inc()
            # else: final grace wait for an in-flight reply.
            timeout = self.sim.timeout(self.cost.ud_retry_timeout_us)
            which, _value = yield self.sim.any_of([ev, timeout])
            if which is ev:
                if peer in self._conns and self._conns[peer].qp is not qp:
                    qp.destroy()  # superseded by a served collision
                # If the reply path connected us it already closed the
                # span "connected"; otherwise a serve won — close it.
                self._finish_connect_span(pending, "served")
                return
            if peer in self._conns:
                # Connected through the serve path without our event
                # (we were not yet in _pending when it looked): adopt.
                qp.destroy()
                self._finish_superseded(peer, pending)
                self._finish_connect_span(pending, "superseded")
                return
        self._finish_connect_span(pending, "failed")
        # Abort cleanly: a failed attempt must not leave a half-open QP
        # behind, nor a forever-untriggered pending event for shutdown
        # (or a piggybacked sender) to wait on.  Remove the entry
        # *before* waking waiters so they re-check a consistent table.
        qp.destroy()
        if self._pending.get(peer) is pending:
            del self._pending[peer]
        if not pending.event.triggered:
            pending.event.succeed()
        raise ConduitError(
            f"PE {self.rank}: connect to {peer} failed after {sends} sends "
            f"({sends - 1} retransmissions)"
        )

    def _finish_connect_span(self, pending: "_PendingConnect",
                             outcome: str) -> None:
        """Close the client span if the reply path has not already."""
        span = pending.span
        if span is not None and span.end_us is None:
            self.obs.spans.finish(span, outcome=outcome)

    def _create_rc_qp_backoff(self, send_cq: CompletionQueue, peer: int):
        """Create an RC QP, riding out transient ENOMEM failures.

        QP-context memory can be (transiently) exhausted under load or
        a fault plan; the conduit retries with bounded exponential
        backoff.  The jitter is a pure function of (rank, peer,
        attempt) — deterministic for the replay tests, yet decorrelated
        across ranks so colliding creators do not retry in lockstep.
        """
        attempt = 0
        while True:
            try:
                qp = yield from self.ctx.create_rc_qp(send_cq, self._recv_cq)
            except ResourceExhaustedError:
                if attempt >= self.cost.qp_create_max_retries:
                    raise ConduitError(
                        f"PE {self.rank}: QP creation toward {peer} still "
                        f"failing after {attempt} backoff retries"
                    ) from None
                self.counters.add("conduit.qp_create_retries")
                yield self._qp_backoff_delay(attempt, peer)
                attempt += 1
            else:
                return qp

    def _qp_backoff_delay(self, attempt: int, peer: int) -> float:
        base = min(
            self.cost.qp_create_backoff_base_us * (1 << attempt),
            self.cost.qp_create_backoff_cap_us,
        )
        # Golden-ratio style hash -> jitter fraction in [0, 1).
        h = (
            (self.rank * 0x9E3779B1)
            ^ (peer * 0x85EBCA77)
            ^ (attempt * 0xC2B2AE35)
        ) & 0xFFFFFFFF
        return base * (1.0 + h / 2.0**32)

    def _finish_superseded(self, peer: int, pending: "_PendingConnect") -> None:
        """Our client attempt lost to a concurrently served connection."""
        if self._pending.get(peer) is pending:
            del self._pending[peer]
        if not pending.event.triggered:
            pending.event.succeed()

    def _on_connect_reply(self, rep: ConnectReply) -> Generator:
        peer = rep.src_rank
        if self.check is not None:
            self.check.on_connect_reply_rx(self.rank, peer)
        pending = self._pending.get(peer)
        if pending is None or peer in self._conns:
            # Duplicate reply (retransmission already handled) -- drop.
            self.counters.add("conduit.dup_replies")
            return
        obs = self.obs
        if obs is not None:
            obs.spans.event(
                "conduit.reply_rx", f"pe{self.rank}",
                parent=pending.span, src=peer,
            )
        yield self.cost.conn_handshake_cpu_us
        yield from self.ctx.modify_rtr(pending.qp, rep.rc_addr)
        yield from self.ctx.modify_rts(pending.qp)
        self._register_connection(peer, pending.qp, pending.send_cq)
        self._deliver_payload(peer, rep.payload)
        del self._pending[peer]
        if obs is not None:
            span = pending.span
            if span is not None:
                obs.metrics.histogram("conduit.handshake_rtt_us").observe(
                    self.sim.now - span.start_us
                )
                if span.end_us is None:
                    obs.spans.finish(span, outcome="connected")
        pending.event.succeed()

    # ------------------------------------------------------------------
    # server side (runs in the progress process)
    # ------------------------------------------------------------------
    def _on_connect_request(self, req: ConnectRequest) -> Generator:
        peer = req.src_rank
        if self._closed:
            # Teardown has begun: serving now would build an RC QP that
            # nothing will ever tear down (the shutdown pass is already
            # past).  A delayed/duplicate request landing this late is
            # legal UD behaviour — drop it; the sender's retry budget
            # has long expired.
            self.counters.add("conduit.dropped_after_close")
            return
        if peer in self._draining:
            # Reconnect racing our drain of the previous incarnation:
            # the drain wins (serving now would pair a fresh QP with a
            # half-dead one).  Park the request and re-enter once the
            # drain completes — every idempotence rule reapplies.
            # Lands in MetricsRegistry as-is on observed runs (the
            # CountersBridge façade), keyed conduit.requests_during_drain.
            self.counters.add("conduit.requests_during_drain")
            spawn(
                self.sim,
                self._serve_after_drain(req),
                name=f"parked-req-{self.rank}<-{peer}",
            )
            return
        if peer in self._conns:
            # Lost reply: retransmit idempotently.
            rep = self._serving.get(peer)
            if rep is not None:
                directory = yield from self.resolve_directory()
                yield from self._ud_send(directory[peer], rep, rep.nbytes)
                self.counters.add("conduit.dup_requests")
            return
        if peer in self._serving:
            # Reply in flight; client will retransmit if it was lost.
            self.counters.add("conduit.dup_requests")
            return
        pending = self._pending.get(peer)
        if pending is not None and self.rank < peer:
            # Collision, we are the winner-client: ignore; peer serves us.
            self.counters.add("conduit.collisions_ignored")
            return
        if not self._ready:
            # Hold until our segments are registered (Section IV-E).
            self._held_requests.append(req)
            self.counters.add("conduit.requests_held")
            if self.obs is not None:
                self.obs.spans.event(
                    "conduit.request_held", f"pe{self.rank}",
                    parent=req.span_id, src=peer,
                )
            return
        yield from self._serve(req, pending)

    def _serve_after_drain(self, req: ConnectRequest) -> Generator:
        while True:
            pending = self._draining.get(req.src_rank)
            if pending is None:
                break
            yield pending.done
        if not self._closed:
            yield from self._on_connect_request(req)

    def _serve(
        self, req: ConnectRequest, pending: Optional["_PendingConnect"]
    ) -> Generator:
        """Track the serve so :meth:`shutdown` can drain it."""
        self._active_serves += 1
        try:
            yield from self._do_serve(req, pending)
        finally:
            self._active_serves -= 1
            if self._active_serves == 0 and self._serves_drained is not None:
                self._serves_drained.succeed()
                self._serves_drained = None

    def _do_serve(
        self, req: ConnectRequest, pending: Optional["_PendingConnect"]
    ) -> Generator:
        peer = req.src_rank
        if self._closed and self.check is not None:
            # Unreachable through _on_connect_request (which drops
            # post-close traffic); the sanitizer guards the invariant
            # against regressions on other entry paths.
            self.check.on_serve_after_close(self.rank, peer)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "serve", peer)
        obs = self.obs
        sspan = None
        if obs is not None:
            # Parented by the client's connect span id carried on the
            # request — the causal link across the simulated wire.
            sspan = obs.spans.start(
                "conduit.serve", f"pe{self.rank}",
                parent=req.span_id, peer=peer,
            )
        # Marker: a serve is in progress (duplicate requests must not
        # spawn a second QP; the eventual reply is retransmittable).
        self._serving[peer] = None
        yield self.cost.conn_handshake_cpu_us
        if pending is not None and pending.qp is not None:
            # Collision, we lost the tie-break: reuse our INIT QP.
            self.counters.add("conduit.collisions_served")
            qp, send_cq = pending.qp, pending.send_cq
            pending.abandoned = True
        else:
            if pending is not None:
                # Collision caught before our client QP even existed.
                self.counters.add("conduit.collisions_served")
                pending.abandoned = True
            send_cq = self.ctx.create_cq(f"rc-send-{peer}")
            qp = yield from self._create_rc_qp_backoff(send_cq, peer)
            if sspan is not None:
                qp.observe(obs.spans, sspan)
            yield from self.ctx.modify_init(qp)
        if sspan is not None:
            # Collision-reuse rebinding included: from here the QP's
            # transitions belong to the serve, not the dead attempt.
            qp.observe(obs.spans, sspan)
        yield from self.ctx.modify_rtr(qp, req.rc_addr)
        rep = ConnectReply(
            src_rank=self.rank, rc_addr=qp.address,
            payload=self._exchange_payload,
            span_id=sspan.span_id if sspan is not None else None,
        )
        self._serving[peer] = rep
        directory = yield from self.resolve_directory()
        if sspan is not None:
            obs.spans.event(
                "conduit.ud_reply", f"pe{self.rank}",
                parent=sspan, peer=peer,
            )
        yield from self._ud_send(directory[peer], rep, rep.nbytes)
        yield from self.ctx.modify_rts(qp)
        self._register_connection(peer, qp, send_cq)
        self._deliver_payload(peer, req.payload)
        if sspan is not None:
            obs.spans.finish(sspan, outcome="connected")
        # The reply stays cached for idempotent retransmission to
        # duplicate requests, but only as long as the client can still
        # be retransmitting; after its full retry budget has elapsed
        # the entry is garbage (the exchange payload it carries is the
        # bulk of it), so evict on a timer instead of leaking one entry
        # per served peer for the lifetime of the job.
        self.sim._schedule_at(
            self.sim.now + self._serving_ttl_us(), self._evict_serving, peer
        )
        # Wake whichever client attempt exists *now* (it may have been
        # created after we sampled `pending` at serve entry).
        latest = self._pending.get(peer)
        if latest is None:
            latest = pending
        if latest is not None:
            latest.abandoned = True
            if self._pending.get(peer) is latest:
                del self._pending[peer]
            if not latest.event.triggered:
                latest.event.succeed()

    def _serving_ttl_us(self) -> float:
        """How long a served reply must stay retransmittable: the
        client's whole retry schedule (sends plus the grace pass) can
        still produce duplicate requests until it gives up."""
        return (self.cost.ud_max_retries + 1) * self.cost.ud_retry_timeout_us

    def _evict_serving(self, peer: int) -> None:
        if self._closed:
            # The timer can outlive the conduit (shutdown already
            # cleared the cache); a closed conduit must not be mutated,
            # nor its counters bumped, after finalize.
            return
        if self._serving.pop(peer, None) is not None:
            self.counters.add("conduit.serving_evicted")

    # ------------------------------------------------------------------
    # disconnect: target side (runs in the progress process)
    # ------------------------------------------------------------------
    def _on_disconnect(self, msg: Disconnect) -> Generator:
        peer = msg.src_rank
        if self._closed:
            self.counters.add("conduit.dropped_after_close")
            return
        pending = self._draining.get(peer)
        if pending is not None:
            if pending.role == "target":
                # Duplicate while the drain is already in progress.
                self.counters.add("conduit.dup_disconnects")
                ack = self._disc_acks.get(peer)
                if ack is not None and ack.gen == msg.gen:
                    # Quiescence already acked but the ack was lost (or
                    # crossed this retransmission): re-ack from the
                    # cache.  Our local destroy still in progress is no
                    # reason to leave the initiator retrying.
                    yield from self._send_disc_ack(
                        peer, msg.gen, span_parent=msg.span_id
                    )
                return
            # Initiator-initiator collision: same rule as establish —
            # the lower rank stays initiator; the higher rank abandons
            # its own handshake and acks the peer's once its local
            # drain finishes (acking early would let the peer destroy
            # a QP our in-flight WRs still need).
            if self.rank < peer:
                self.counters.add("conduit.disconnect_collisions")
                return
            if pending.abandoned:
                self.counters.add("conduit.dup_disconnects")
                return
            self.counters.add("conduit.disconnect_collisions")
            pending.abandoned = True
            pending.peer_gen = msg.gen
            if not pending.ack.triggered:
                pending.ack.succeed()
            return
        conn = self._conns.get(peer)
        if conn is None or msg.gen < self._conn_gens.get(peer, 0):
            # Already torn down (our ack was lost and the initiator is
            # retransmitting), or a stale retransmission from a
            # previous incarnation that must not touch the fresh
            # reconnection: re-ack idempotently, tear down nothing.
            self.counters.add("conduit.dup_disconnects")
            yield from self._send_disc_ack(peer, msg.gen,
                                           span_parent=msg.span_id)
            return
        self._serve_disconnect(peer, conn, msg)

    def _serve_disconnect(
        self, peer: int, conn: Connection, msg: Disconnect
    ) -> None:
        """Start draining our half (establish's serve in reverse).

        The table mutations happen synchronously — the very next
        message the progress loop dispatches must already see the pair
        as draining — but the drain body itself (quiesce + a
        qp_destroy_us far longer than the UD retry timeout) runs in
        its own process: executed inline it would starve the progress
        engine, delaying every unrelated handshake and the very
        Disconnect retransmissions whose ack the initiator is waiting
        for.  Shutdown still waits it out via ``_draining``.
        """
        del self._conns[peer]
        # Same rule as the initiator side: the cached reply for this
        # incarnation dies with it.
        self._serving.pop(peer, None)
        pending = _PendingDisconnect(
            done=self.sim.event(), gen=msg.gen, role="target"
        )
        self._draining[peer] = pending
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "drain", peer)
        obs = self.obs
        if obs is not None:
            pending.span = obs.spans.start(
                "conduit.drain", f"pe{self.rank}", parent=msg.span_id,
                peer=peer, gen=msg.gen,
            )
        spawn(
            self.sim,
            self._drain_as_target(peer, conn, msg, pending),
            name=f"drain-{self.rank}<-{peer}",
        )

    def _drain_as_target(
        self, peer: int, conn: Connection, msg: Disconnect,
        pending: "_PendingDisconnect",
    ) -> Generator:
        obs = self.obs
        try:
            yield self.cost.conn_handshake_cpu_us
            yield conn.lock.acquire()
            try:
                yield from self._quiesce(conn)
                # Ack on quiescence, not on destroy: once our WRs have
                # drained the initiator is free to destroy its half,
                # and our own qp_destroy_us (which exceeds the UD
                # retry timeout) must not stall the ack into the
                # initiator's retransmission schedule.
                yield from self._send_disc_ack(peer, msg.gen,
                                               span_parent=pending.span)
                yield from self._destroy_drained(peer, conn)
            finally:
                conn.lock.release()
            self.counters.add("conduit.evicted_by_peer")
            if obs is not None and pending.span is not None:
                obs.spans.finish(pending.span, outcome="evicted_by_peer")
        finally:
            self._evicted_at[peer] = self.sim.now
            self._finish_draining(peer, pending)

    def _send_disc_ack(self, peer: int, gen: int,
                       span_parent=None) -> Generator:
        ack = self._disc_acks.get(peer)
        if ack is None or ack.gen != gen:
            span_id = getattr(span_parent, "span_id", span_parent)
            ack = DisconnectAck(src_rank=self.rank, gen=gen,
                                span_id=span_id)
            self._disc_acks[peer] = ack
            # Retransmittable for the initiator's whole retry schedule,
            # then garbage: timer-evicted like the ConnectReply cache
            # (and _closed-guarded the same way).
            self.sim._schedule_at(
                self.sim.now + self._serving_ttl_us(),
                self._evict_disc_ack, peer,
            )
        directory = yield from self.resolve_directory()
        if self.obs is not None:
            self.obs.spans.event(
                "conduit.ud_disc_ack", f"pe{self.rank}",
                parent=span_parent, peer=peer,
            )
        yield from self._ud_send(directory[peer], ack, ack.nbytes)

    def _evict_disc_ack(self, peer: int) -> None:
        if self._closed:
            return
        if self._disc_acks.pop(peer, None) is not None:
            self.counters.add("conduit.disc_ack_evicted")

    def _on_disconnect_ack(self, msg: DisconnectAck) -> Generator:
        peer = msg.src_rank
        if self._closed:
            self.counters.add("conduit.dropped_after_close")
            return
        pending = self._draining.get(peer)
        if (
            pending is None
            or pending.role != "initiator"
            or msg.gen != pending.gen
            or pending.ack.triggered
        ):
            # Stale or duplicate ack (UD duplicates/reorders): drop.
            self.counters.add("conduit.dup_disc_acks")
            return
        if self.obs is not None:
            self.obs.spans.event(
                "conduit.disc_ack_rx", f"pe{self.rank}",
                parent=pending.span, src=peer,
            )
        pending.ack.succeed()
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # reconnect bookkeeping
    # ------------------------------------------------------------------
    def _register_connection(self, peer: int, qp, send_cq):
        conn = super()._register_connection(peer, qp, send_cq)
        if self._reaper_wake is not None and not self._reaper_wake.triggered:
            self._reaper_wake.succeed()
        gen = self._conn_gens.get(peer, 0) + 1
        self._conn_gens[peer] = gen
        if gen > 1:
            # Only reachable after an eviction, i.e. with a lifecycle
            # policy somewhere in the job — never on the golden path.
            self.counters.add("conduit.reconnects")
            evicted_at = self._evicted_at.pop(peer, None)
            obs = self.obs
            if obs is not None and evicted_at is not None:
                obs.metrics.histogram(
                    "conduit.reconnect_latency_us"
                ).observe(self.sim.now - evicted_at)
            if self.check is not None:
                self.check.on_reconnect(self.rank, peer)
        return conn

"""The on-demand conduit: the paper's contribution (Sections IV-A/C/E).

Connection establishment follows Figure 4 exactly:

1. the **client** creates an RC QP (RESET->INIT) and sends a UD
   ``ConnectRequest`` carrying its ``<lid, qpn>`` *plus the upper
   layer's exchange payload* (OpenSHMEM's serialized segment keys);
2. the **server**'s connection-manager (progress process) creates its
   own RC QP, moves it INIT->RTR toward the client, replies with a UD
   ``ConnectReply`` (again piggybacking its payload), then RTR->RTS;
3. the client, on reply, moves INIT->RTR->RTS and flushes queued work.

Robustness (Section IV-A, IV-E):

* UD is lossy: the client retransmits after ``ud_retry_timeout_us``,
  up to ``ud_max_retries`` times; duplicate requests and replies are
  idempotent.
* **Collision** (both sides initiate simultaneously): the lower rank
  stays client; the higher rank abandons its client attempt and serves
  the incoming request reusing the QP it already created.
* **Server not ready** (segments not yet registered because there is
  no global barrier anymore): requests are *held* and served on
  ``mark_ready()``; the client's retransmission covers a lost wake-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..errors import ConduitError, ResourceExhaustedError
from ..ib import CompletionQueue, RCQueuePair
from ..sim import SimEvent
from .conduit import Conduit
from .messages import ConnectReply, ConnectRequest

__all__ = ["OnDemandConduit"]


@dataclass
class _PendingConnect:
    """Client-side state for an in-flight handshake.

    Registered *before* the client's QP exists (QP creation itself
    takes simulated time) so that concurrent senders to the same peer
    always share one handshake.
    """

    event: SimEvent
    qp: Optional[RCQueuePair] = None
    send_cq: Optional[CompletionQueue] = None
    abandoned: bool = False  # collision: peer serves us instead
    #: Flight-recorder span covering this client attempt (or None).
    span: object = None


class OnDemandConduit(Conduit):
    """Connections are made lazily, on first communication."""

    mode = "on-demand"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pending: Dict[int, _PendingConnect] = {}
        #: Peers we are currently serving (reply possibly in flight).
        self._serving: Dict[int, ConnectReply] = {}
        #: Serves currently executing in the progress process; teardown
        #: must drain them or it races a half-built QP.
        self._active_serves = 0
        self._serves_drained: Optional[SimEvent] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> Generator:
        """Drain or abort in-flight handshakes, then tear down.

        Finalize can race the progress engine: a serve spawned for a
        late ConnectRequest builds its RC QP over several simulated
        steps, and sweeping connections mid-build leaves a half-open QP
        nothing ever destroys.  Close first (the progress engine drops
        new requests from here on), abort held requests, wait out any
        client attempts and in-flight serves, then run the QP sweep.
        """
        self._closed = True
        held, self._held_requests = self._held_requests, []
        if held:
            # Never served now; the senders' retry budgets expired long
            # before finalize's barrier let us get here.
            self.counters.add("conduit.held_dropped_at_close", len(held))
        for pending in list(self._pending.values()):
            if not pending.event.triggered:
                yield pending.event
        while self._active_serves > 0:
            if self._serves_drained is None:
                self._serves_drained = self.sim.event()
            yield self._serves_drained
        yield from super().shutdown()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def ensure_connected(self, peer: int) -> Generator:
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            return
        if peer in self._conns:
            return
        pending = self._pending.get(peer)
        if pending is not None:
            # Someone on this PE is already connecting: piggyback.
            yield pending.event
            return
        yield from self._connect(peer)

    def _connect(self, peer: int) -> Generator:
        ev = self.sim.event()
        pending = _PendingConnect(event=ev)
        self._pending[peer] = pending
        obs = self.obs
        if obs is not None:
            # Root span of this establishment attempt; the server's
            # serve span links back to it via the request's span_id.
            pending.span = obs.spans.start(
                "conduit.connect", f"pe{self.rank}", peer=peer
            )
        if peer in self._serving:
            # Our own progress engine is already serving this peer's
            # request: sending our own request too would cross the
            # handshakes and pair mismatched QPs.  The serve's epilogue
            # wakes our pending event.
            yield ev
            self._finish_connect_span(pending, "served")
            return
        directory = yield from self.resolve_directory()
        dst_ud = directory[peer]
        send_cq = self.ctx.create_cq(f"rc-send-{peer}")
        qp = yield from self._create_rc_qp_backoff(send_cq, peer)
        if pending.span is not None:
            qp.observe(obs.spans, pending.span)
        yield from self.ctx.modify_init(qp)
        if pending.abandoned or ev.triggered or peer in self._conns:
            # While we were creating the QP, our own progress process
            # served (or is serving) the peer's request — the
            # established connection does not use this QP.
            qp.destroy()
            if not ev.triggered:
                if pending.abandoned:
                    # Serve in flight: it wakes this event when done.
                    yield ev
                else:
                    self._finish_superseded(peer, pending)
            if self._pending.get(peer) is pending:
                del self._pending[peer]
            self._finish_connect_span(pending, "superseded")
            return
        pending.qp = qp
        pending.send_cq = send_cq
        self.counters.add("conduit.connect_requests")
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "connect_req", peer)

        req_payload = self._exchange_payload
        req_span_id = (
            pending.span.span_id if pending.span is not None else None
        )
        if self.check is not None:
            self.check.on_connect_request_sent(self.rank, peer)
        sends = 0
        for attempt in range(self.cost.ud_max_retries + 1):
            req = ConnectRequest(
                src_rank=self.rank, rc_addr=qp.address,
                payload=req_payload, attempt=attempt,
                span_id=req_span_id,
            )
            if attempt < self.cost.ud_max_retries:
                if obs is not None:
                    obs.spans.event(
                        "conduit.ud_request", f"pe{self.rank}",
                        parent=pending.span, peer=peer, attempt=attempt,
                    )
                yield from self._ud_send(dst_ud, req, req.nbytes)
                sends += 1
                if sends > 1:
                    # Count actual retransmissions only — neither the
                    # first send nor the final grace pass is a retry.
                    self.counters.add("conduit.connect_retries")
                    if obs is not None:
                        obs.metrics.counter(
                            "conduit.connect_retransmits").inc()
            # else: final grace wait for an in-flight reply.
            timeout = self.sim.timeout(self.cost.ud_retry_timeout_us)
            which, _value = yield self.sim.any_of([ev, timeout])
            if which is ev:
                if peer in self._conns and self._conns[peer].qp is not qp:
                    qp.destroy()  # superseded by a served collision
                # If the reply path connected us it already closed the
                # span "connected"; otherwise a serve won — close it.
                self._finish_connect_span(pending, "served")
                return
            if peer in self._conns:
                # Connected through the serve path without our event
                # (we were not yet in _pending when it looked): adopt.
                qp.destroy()
                self._finish_superseded(peer, pending)
                self._finish_connect_span(pending, "superseded")
                return
        self._finish_connect_span(pending, "failed")
        # Abort cleanly: a failed attempt must not leave a half-open QP
        # behind, nor a forever-untriggered pending event for shutdown
        # to wait on.
        qp.destroy()
        if self._pending.get(peer) is pending:
            del self._pending[peer]
        raise ConduitError(
            f"PE {self.rank}: connect to {peer} failed after {sends} sends "
            f"({sends - 1} retransmissions)"
        )

    def _finish_connect_span(self, pending: "_PendingConnect",
                             outcome: str) -> None:
        """Close the client span if the reply path has not already."""
        span = pending.span
        if span is not None and span.end_us is None:
            self.obs.spans.finish(span, outcome=outcome)

    def _create_rc_qp_backoff(self, send_cq: CompletionQueue, peer: int):
        """Create an RC QP, riding out transient ENOMEM failures.

        QP-context memory can be (transiently) exhausted under load or
        a fault plan; the conduit retries with bounded exponential
        backoff.  The jitter is a pure function of (rank, peer,
        attempt) — deterministic for the replay tests, yet decorrelated
        across ranks so colliding creators do not retry in lockstep.
        """
        attempt = 0
        while True:
            try:
                qp = yield from self.ctx.create_rc_qp(send_cq, self._recv_cq)
            except ResourceExhaustedError:
                if attempt >= self.cost.qp_create_max_retries:
                    raise ConduitError(
                        f"PE {self.rank}: QP creation toward {peer} still "
                        f"failing after {attempt} backoff retries"
                    ) from None
                self.counters.add("conduit.qp_create_retries")
                yield self._qp_backoff_delay(attempt, peer)
                attempt += 1
            else:
                return qp

    def _qp_backoff_delay(self, attempt: int, peer: int) -> float:
        base = min(
            self.cost.qp_create_backoff_base_us * (1 << attempt),
            self.cost.qp_create_backoff_cap_us,
        )
        # Golden-ratio style hash -> jitter fraction in [0, 1).
        h = (
            (self.rank * 0x9E3779B1)
            ^ (peer * 0x85EBCA77)
            ^ (attempt * 0xC2B2AE35)
        ) & 0xFFFFFFFF
        return base * (1.0 + h / 2.0**32)

    def _finish_superseded(self, peer: int, pending: "_PendingConnect") -> None:
        """Our client attempt lost to a concurrently served connection."""
        if self._pending.get(peer) is pending:
            del self._pending[peer]
        if not pending.event.triggered:
            pending.event.succeed()

    def _on_connect_reply(self, rep: ConnectReply) -> Generator:
        peer = rep.src_rank
        if self.check is not None:
            self.check.on_connect_reply_rx(self.rank, peer)
        pending = self._pending.get(peer)
        if pending is None or peer in self._conns:
            # Duplicate reply (retransmission already handled) -- drop.
            self.counters.add("conduit.dup_replies")
            return
        obs = self.obs
        if obs is not None:
            obs.spans.event(
                "conduit.reply_rx", f"pe{self.rank}",
                parent=pending.span, src=peer,
            )
        yield self.cost.conn_handshake_cpu_us
        yield from self.ctx.modify_rtr(pending.qp, rep.rc_addr)
        yield from self.ctx.modify_rts(pending.qp)
        self._register_connection(peer, pending.qp, pending.send_cq)
        self._deliver_payload(peer, rep.payload)
        del self._pending[peer]
        if obs is not None:
            span = pending.span
            if span is not None:
                obs.metrics.histogram("conduit.handshake_rtt_us").observe(
                    self.sim.now - span.start_us
                )
                if span.end_us is None:
                    obs.spans.finish(span, outcome="connected")
        pending.event.succeed()

    # ------------------------------------------------------------------
    # server side (runs in the progress process)
    # ------------------------------------------------------------------
    def _on_connect_request(self, req: ConnectRequest) -> Generator:
        peer = req.src_rank
        if self._closed:
            # Teardown has begun: serving now would build an RC QP that
            # nothing will ever tear down (the shutdown pass is already
            # past).  A delayed/duplicate request landing this late is
            # legal UD behaviour — drop it; the sender's retry budget
            # has long expired.
            self.counters.add("conduit.dropped_after_close")
            return
        if peer in self._conns:
            # Lost reply: retransmit idempotently.
            rep = self._serving.get(peer)
            if rep is not None:
                directory = yield from self.resolve_directory()
                yield from self._ud_send(directory[peer], rep, rep.nbytes)
                self.counters.add("conduit.dup_requests")
            return
        if peer in self._serving:
            # Reply in flight; client will retransmit if it was lost.
            self.counters.add("conduit.dup_requests")
            return
        pending = self._pending.get(peer)
        if pending is not None and self.rank < peer:
            # Collision, we are the winner-client: ignore; peer serves us.
            self.counters.add("conduit.collisions_ignored")
            return
        if not self._ready:
            # Hold until our segments are registered (Section IV-E).
            self._held_requests.append(req)
            self.counters.add("conduit.requests_held")
            if self.obs is not None:
                self.obs.spans.event(
                    "conduit.request_held", f"pe{self.rank}",
                    parent=req.span_id, src=peer,
                )
            return
        yield from self._serve(req, pending)

    def _serve(
        self, req: ConnectRequest, pending: Optional["_PendingConnect"]
    ) -> Generator:
        """Track the serve so :meth:`shutdown` can drain it."""
        self._active_serves += 1
        try:
            yield from self._do_serve(req, pending)
        finally:
            self._active_serves -= 1
            if self._active_serves == 0 and self._serves_drained is not None:
                self._serves_drained.succeed()
                self._serves_drained = None

    def _do_serve(
        self, req: ConnectRequest, pending: Optional["_PendingConnect"]
    ) -> Generator:
        peer = req.src_rank
        if self._closed and self.check is not None:
            # Unreachable through _on_connect_request (which drops
            # post-close traffic); the sanitizer guards the invariant
            # against regressions on other entry paths.
            self.check.on_serve_after_close(self.rank, peer)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.log(f"pe{self.rank}", "serve", peer)
        obs = self.obs
        sspan = None
        if obs is not None:
            # Parented by the client's connect span id carried on the
            # request — the causal link across the simulated wire.
            sspan = obs.spans.start(
                "conduit.serve", f"pe{self.rank}",
                parent=req.span_id, peer=peer,
            )
        # Marker: a serve is in progress (duplicate requests must not
        # spawn a second QP; the eventual reply is retransmittable).
        self._serving[peer] = None
        yield self.cost.conn_handshake_cpu_us
        if pending is not None and pending.qp is not None:
            # Collision, we lost the tie-break: reuse our INIT QP.
            self.counters.add("conduit.collisions_served")
            qp, send_cq = pending.qp, pending.send_cq
            pending.abandoned = True
        else:
            if pending is not None:
                # Collision caught before our client QP even existed.
                self.counters.add("conduit.collisions_served")
                pending.abandoned = True
            send_cq = self.ctx.create_cq(f"rc-send-{peer}")
            qp = yield from self._create_rc_qp_backoff(send_cq, peer)
            if sspan is not None:
                qp.observe(obs.spans, sspan)
            yield from self.ctx.modify_init(qp)
        if sspan is not None:
            # Collision-reuse rebinding included: from here the QP's
            # transitions belong to the serve, not the dead attempt.
            qp.observe(obs.spans, sspan)
        yield from self.ctx.modify_rtr(qp, req.rc_addr)
        rep = ConnectReply(
            src_rank=self.rank, rc_addr=qp.address,
            payload=self._exchange_payload,
            span_id=sspan.span_id if sspan is not None else None,
        )
        self._serving[peer] = rep
        directory = yield from self.resolve_directory()
        if sspan is not None:
            obs.spans.event(
                "conduit.ud_reply", f"pe{self.rank}",
                parent=sspan, peer=peer,
            )
        yield from self._ud_send(directory[peer], rep, rep.nbytes)
        yield from self.ctx.modify_rts(qp)
        self._register_connection(peer, qp, send_cq)
        self._deliver_payload(peer, req.payload)
        if sspan is not None:
            obs.spans.finish(sspan, outcome="connected")
        # The reply stays cached for idempotent retransmission to
        # duplicate requests, but only as long as the client can still
        # be retransmitting; after its full retry budget has elapsed
        # the entry is garbage (the exchange payload it carries is the
        # bulk of it), so evict on a timer instead of leaking one entry
        # per served peer for the lifetime of the job.
        self.sim._schedule_at(
            self.sim.now + self._serving_ttl_us(), self._evict_serving, peer
        )
        # Wake whichever client attempt exists *now* (it may have been
        # created after we sampled `pending` at serve entry).
        latest = self._pending.get(peer)
        if latest is None:
            latest = pending
        if latest is not None:
            latest.abandoned = True
            if self._pending.get(peer) is latest:
                del self._pending[peer]
            if not latest.event.triggered:
                latest.event.succeed()

    def _serving_ttl_us(self) -> float:
        """How long a served reply must stay retransmittable: the
        client's whole retry schedule (sends plus the grace pass) can
        still produce duplicate requests until it gives up."""
        return (self.cost.ud_max_retries + 1) * self.cost.ud_retry_timeout_us

    def _evict_serving(self, peer: int) -> None:
        if self._serving.pop(peer, None) is not None:
            self.counters.add("conduit.serving_evicted")

"""Segment descriptors: the ``<address, size, rkey>`` triplets.

OpenSHMEM registers its symmetric segments with the HCA and must hand
the resulting triplets to every peer that will RDMA into them.  *When*
that hand-off happens is exactly what the paper changes: statically via
a broadcast at init, or piggybacked on the connect handshake.

The wire encoding is a fixed 24 bytes per segment so the conduit can
charge realistic message sizes without interpreting the contents
(separation of concerns, Section IV-C).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ShmemError

__all__ = ["SegmentInfo", "SegmentTable", "encode_segments", "decode_segments"]

_SEG_FMT = "<QQQ"  # addr, size, rkey
SEGMENT_WIRE_BYTES = struct.calcsize(_SEG_FMT)


@dataclass(frozen=True)
class SegmentInfo:
    """One registered, remotely accessible memory segment."""

    addr: int
    size: int
    rkey: int

    def translate(self, local_addr: int, local_base: int) -> int:
        """Map a symmetric address from the local segment into this one."""
        offset = local_addr - local_base
        if not (0 <= offset < self.size):
            raise ShmemError(
                f"symmetric offset {offset:#x} outside remote segment "
                f"(size {self.size:#x})"
            )
        return self.addr + offset


def encode_segments(segments: List[SegmentInfo]) -> bytes:
    """Serialise segments for piggybacking on connection packets."""
    return b"".join(struct.pack(_SEG_FMT, s.addr, s.size, s.rkey) for s in segments)


def decode_segments(data: bytes) -> List[SegmentInfo]:
    if len(data) % SEGMENT_WIRE_BYTES:
        raise ShmemError(f"segment blob length {len(data)} not a multiple of "
                         f"{SEGMENT_WIRE_BYTES}")
    out = []
    for off in range(0, len(data), SEGMENT_WIRE_BYTES):
        addr, size, rkey = struct.unpack_from(_SEG_FMT, data, off)
        out.append(SegmentInfo(addr=addr, size=size, rkey=rkey))
    return out


class SegmentTable:
    """Per-PE map: peer rank -> that peer's segments.

    A *resolver* may be installed for the statically-exchanged case:
    after the init-time broadcast every peer's keys are known, so the
    table materialises entries lazily instead of building N entries on
    each of N processes (an O(N^2) simulator cost with no timing
    meaning — the exchange time is charged in bulk at init).
    """

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._by_peer: Dict[int, List[SegmentInfo]] = {}
        self._resolver = None

    def set_resolver(self, resolver) -> None:
        """``resolver(peer) -> List[SegmentInfo]`` fallback."""
        self._resolver = resolver

    def put(self, peer: int, segments: List[SegmentInfo]) -> None:
        self._by_peer[peer] = list(segments)

    def get(self, peer: int) -> List[SegmentInfo]:
        segs = self._by_peer.get(peer)
        if segs is not None:
            return segs
        if self._resolver is not None:
            segs = self._resolver(peer)
            if segs is not None:
                self._by_peer[peer] = segs
                return segs
        raise ShmemError(
            f"PE {self.rank}: no segment info for peer {peer} "
            "(connection not established / keys not exchanged)"
        )

    def knows(self, peer: int) -> bool:
        if peer in self._by_peer:
            return True
        if self._resolver is not None:
            segs = self._resolver(peer)
            if segs is not None:
                self._by_peer[peer] = segs
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_peer)

"""The static (full wire-up) conduit: the baseline the paper improves on.

During initialisation every PE connects to **all N peers** — the
behaviour of GASNet-ibv and of MVAPICH2-X before this paper.  The cost
and memory of all N queue pairs and connections are charged during
:meth:`StaticConduit.wireup`; the simulator materialises the actual QP
objects lazily on first use (already paid for — see
``VerbsContext.bulk_charge_rc_qps``), because holding 8192 x 8192 QP
objects is infeasible in any simulator while the *timing and resource
accounting* are identical either way.

The static conduit never uses the UD handshake: endpoint information
for all peers is assumed exchanged via PMI during wire-up, which is why
``wireup`` must only be called after the PMI fence completed.
"""

from __future__ import annotations

from typing import Generator

from ..errors import ConduitError
from .conduit import Conduit
from .messages import ConnectReply, ConnectRequest

__all__ = ["StaticConduit"]


class StaticConduit(Conduit):
    """All-to-all connections established at init."""

    mode = "static"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._prewired = False

    # ------------------------------------------------------------------
    def wireup(self) -> Generator:
        """Create and connect QPs for every peer (charged in bulk).

        Paper Section I: "each process creates N IB endpoints (QPs) and
        connects to all N processes (including itself)".
        """
        if self._ud_directory is None and self._dir_handle is None:
            raise ConduitError(
                f"PE {self.rank}: static wireup requires the PMI endpoint "
                "exchange to have been initiated"
            )
        yield from self.resolve_directory()
        npes = self.cluster.npes
        yield from self.ctx.bulk_charge_rc_qps(npes, connect=True)
        # Per-peer handshake/bookkeeping CPU of the bulk wire-up loop.
        yield npes * self.cost.static_wireup_per_peer_us
        self._prewired = True
        self.counters.add("conduit.static_wireups")

    def teardown_charge(self) -> Generator:
        """Destroy-time for the full QP set (finalize cost)."""
        self._closed = True
        yield from self.ctx.bulk_charge_qp_destroy(self.cluster.npes)
        # The bulk charge pays for every QP, including the lazily
        # materialised ones — destroy those objects too so the HCA's QP
        # table ends the job empty (and the sanitizer can assert it).
        for conn in self._conns.values():
            conn.qp.destroy()
        self._conns.clear()

    # ------------------------------------------------------------------
    def ensure_connected(self, peer: int) -> Generator:
        if peer == self.rank or self.cluster.same_node(peer, self.rank):
            return
        if peer in self._conns:
            return
        if not self._prewired:
            raise ConduitError(
                f"PE {self.rank}: static conduit used before wireup"
            )
        peer_conduit = self.network.peer(peer)
        if not isinstance(peer_conduit, StaticConduit) or not peer_conduit._prewired:
            raise ConduitError(
                f"PE {self.rank}: peer {peer} is not statically wired"
            )
        # Materialise the pre-paid QP pair on both sides, instantly.
        my_cq = self.ctx.create_cq(f"rc-send-{peer}")
        peer_cq = peer_conduit.ctx.create_cq(f"rc-send-{self.rank}")
        my_qp = yield from self.ctx.create_rc_qp(my_cq, self._recv_cq, prepaid=True)
        peer_qp = yield from peer_conduit.ctx.create_rc_qp(
            peer_cq, peer_conduit._recv_cq, prepaid=True
        )
        yield from self.ctx.connect_rc_qp(my_qp, peer_qp.address, prepaid=True)
        yield from peer_conduit.ctx.connect_rc_qp(
            peer_qp, my_qp.address, prepaid=True
        )
        self._register_connection(peer, my_qp, my_cq)
        peer_conduit._register_connection(self.rank, peer_qp, peer_cq)

    # -- the static conduit never sees handshake traffic -----------------
    def _on_connect_request(self, req: ConnectRequest) -> Generator:
        raise ConduitError("static conduit received a connect request")
        yield  # pragma: no cover

    def _on_connect_reply(self, rep: ConnectReply) -> Generator:
        raise ConduitError("static conduit received a connect reply")
        yield  # pragma: no cover

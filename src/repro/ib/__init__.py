"""Simulated InfiniBand substrate: verbs, QPs, HCA, fabric, memory."""

from .cq import CompletionQueue
from .fabric import Fabric
from .hca import HCA
from .memory import MemoryManager, MemoryRegion
from .qp import RCQueuePair, UDQueuePair
from .types import (
    EndpointAddress,
    Opcode,
    Packet,
    QPState,
    QPType,
    WCStatus,
    WorkCompletion,
)
from .verbs import VerbsContext

__all__ = [
    "CompletionQueue",
    "Fabric",
    "HCA",
    "MemoryManager",
    "MemoryRegion",
    "RCQueuePair",
    "UDQueuePair",
    "EndpointAddress",
    "Opcode",
    "Packet",
    "QPState",
    "QPType",
    "WCStatus",
    "WorkCompletion",
    "VerbsContext",
]

"""Completion queues."""

from __future__ import annotations

from typing import List, Optional

from ..sim import Mailbox, Simulator, Waitable
from .types import WorkCompletion

__all__ = ["CompletionQueue"]


class CompletionQueue:
    """A queue of :class:`WorkCompletion` entries.

    ``wait()`` yields the next completion (blocking the calling
    process); ``poll()`` is the non-blocking variant returning ``None``
    when empty.
    """

    def __init__(self, sim: Simulator, name: str = "cq") -> None:
        self.sim = sim
        self.name = name
        self._mbox = Mailbox(sim, name=name)

    def push(self, wc: WorkCompletion) -> None:
        self._mbox.send(wc)

    def wait(self) -> Waitable:
        """Waitable delivering the next :class:`WorkCompletion`."""
        return self._mbox.recv()

    def poll(self) -> Optional[WorkCompletion]:
        return self._mbox.try_recv()

    def drain(self) -> List[WorkCompletion]:
        """Pop everything currently queued (non-blocking)."""
        out = []
        while True:
            wc = self._mbox.try_recv()
            if wc is None:
                return out
            out.append(wc)

    def __len__(self) -> int:
        return len(self._mbox)

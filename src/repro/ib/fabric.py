"""The switched fabric: moves packets between HCAs with realistic timing.

Timing model per packet:

* **egress serialisation** -- each HCA's uplink transmits at
  ``fabric_bandwidth`` bytes/us and packets queue behind each other
  (captures incast/fan-out contention without per-link simulation);
* **propagation** -- base latency plus a per-switch-hop increment from
  the cluster topology (same leaf vs. across the spine);
* **intra-node** -- transfers between PEs of one node skip the fabric
  and use the shared-memory latency/bandwidth instead.

UD packets additionally face loss and duplication (seeded RNG stream)
-- reliability is the *software's* job, exactly as on real hardware.
An installed :class:`~repro.faults.FaultInjector` layers scheduled
drops, duplicates and delay-based *reordering* on top of that baseline
noise (consulted first, so a plan can blackhole a pair outright).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..cluster import Cluster
from ..sim import Counters, RngRegistry, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultInjector
    from .hca import HCA
    from .types import Packet

__all__ = ["Fabric"]


class Fabric:
    """Connects the per-node HCAs of one simulated job."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        rng: RngRegistry,
        counters: Counters,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.cost = cluster.cost
        self.counters = counters
        self._loss_rng = rng.stream("fabric.ud-loss")
        self._hcas: Dict[int, "HCA"] = {}  # lid -> HCA
        #: Optional fault injector (installed by ``Job(faults=...)``).
        self.faults: Optional["FaultInjector"] = None
        #: Flight recorder (installed by ``Job(observe=True)``).
        self.obs = None

    def attach(self, hca: "HCA") -> None:
        if hca.lid in self._hcas:
            raise ValueError(f"duplicate LID {hca.lid:#x}")
        self._hcas[hca.lid] = hca

    def hca_by_lid(self, lid: int) -> "HCA":
        return self._hcas[lid]

    # ------------------------------------------------------------------
    def transmit(self, src: "HCA", packet: "Packet", unreliable: bool = False) -> None:
        """Inject ``packet`` into the fabric from ``src``.

        Delivery (or silent loss for UD) is scheduled on the event
        queue; the caller does not block.
        """
        dst = self._hcas.get(packet.dst_lid)
        if dst is None:
            raise KeyError(f"no HCA with LID {packet.dst_lid:#x}")
        self.counters.add("fabric.packets")
        self.counters.add("fabric.bytes", packet.nbytes)

        if unreliable:
            extra = 0.0
            obs = self.obs
            faults = self.faults
            if faults is not None:
                dropped, extra, dup_delays = faults.ud_fate(
                    src.node, dst.node, type(packet.payload).__name__
                )
                if dropped:
                    self.counters.add("fabric.ud_dropped")
                    if obs is not None:
                        self._obs_ud_event(obs, "fabric.ud_drop", src, dst,
                                           packet)
                    return
                for dup in dup_delays:
                    self.counters.add("fabric.ud_duplicated")
                    if obs is not None:
                        self._obs_ud_event(obs, "fabric.ud_duplicate", src,
                                           dst, packet)
                    self._deliver(src, dst, packet, extra_delay=extra + dup)
            if self._loss_rng.random() < self.cost.ud_loss_prob:
                self.counters.add("fabric.ud_dropped")
                if obs is not None:
                    self._obs_ud_event(obs, "fabric.ud_drop", src, dst, packet)
                return
            if self._loss_rng.random() < self.cost.ud_duplicate_prob:
                self.counters.add("fabric.ud_duplicated")
                if obs is not None:
                    self._obs_ud_event(obs, "fabric.ud_duplicate", src, dst,
                                       packet)
                self._deliver(
                    src, dst, packet,
                    extra_delay=extra + self.cost.ud_duplicate_delay_us,
                )
            self._deliver(src, dst, packet, extra_delay=extra)
            return

        self._deliver(src, dst, packet, extra_delay=0.0)

    def _obs_ud_event(self, obs, name: str, src: "HCA", dst: "HCA",
                      packet: "Packet") -> None:
        """Record a UD loss/duplication on the fabric track, parented to
        the in-flight handshake span when the payload carries one."""
        parent = getattr(packet.payload, "span_id", None)
        obs.spans.event(
            name, "fabric", parent=parent,
            src_node=src.node, dst_node=dst.node, nbytes=packet.nbytes,
        )
        obs.metrics.counter(name).inc()

    def _deliver(
        self, src: "HCA", dst: "HCA", packet: "Packet", extra_delay: float
    ) -> None:
        now = self.sim.now
        if src.node == dst.node:
            arrival = now + self.cost.intra_node_time(packet.nbytes) + extra_delay
        else:
            ser = packet.nbytes / self.cost.fabric_bandwidth
            start = max(now, src.egress_free_at)
            src.egress_free_at = start + ser
            hops = self.cluster.hops(src.node, dst.node)
            prop = (
                self.cost.fabric_base_latency_us
                + self.cost.fabric_hop_latency_us * max(0, hops - 1)
            )
            arrival = start + ser + prop + extra_delay
        self.sim._schedule_at(arrival, dst.receive, packet)

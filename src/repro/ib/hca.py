"""Host Channel Adapter: QP table, QP-context cache, rkey routing.

One HCA per node, shared by every PE on that node (as on the paper's
clusters).  The HCA owns

* the **QP table** (qpn -> QP object),
* the **QP-context cache** -- an LRU over RC QPs modelling the limited
  on-board memory of ConnectX-era HCAs (paper Section I, drawback 3):
  traffic touching more QPs than fit pays a context-fetch penalty,
* the **rkey table** routing inbound RDMA/atomics to the owning PE's
  registered memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..cluster import CostModel
from ..sim import Counters, Simulator
from .memory import MemoryManager, MemoryRegion
from .types import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultInjector
    from .fabric import Fabric

__all__ = ["HCA", "install_timeline_probes"]


def install_timeline_probes(timeline, hcas, counters: Counters) -> None:
    """Register the verbs layer's time-series probes (pure reads; see
    the determinism contract in :mod:`repro.obs.timeline`).

    Occupancy is sampled as both the job-wide sum and the worst single
    HCA — the paper's QP-context pressure argument (Section I) is about
    the latter."""
    def cache_occupancy() -> int:
        return sum(len(h._qp_cache) for h in hcas)

    def cache_occupancy_max() -> int:
        return max((len(h._qp_cache) for h in hcas), default=0)

    def live_qps() -> int:
        return sum(len(h._qps) for h in hcas)

    timeline.add_probe("hca.qp_cache_occupancy", cache_occupancy)
    timeline.add_probe("hca.qp_cache_occupancy_max", cache_occupancy_max)
    timeline.add_probe("hca.qps", live_qps)
    timeline.add_probe("hca.qp_cache_misses",
                       lambda: counters["hca.qp_cache_misses"],
                       kind="counter")

#: RC request kinds a dead QP must NAK (responses/acks are dropped —
#: NAKing a NAK or an ack would ping-pong between two dead QPs).
_NAKABLE_KINDS = ("send", "rdma_write", "rdma_read_req", "atomic_req")


class HCA:
    """A node's InfiniBand adapter."""

    def __init__(
        self,
        sim: Simulator,
        fabric: "Fabric",
        node: int,
        lid: int,
        cost: CostModel,
        counters: Counters,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node = node
        self.lid = lid
        self.cost = cost
        self.counters = counters
        #: When this HCA's uplink becomes idle (egress serialisation).
        self.egress_free_at = 0.0
        self._qps: Dict[int, object] = {}
        self._next_qpn = 1
        self._qp_cache: "OrderedDict[int, None]" = OrderedDict()
        self._rkeys: Dict[int, Tuple[MemoryRegion, MemoryManager]] = {}
        #: rkeys whose region was deregistered (distinguishes a revoked
        #: handle from one that never existed when NAKing).
        self._revoked_rkeys: Dict[int, None] = {}
        #: Optional fault injector (installed by ``Job(faults=...)``).
        self.faults: Optional["FaultInjector"] = None
        #: Flight recorder (installed by ``Job(observe=True)``).
        self.obs = None
        #: Invariant sanitizer (installed by ``Job(check=...)``).
        self.check = None
        fabric.attach(self)

    # -- QP management ----------------------------------------------------
    def alloc_qpn(self) -> int:
        qpn = self._next_qpn
        self._next_qpn += 1
        return qpn

    def try_alloc_rc_context(self, rank: int) -> None:
        """Gate for RC QP creation: the HCA's on-board context memory
        may be (transiently) exhausted under a fault plan, in which
        case creation fails ENOMEM-style and the caller must back off
        and retry (the on-demand conduit does)."""
        faults = self.faults
        if faults is not None and faults.qp_create_fails(rank):
            from ..errors import ResourceExhaustedError

            self.counters.add("hca.qp_enomem")
            raise ResourceExhaustedError(
                f"LID {self.lid:#x}: out of QP context memory (ENOMEM) "
                f"creating RC QP for PE {rank}"
            )

    def register_qp(self, qp) -> None:
        if qp.qpn in self._qps:
            raise ValueError(f"qpn {qp.qpn} already registered on LID {self.lid:#x}")
        self._qps[qp.qpn] = qp
        if self.check is not None:
            self.check.on_qp_registered(qp)

    def destroy_qp(self, qpn: int) -> None:
        self._qps.pop(qpn, None)
        if qpn in self._qp_cache:
            del self._qp_cache[qpn]
            if self.check is not None:
                self.check.on_cache_remove(self)

    def qp(self, qpn: int):
        return self._qps[qpn]

    # -- QP context cache ---------------------------------------------------
    def touch_qp_cache(self, qpn: int) -> float:
        """LRU-touch an RC QP context; returns the miss penalty (us)."""
        cache = self._qp_cache
        if qpn in cache:
            cache.move_to_end(qpn)
            self.counters.add("hca.qp_cache_hits")
            if self.check is not None:
                self.check.on_cache_touch(self, hit=True, evicted=False)
            return 0.0
        cache[qpn] = None
        evicted = False
        if len(cache) > self.cost.qp_cache_entries:
            cache.popitem(last=False)
            evicted = True
        self.counters.add("hca.qp_cache_misses")
        if self.check is not None:
            self.check.on_cache_touch(self, hit=False, evicted=evicted)
        if self.obs is not None:
            self.obs.metrics.histogram(
                "hca.qp_cache_miss_penalty_us", node=self.node
            ).observe(self.cost.qp_cache_miss_penalty_us)
        return self.cost.qp_cache_miss_penalty_us

    # -- memory routing -------------------------------------------------------
    def expose_memory(self, mm: MemoryManager, region: MemoryRegion) -> None:
        """Make a PE's registered region reachable by inbound RDMA."""
        self._rkeys[region.rkey] = (region, mm)

    def hide_memory(self, region: MemoryRegion) -> None:
        if self._rkeys.pop(region.rkey, None) is not None:
            self._revoked_rkeys[region.rkey] = None

    def memory_target(self, rkey: int) -> Tuple[MemoryRegion, MemoryManager]:
        from ..errors import RemoteAccessError

        try:
            return self._rkeys[rkey]
        except KeyError:
            if rkey in self._revoked_rkeys:
                raise RemoteAccessError(
                    f"LID {self.lid:#x}: rkey {rkey:#x} revoked "
                    f"(region deregistered)"
                ) from None
            raise RemoteAccessError(
                f"LID {self.lid:#x}: no region with rkey {rkey:#x}"
            ) from None

    # -- packet arrival ---------------------------------------------------------
    def receive(self, packet: "Packet") -> None:
        """Fabric delivery callback (runs at packet-arrival time)."""
        qp = self._qps.get(packet.dst_qpn)
        if qp is None:
            if packet.kind in _NAKABLE_KINDS:
                # An RC *request* aimed at a destroyed QP (e.g. one a
                # disconnect evicted while the WR was in flight): real
                # hardware NAKs it.  The requester turns the NAK into a
                # WCStatus.REMOTE_ACCESS_ERROR completion — same
                # discipline as the deregister race — never a stale
                # write-through, never a hang on a swallowed WR.
                self.counters.add("hca.nak_dead_qp")
                self.fabric.transmit(self, Packet(
                    kind="nak",
                    dst_lid=packet.src_lid,
                    dst_qpn=packet.src_qpn,
                    src_lid=self.lid,
                    src_qpn=packet.dst_qpn,
                    nbytes=16,
                    token=packet.token,
                    payload=(
                        f"LID {self.lid:#x}: QP {packet.dst_qpn} destroyed"
                    ),
                ))
                return
            # Responses/acks/UD for a missing QP: on real hardware
            # these are silently dropped; our protocols never rely on
            # them (and NAKing a response could ping-pong), so drop
            # and count.
            self.counters.add("hca.dropped_no_qp")
            return
        penalty = 0.0
        if getattr(qp, "is_rc", False):
            penalty = self.touch_qp_cache(packet.dst_qpn)
        if penalty > 0.0:
            self.sim._schedule_at(self.sim.now + penalty, qp.handle, packet)
        else:
            qp.handle(packet)

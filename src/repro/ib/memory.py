"""Registered memory: protection domains, regions, rkeys.

Each PE owns a :class:`MemoryManager` modelling its virtual address
space.  Buffers are real ``numpy`` byte arrays, so RDMA operations in
the simulator genuinely move data — application results (heat fields,
BFS trees, reductions) are computed from bytes that travelled through
the simulated fabric.

Addresses are integers in a per-PE flat space; registration yields an
``rkey`` that remote peers must present.  rkeys are globally unique so
that a stale or wrong key is always caught.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import MemoryRegistrationError, RemoteAccessError

__all__ = ["MemoryRegion", "MemoryManager"]

_rkey_counter = itertools.count(0x1000)


@dataclass
class MemoryRegion:
    """A registered, RDMA-accessible buffer.

    The backing array is owned by the :class:`MemoryManager` and
    materialised lazily — registering a large heap that is never
    touched (common in startup benchmarks) costs no real memory.
    """

    addr: int  #: Base virtual address in the owner's address space.
    size: int  #: Length in bytes.
    rkey: int  #: Remote access key (globally unique).
    lkey: int  #: Local key (== rkey in this model).
    owner_rank: int
    mm: "MemoryManager"  #: Owner of the backing storage.
    #: Set by ``deregister``: the handle is dead even though the numpy
    #: view it references may still be alive.  Remote access through a
    #: revoked region must fail, never read through.
    revoked: bool = False

    @property
    def buf(self) -> np.ndarray:
        """Backing storage (uint8, length ``size``), created on first use."""
        return self.mm.buffer_of(self.addr)

    def contains(self, addr: int, nbytes: int) -> bool:
        return self.addr <= addr and addr + nbytes <= self.addr + self.size

    def offset_of(self, addr: int) -> int:
        return addr - self.addr


class MemoryManager:
    """Per-PE address space + registration table.

    ``alloc`` carves address ranges out of a monotonically growing
    space; ``register`` pins a range and issues an rkey.  Only
    registered ranges are remotely accessible.
    """

    #: Arbitrary non-zero base so address 0 is always invalid.
    _BASE_ADDR = 0x10_0000

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._next_addr = self._BASE_ADDR
        #: addr -> backing array, or the pending size (int) for
        #: allocations whose bytes have never been touched.
        self._buffers: Dict[int, object] = {}
        self._regions: Dict[int, MemoryRegion] = {}  # rkey -> region
        self._by_addr: Dict[int, MemoryRegion] = {}  # base addr -> region
        #: rkeys of deregistered regions, kept so a late lookup fails
        #: with a *revoked* error rather than a confusing unknown-rkey.
        self._revoked: Dict[int, None] = {}
        self.registered_bytes = 0

    # -- allocation -----------------------------------------------------
    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the base address.

        The zeroed backing array is materialised on first access, so
        PEs that register memory but never move data through it (e.g.
        a startup-only benchmark) pay nothing."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        addr = self._next_addr
        # 4 KiB alignment, like a page-aligned allocator.
        self._next_addr += (size + 4095) // 4096 * 4096
        self._buffers[addr] = size
        return addr

    def buffer_of(self, addr: int) -> np.ndarray:
        """Backing array for an allocation base address."""
        try:
            buf = self._buffers[addr]
        except KeyError:
            raise MemoryRegistrationError(
                f"PE {self.rank}: {addr:#x} is not an allocation base"
            ) from None
        if buf.__class__ is int:
            buf = np.zeros(buf, dtype=np.uint8)
            self._buffers[addr] = buf
        return buf

    def _size_of(self, addr: int) -> int:
        """Allocation size without materialising the backing array."""
        try:
            buf = self._buffers[addr]
        except KeyError:
            raise MemoryRegistrationError(
                f"PE {self.rank}: {addr:#x} is not an allocation base"
            ) from None
        return buf if buf.__class__ is int else len(buf)

    # -- registration ----------------------------------------------------
    def register(self, addr: int) -> MemoryRegion:
        """Register the allocation at ``addr``; returns its region."""
        size = self._size_of(addr)
        if addr in self._by_addr:
            raise MemoryRegistrationError(
                f"PE {self.rank}: {addr:#x} already registered"
            )
        key = next(_rkey_counter)
        region = MemoryRegion(
            addr=addr, size=size, rkey=key, lkey=key,
            owner_rank=self.rank, mm=self,
        )
        self._regions[key] = region
        self._by_addr[addr] = region
        self.registered_bytes += region.size
        return region

    def deregister(self, region: MemoryRegion) -> None:
        if region.rkey not in self._regions:
            raise MemoryRegistrationError(
                f"PE {self.rank}: rkey {region.rkey:#x} not registered"
            )
        del self._regions[region.rkey]
        del self._by_addr[region.addr]
        region.revoked = True
        self._revoked[region.rkey] = None
        self.registered_bytes -= region.size

    def region_by_rkey(self, rkey: int) -> MemoryRegion:
        try:
            region = self._regions[rkey]
        except KeyError:
            if rkey in self._revoked:
                raise RemoteAccessError(
                    f"PE {self.rank}: rkey {rkey:#x} revoked "
                    f"(region deregistered)"
                ) from None
            raise RemoteAccessError(
                f"PE {self.rank}: unknown rkey {rkey:#x}"
            ) from None
        if region.revoked:  # pragma: no cover - defence in depth
            raise RemoteAccessError(
                f"PE {self.rank}: rkey {rkey:#x} revoked "
                f"(region deregistered)"
            )
        return region

    # -- local access ------------------------------------------------------
    def _locate(self, addr: int, nbytes: int) -> Tuple[np.ndarray, int]:
        """Find (buffer, offset) for any allocated range, registered or not."""
        for base, buf in self._buffers.items():
            size = buf if buf.__class__ is int else len(buf)
            if base <= addr and addr + nbytes <= base + size:
                return self.buffer_of(base), addr - base
        raise RemoteAccessError(
            f"PE {self.rank}: address range {addr:#x}+{nbytes} not allocated"
        )

    def read_local(self, addr: int, nbytes: int) -> bytes:
        buf, off = self._locate(addr, nbytes)
        return bytes(buf[off : off + nbytes])

    def write_local(self, addr: int, data: bytes) -> None:
        buf, off = self._locate(addr, len(data))
        buf[off : off + len(data)] = np.frombuffer(data, dtype=np.uint8)

    # -- remote (validated) access -----------------------------------------
    def rdma_write(self, raddr: int, rkey: int, data: bytes) -> None:
        region = self.region_by_rkey(rkey)
        if not region.contains(raddr, len(data)):
            raise RemoteAccessError(
                f"PE {self.rank}: write {raddr:#x}+{len(data)} outside "
                f"region rkey={rkey:#x}"
            )
        off = region.offset_of(raddr)
        region.buf[off : off + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def rdma_read(self, raddr: int, rkey: int, nbytes: int) -> bytes:
        region = self.region_by_rkey(rkey)
        if not region.contains(raddr, nbytes):
            raise RemoteAccessError(
                f"PE {self.rank}: read {raddr:#x}+{nbytes} outside "
                f"region rkey={rkey:#x}"
            )
        off = region.offset_of(raddr)
        return bytes(region.buf[off : off + nbytes])

    def atomic(self, raddr: int, rkey: int, op: str, compare: int, operand: int) -> int:
        """Execute a 64-bit atomic at ``raddr``; returns the old value."""
        region = self.region_by_rkey(rkey)
        if not region.contains(raddr, 8):
            raise RemoteAccessError(
                f"PE {self.rank}: atomic at {raddr:#x} outside region "
                f"rkey={rkey:#x}"
            )
        off = region.offset_of(raddr)
        view = region.buf[off : off + 8]
        old = int(np.frombuffer(view.tobytes(), dtype="<i8")[0])
        if op == "fetch_add":
            new = old + operand
        elif op == "cmp_swap":
            new = operand if old == compare else old
        else:
            raise ValueError(f"unknown atomic op {op!r}")
        view[:] = np.frombuffer(
            int(new & 0xFFFF_FFFF_FFFF_FFFF).to_bytes(8, "little", signed=False),
            dtype=np.uint8,
        )
        return old

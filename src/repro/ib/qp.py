"""Queue pairs: UD (unreliable datagram) and RC (reliable connected).

Methods here mutate protocol state and inject packets; they do **not**
charge CPU time — the :mod:`repro.ib.verbs` facade charges posting and
state-transition costs so that the cost model stays in one place.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..errors import QPStateError, RemoteAccessError, VerbsError
from .cq import CompletionQueue
from .types import EndpointAddress, Opcode, Packet, QPState, QPType, WCStatus, WorkCompletion

if TYPE_CHECKING:  # pragma: no cover
    from .hca import HCA

__all__ = ["UDQueuePair", "RCQueuePair"]

_token_counter = itertools.count(1)


class _QueuePairBase:
    """State shared by both transports."""

    is_rc = False

    def __init__(
        self,
        hca: "HCA",
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        owner_rank: int,
    ) -> None:
        self.hca = hca
        self.sim = hca.sim
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.owner_rank = owner_rank
        self.qpn = hca.alloc_qpn()
        self.state = QPState.RESET
        self.destroyed = False
        hca.register_qp(self)

    @property
    def address(self) -> EndpointAddress:
        """The ``<lid, qpn>`` tuple peers need to reach this QP."""
        return EndpointAddress(lid=self.hca.lid, qpn=self.qpn)

    def _require(self, *states: QPState) -> None:
        if self.state not in states:
            detail = (
                f"QP {self.qpn} (PE {self.owner_rank}) is {self.state.value}, "
                f"needs {'/'.join(s.value for s in states)}"
            )
            check = self.hca.check
            if check is not None:
                # Raises InvariantViolation under a strict plan; if it
                # returns, fall through to the legacy error so the
                # illegal operation never proceeds.
                check.on_qp_state_error(self, states, detail)
            raise QPStateError(detail)

    def destroy(self) -> None:
        check = self.hca.check
        if self.destroyed:
            # Legacy behaviour tolerates the redundant call silently
            # (the QP table pop was already a no-op); the sanitizer
            # flags it.
            if check is not None:
                check.on_qp_double_destroy(self)
            return
        self.destroyed = True
        if check is not None:
            check.on_qp_destroy(self)
        self.hca.destroy_qp(self.qpn)
        self.state = QPState.ERROR


class UDQueuePair(_QueuePairBase):
    """Connection-less transport: one QP reaches every peer.

    Unreliable: the fabric may drop or duplicate datagrams; senders get
    a local completion as soon as the packet leaves (no ACK), so upper
    layers must implement their own retry (the on-demand conduit does).
    """

    qp_type = QPType.UD

    def activate(self) -> None:
        """UD has no remote: INIT->RTR->RTS collapses into activation."""
        self._require(QPState.RESET)
        self.state = QPState.RTS

    def post_send(
        self,
        dst: EndpointAddress,
        payload: object,
        nbytes: int,
        wr_id: int = 0,
    ) -> None:
        self._require(QPState.RTS)
        if nbytes > self.hca.cost.ud_mtu_bytes:
            raise VerbsError(
                f"UD payload {nbytes}B exceeds MTU "
                f"{self.hca.cost.ud_mtu_bytes}B"
            )
        packet = Packet(
            kind="ud",
            dst_lid=dst.lid,
            dst_qpn=dst.qpn,
            src_lid=self.hca.lid,
            src_qpn=self.qpn,
            nbytes=nbytes,
            payload=payload,
        )
        self.hca.fabric.transmit(self.hca, packet, unreliable=True)
        # UD send completes locally once the datagram is on the wire.
        self.send_cq.push(
            WorkCompletion(wr_id=wr_id, opcode=Opcode.SEND, byte_len=nbytes)
        )

    def handle(self, packet: Packet) -> None:
        if self.state is not QPState.RTS:
            self.hca.counters.add("ud.dropped_not_ready")
            return
        self.recv_cq.push(
            WorkCompletion(
                wr_id=0,
                opcode=Opcode.RECV,
                byte_len=packet.nbytes,
                src_qpn=packet.src_qpn,
                src_addr=EndpointAddress(packet.src_lid, packet.src_qpn),
                data=packet.payload,
            )
        )


class RCQueuePair(_QueuePairBase):
    """Reliable connected transport: RDMA, atomics, exactly-once."""

    qp_type = QPType.RC
    is_rc = True

    def __init__(self, hca, send_cq, recv_cq, owner_rank) -> None:
        super().__init__(hca, send_cq, recv_cq, owner_rank)
        self.remote: Optional[EndpointAddress] = None
        #: Outstanding requests awaiting ack/response: token -> (wr_id, opcode).
        self._pending: Dict[int, Tuple[int, Opcode]] = {}
        #: Flight-recorder binding: (SpanTracer, parent Span) or None.
        #: Bound by the conduit during a handshake so QP transitions
        #: land in the establishment's causal tree.
        self._obs: Optional[Tuple[object, object]] = None
        self._obs_delivered = False

    # -- observation --------------------------------------------------------
    def observe(self, spans, parent) -> None:
        """Bind this QP's transitions to ``parent`` on ``spans``.

        Rebinding (e.g. a collision-lost client QP adopted by the
        serve path) only switches the parent; the initial-state event
        is emitted once, at first bind.
        """
        first = self._obs is None
        self._obs = (spans, parent)
        if first:
            spans.event(
                f"qp.{self.state.value}", f"pe{self.owner_rank}",
                parent=parent, qpn=self.qpn,
            )

    def _obs_transition(self) -> None:
        spans, parent = self._obs
        spans.event(
            f"qp.{self.state.value}", f"pe{self.owner_rank}",
            parent=parent, qpn=self.qpn,
        )

    # -- state machine ------------------------------------------------------
    def modify_to_init(self) -> None:
        self._require(QPState.RESET)
        self.state = QPState.INIT
        if self._obs is not None:
            self._obs_transition()

    def modify_to_rtr(self, remote: EndpointAddress) -> None:
        self._require(QPState.INIT)
        self.remote = remote
        self.state = QPState.RTR
        if self._obs is not None:
            self._obs_transition()

    def modify_to_rts(self) -> None:
        self._require(QPState.RTR)
        self.state = QPState.RTS
        if self._obs is not None:
            self._obs_transition()

    def destroy(self) -> None:
        super().destroy()
        if self._obs is not None:
            spans, parent = self._obs
            spans.event(
                "qp.destroy", f"pe{self.owner_rank}",
                parent=parent, qpn=self.qpn,
            )
            self._obs = None

    # -- posting ---------------------------------------------------------------
    def _transmit(self, kind: str, nbytes: int, **fields) -> None:
        assert self.remote is not None
        penalty = self.hca.touch_qp_cache(self.qpn)
        packet = Packet(
            kind=kind,
            dst_lid=self.remote.lid,
            dst_qpn=self.remote.qpn,
            src_lid=self.hca.lid,
            src_qpn=self.qpn,
            nbytes=nbytes,
            **fields,
        )
        if penalty > 0.0:
            self.sim._schedule_at(self.sim.now + penalty, self._inject, packet)
        else:
            self.hca.fabric.transmit(self.hca, packet)

    def _inject(self, packet: Packet) -> None:
        """Delayed transmit continuation (QP-cache-miss penalty path)."""
        self.hca.fabric.transmit(self.hca, packet)

    def _track(self, wr_id: int, opcode: Opcode) -> int:
        token = next(_token_counter)
        self._pending[token] = (wr_id, opcode)
        check = self.hca.check
        if check is not None:
            check.on_wr_posted(self, token)
        return token

    def post_send(self, payload: object, nbytes: int, wr_id: int = 0) -> None:
        """Two-sided send; remote gets a recv completion with the payload."""
        self._require(QPState.RTS)
        token = self._track(wr_id, Opcode.SEND)
        self._transmit("send", nbytes, payload=payload, token=token)

    def post_rdma_write(
        self, data: bytes, raddr: int, rkey: int, wr_id: int = 0
    ) -> None:
        self._require(QPState.RTS)
        token = self._track(wr_id, Opcode.RDMA_WRITE)
        self._transmit(
            "rdma_write", len(data), payload=data, raddr=raddr, rkey=rkey,
            token=token,
        )

    def post_rdma_read(
        self, nbytes: int, raddr: int, rkey: int, wr_id: int = 0
    ) -> None:
        self._require(QPState.RTS)
        token = self._track(wr_id, Opcode.RDMA_READ)
        # Read request itself is a small control packet.
        self._transmit(
            "rdma_read_req", 32, raddr=raddr, rkey=rkey, token=token,
            swap_or_add=nbytes,
        )

    def post_atomic(
        self,
        op: str,
        raddr: int,
        rkey: int,
        compare: int = 0,
        swap_or_add: int = 0,
        wr_id: int = 0,
    ) -> None:
        self._require(QPState.RTS)
        opcode = (
            Opcode.ATOMIC_FETCH_ADD if op == "fetch_add" else Opcode.ATOMIC_CMP_SWAP
        )
        token = self._track(wr_id, opcode)
        self._transmit(
            "atomic_req", 40, raddr=raddr, rkey=rkey, token=token,
            compare=compare, swap_or_add=swap_or_add,
            payload=op,
        )

    # -- arrival ------------------------------------------------------------------
    def _reply(self, kind: str, nbytes: int, token: int, payload=None) -> None:
        """Send an ack/response back to the connected peer."""
        self._transmit(kind, nbytes, token=token, payload=payload)

    def _nak(self, packet: Packet, exc: RemoteAccessError) -> None:
        """Inbound RDMA/atomic hit a revoked or unknown rkey.

        Mirrors IBV: the target NAKs and the requester's WR completes
        with a remote-access error status — the simulation does not
        crash and no stale view is read through.  The sanitizer (when
        armed) additionally reports the access at the point of damage.
        """
        self.hca.counters.add("rc.remote_access_naks")
        check = self.hca.check
        if check is not None:
            check.on_remote_access_error(self, packet.rkey, str(exc))
        self._reply("nak", 16, packet.token, payload=str(exc))

    #: Redelivery delay when a packet reaches a QP that is not yet RTR
    #: (models the RNR/retry behaviour of real RC hardware: the sender's
    #: HCA retransmits until the receiver is ready).
    RNR_RETRY_US = 25.0

    def handle(self, packet: Packet) -> None:
        if self.state is QPState.INIT:
            self.hca.counters.add("rc.rnr_retries")
            if self._obs is not None:
                spans, parent = self._obs
                spans.event(
                    "rc.rnr_retry", f"pe{self.owner_rank}",
                    parent=parent, qpn=self.qpn, kind=packet.kind,
                )
            self.sim._schedule_at(
                self.sim.now + self.RNR_RETRY_US, self.handle, packet
            )
            return
        if self.state is QPState.ERROR:
            # An RNR redelivery (scheduled above while we were INIT) can
            # race with QP teardown: a collision-losing client destroys
            # its half-connected QP while the delayed ``handle`` is
            # still in flight.  Real HCAs silently drop traffic for a
            # dead QP; raising here would crash the simulation on a
            # perfectly legal protocol interleaving.
            self.hca.counters.add("rc.dropped_dead_qp")
            return
        if self.state not in (QPState.RTR, QPState.RTS):
            raise QPStateError(
                f"RC QP {self.qpn} (PE {self.owner_rank}) got {packet.kind} "
                f"while {self.state.value}"
            )
        if self._obs is not None and not self._obs_delivered:
            # The first packet this RC QP delivers: the tail of the
            # acceptance chain (handshake -> ... -> first RC delivery).
            self._obs_delivered = True
            spans, parent = self._obs
            spans.event(
                "rc.first_delivery", f"pe{self.owner_rank}",
                parent=parent, qpn=self.qpn, kind=packet.kind,
            )
        cost = self.hca.cost
        if packet.kind == "send":
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=0,
                    opcode=Opcode.RECV,
                    byte_len=packet.nbytes,
                    src_qpn=packet.src_qpn,
                    src_addr=EndpointAddress(packet.src_lid, packet.src_qpn),
                    data=packet.payload,
                )
            )
            self._reply("ack", 16, packet.token)
        elif packet.kind == "rdma_write":
            try:
                region, mm = self.hca.memory_target(packet.rkey)
                mm.rdma_write(packet.raddr, packet.rkey, packet.payload)
            except RemoteAccessError as exc:
                self._nak(packet, exc)
            else:
                self._reply("ack", 16, packet.token)
        elif packet.kind == "rdma_read_req":
            try:
                region, mm = self.hca.memory_target(packet.rkey)
                data = mm.rdma_read(
                    packet.raddr, packet.rkey, packet.swap_or_add
                )
            except RemoteAccessError as exc:
                self._nak(packet, exc)
            else:
                self._reply(
                    "rdma_read_resp", len(data), packet.token, payload=data
                )
        elif packet.kind == "atomic_req":
            try:
                region, mm = self.hca.memory_target(packet.rkey)
                old = mm.atomic(
                    packet.raddr, packet.rkey, packet.payload,
                    packet.compare, packet.swap_or_add,
                )
            except RemoteAccessError as exc:
                self._nak(packet, exc)
            else:
                self._reply("atomic_resp", 16, packet.token, payload=old)
        elif packet.kind in ("ack", "rdma_read_resp", "atomic_resp", "nak"):
            try:
                wr_id, opcode = self._pending.pop(packet.token)
            except KeyError:
                check = self.hca.check
                if check is not None:
                    check.on_unmatched_completion(
                        self, packet.kind, packet.token
                    )
                raise VerbsError(
                    f"RC QP {self.qpn}: unmatched {packet.kind} "
                    f"token={packet.token}"
                ) from None
            check = self.hca.check
            if packet.kind == "nak":
                # Remote-access failure at the target: surface as an
                # error completion at the requester (IBV maps a remote
                # access NAK to IBV_WC_REM_ACCESS_ERR).
                if check is not None:
                    check.on_wr_errored(self, packet.token)
                self.send_cq.push(
                    WorkCompletion(
                        wr_id=wr_id,
                        opcode=opcode,
                        status=WCStatus.REMOTE_ACCESS_ERROR,
                        byte_len=0,
                        data=packet.payload,
                    )
                )
                return
            if check is not None:
                check.on_wr_completed(self, packet.token)
            self.send_cq.push(
                WorkCompletion(
                    wr_id=wr_id,
                    opcode=opcode,
                    byte_len=packet.nbytes,
                    data=packet.payload,
                )
            )
        else:  # pragma: no cover - protocol exhaustiveness guard
            raise VerbsError(f"RC QP: unknown packet kind {packet.kind!r}")

"""Shared types for the simulated InfiniBand verbs layer.

The hot wire types (:class:`Packet`, :class:`WorkCompletion`,
:class:`EndpointAddress`) are hand-written ``__slots__`` classes rather
than dataclasses: one is allocated per simulated packet/completion, so
skipping the per-instance ``__dict__`` measurably shrinks the DES
kernel's allocation churn.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

__all__ = [
    "QPType",
    "QPState",
    "Opcode",
    "WCStatus",
    "WorkCompletion",
    "Packet",
    "EndpointAddress",
]


class QPType(enum.Enum):
    """Transport type of a queue pair."""

    RC = "RC"  #: Reliable Connected -- one QP per peer, RDMA + atomics.
    UD = "UD"  #: Unreliable Datagram -- one QP talks to any peer, MTU-limited.


class QPState(enum.Enum):
    """Queue-pair state machine (subset of the IB spec we model)."""

    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  #: Ready To Receive.
    RTS = "RTS"  #: Ready To Send.
    ERROR = "ERROR"


class Opcode(enum.Enum):
    """Work-request / work-completion opcodes."""

    SEND = "SEND"
    #: Receive-side completion of an inbound message (the verbs
    #: ``IBV_WC_RECV`` family) — distinct from the sender's SEND
    #: completion so CQ consumers can tell the two apart.
    RECV = "RECV"
    RDMA_WRITE = "RDMA_WRITE"
    RDMA_READ = "RDMA_READ"
    ATOMIC_FETCH_ADD = "ATOMIC_FETCH_ADD"
    ATOMIC_CMP_SWAP = "ATOMIC_CMP_SWAP"


class WCStatus(enum.Enum):
    """Work-completion status."""

    SUCCESS = "SUCCESS"
    REMOTE_ACCESS_ERROR = "REMOTE_ACCESS_ERROR"
    RETRY_EXCEEDED = "RETRY_EXCEEDED"
    WR_FLUSH_ERROR = "WR_FLUSH_ERROR"


class WorkCompletion:
    """Entry delivered to a completion queue."""

    __slots__ = (
        "wr_id", "opcode", "status", "byte_len", "src_qpn", "src_addr",
        "data",
    )

    def __init__(
        self,
        wr_id: int,
        opcode: Opcode,
        status: WCStatus = WCStatus.SUCCESS,
        byte_len: int = 0,
        src_qpn: Optional[int] = None,
        src_addr: Optional["EndpointAddress"] = None,
        data: Any = None,
    ) -> None:
        self.wr_id = wr_id
        self.opcode = opcode
        self.status = status
        #: Number of payload bytes (received or transferred).
        self.byte_len = byte_len
        #: For receive completions: sender identity (qpn of the source QP).
        self.src_qpn = src_qpn
        #: For UD receives: the source's (lid, qpn) so a reply can be sent.
        self.src_addr = src_addr
        #: Received payload (SEND) or atomic/read result.
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkCompletion(wr_id={self.wr_id}, opcode={self.opcode}, "
            f"status={self.status}, byte_len={self.byte_len})"
        )


class EndpointAddress:
    """The ``<lid, qpn>`` tuple the paper's protocol exchanges.

    Roughly an (IP address, port) pair: the LID identifies the node's
    HCA on the fabric, the QPN the queue pair within it.  Hashable and
    comparable by value (it is used as a dict key in directories).
    """

    __slots__ = ("lid", "qpn")

    def __init__(self, lid: int, qpn: int) -> None:
        self.lid = lid
        self.qpn = qpn

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EndpointAddress):
            return NotImplemented
        return self.lid == other.lid and self.qpn == other.qpn

    def __hash__(self) -> int:
        return hash((self.lid, self.qpn))

    def __repr__(self) -> str:
        return f"EndpointAddress(lid={self.lid}, qpn={self.qpn})"


class Packet:
    """One fabric transfer unit.

    ``kind`` distinguishes protocol roles at the receiving HCA:
    ``"send"`` (two-sided message), ``"rdma_write"``, ``"rdma_read_req"``,
    ``"rdma_read_resp"``, ``"atomic_req"``, ``"atomic_resp"``, ``"ack"``.
    """

    __slots__ = (
        "kind", "dst_lid", "dst_qpn", "src_lid", "src_qpn", "nbytes",
        "payload", "raddr", "rkey", "token", "compare", "swap_or_add",
    )

    def __init__(
        self,
        kind: str,
        dst_lid: int,
        dst_qpn: int,
        src_lid: int,
        src_qpn: int,
        nbytes: int,
        payload: Any = None,
        raddr: int = 0,
        rkey: int = 0,
        token: int = 0,
        compare: int = 0,
        swap_or_add: int = 0,
    ) -> None:
        self.kind = kind
        self.dst_lid = dst_lid
        self.dst_qpn = dst_qpn
        self.src_lid = src_lid
        self.src_qpn = src_qpn
        self.nbytes = nbytes
        self.payload = payload
        #: Target virtual address / rkey for RDMA and atomics.
        self.raddr = raddr
        self.rkey = rkey
        #: Correlates requests with responses/acks at the initiator.
        self.token = token
        #: Atomic operands.
        self.compare = compare
        self.swap_or_add = swap_or_add

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.kind!r}, {self.src_lid}:{self.src_qpn} -> "
            f"{self.dst_lid}:{self.dst_qpn}, {self.nbytes}B)"
        )

"""Shared types for the simulated InfiniBand verbs layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "QPType",
    "QPState",
    "Opcode",
    "WCStatus",
    "WorkCompletion",
    "Packet",
    "EndpointAddress",
]


class QPType(enum.Enum):
    """Transport type of a queue pair."""

    RC = "RC"  #: Reliable Connected -- one QP per peer, RDMA + atomics.
    UD = "UD"  #: Unreliable Datagram -- one QP talks to any peer, MTU-limited.


class QPState(enum.Enum):
    """Queue-pair state machine (subset of the IB spec we model)."""

    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  #: Ready To Receive.
    RTS = "RTS"  #: Ready To Send.
    ERROR = "ERROR"


class Opcode(enum.Enum):
    """Work-request opcodes."""

    SEND = "SEND"
    RDMA_WRITE = "RDMA_WRITE"
    RDMA_READ = "RDMA_READ"
    ATOMIC_FETCH_ADD = "ATOMIC_FETCH_ADD"
    ATOMIC_CMP_SWAP = "ATOMIC_CMP_SWAP"


class WCStatus(enum.Enum):
    """Work-completion status."""

    SUCCESS = "SUCCESS"
    REMOTE_ACCESS_ERROR = "REMOTE_ACCESS_ERROR"
    RETRY_EXCEEDED = "RETRY_EXCEEDED"
    WR_FLUSH_ERROR = "WR_FLUSH_ERROR"


@dataclass
class WorkCompletion:
    """Entry delivered to a completion queue."""

    wr_id: int
    opcode: Opcode
    status: WCStatus = WCStatus.SUCCESS
    #: Number of payload bytes (received or transferred).
    byte_len: int = 0
    #: For receive completions: sender identity (qpn of the source QP).
    src_qpn: Optional[int] = None
    #: For UD receives: the source's (lid, qpn) so a reply can be sent.
    src_addr: Optional["EndpointAddress"] = None
    #: Received payload (SEND) or atomic/read result.
    data: Any = None


@dataclass(frozen=True)
class EndpointAddress:
    """The ``<lid, qpn>`` tuple the paper's protocol exchanges.

    Roughly an (IP address, port) pair: the LID identifies the node's
    HCA on the fabric, the QPN the queue pair within it.
    """

    lid: int
    qpn: int


@dataclass
class Packet:
    """One fabric transfer unit.

    ``kind`` distinguishes protocol roles at the receiving HCA:
    ``"send"`` (two-sided message), ``"rdma_write"``, ``"rdma_read_req"``,
    ``"rdma_read_resp"``, ``"atomic_req"``, ``"atomic_resp"``, ``"ack"``.
    """

    kind: str
    dst_lid: int
    dst_qpn: int
    src_lid: int
    src_qpn: int
    nbytes: int
    payload: Any = None
    #: Target virtual address / rkey for RDMA and atomics.
    raddr: int = 0
    rkey: int = 0
    #: Correlates requests with responses/acks at the initiator.
    token: int = 0
    #: Atomic operands.
    compare: int = 0
    swap_or_add: int = 0

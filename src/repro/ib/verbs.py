"""Per-PE verbs context: the API upper layers program against.

All *time-charging* happens here: methods are generators the calling
PE-process must ``yield from``, so every CPU/HCA cost lands on the
right actor's timeline.  Protocol state changes themselves live in
:mod:`repro.ib.qp`.

The context also keeps the per-process **resource ledger** (QPs,
connections, registered bytes, QP memory) that Figure 9 and Table I
report.

Bulk accounting (static wire-up at scale)
-----------------------------------------
A fully-connected job at 8K PEs would need 67M QP objects — far beyond
what any simulator can hold.  The static conduit therefore uses
:meth:`VerbsContext.bulk_charge_rc_qps`, which charges the *exact same*
time and memory as ``n`` individual create+INIT+RTR+RTS sequences and
books them in the ledger, while actual QP objects are materialised
lazily on first use (with the creation cost already paid, so none is
charged again).  This is semantically equivalent for every quantity the
paper measures and is documented as a simulation technique in DESIGN.md.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..cluster import CostModel
from ..errors import RemoteAccessError, VerbsError
from ..sim import Counters, Simulator
from .cq import CompletionQueue
from .hca import HCA
from .memory import MemoryManager, MemoryRegion
from .qp import RCQueuePair, UDQueuePair
from .types import EndpointAddress, WCStatus

__all__ = ["VerbsContext"]


class VerbsContext:
    """One PE's handle onto its node's HCA."""

    def __init__(
        self,
        sim: Simulator,
        hca: HCA,
        rank: int,
        cost: CostModel,
        counters: Counters,
    ) -> None:
        self.sim = sim
        self.hca = hca
        self.rank = rank
        self.cost = cost
        self.counters = counters
        self.mm = MemoryManager(rank)
        # -- resource ledger (per process) --
        self.rc_qps_created = 0
        self.ud_qps_created = 0
        self.connections_established = 0
        self.qp_memory_bytes = 0
        self.registered_bytes = 0
        #: QPs pre-charged by bulk accounting that may be materialised free.
        self._prepaid_rc_qps = 0

    # ------------------------------------------------------------------
    # CQs
    # ------------------------------------------------------------------
    def create_cq(self, name: str = "cq") -> CompletionQueue:
        return CompletionQueue(self.sim, name=f"pe{self.rank}.{name}")

    # ------------------------------------------------------------------
    # UD
    # ------------------------------------------------------------------
    def create_ud_qp(
        self, send_cq: CompletionQueue, recv_cq: CompletionQueue
    ) -> Generator:
        """Create and activate a UD QP (yields creation time)."""
        yield self.cost.ud_qp_create_us
        qp = UDQueuePair(self.hca, send_cq, recv_cq, self.rank)
        qp.activate()
        self.ud_qps_created += 1
        self.qp_memory_bytes += self.cost.ud_qp_memory_bytes
        self.counters.add("verbs.ud_qp_created")
        return qp

    def ud_send(
        self, qp: UDQueuePair, dst: EndpointAddress, payload, nbytes: int,
        wr_id: int = 0,
    ) -> Generator:
        yield self.cost.post_wr_us
        qp.post_send(dst, payload, nbytes, wr_id=wr_id)

    # ------------------------------------------------------------------
    # RC
    # ------------------------------------------------------------------
    def create_rc_qp(
        self,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        prepaid: bool = False,
    ) -> Generator:
        """Create an RC QP in RESET (yields creation time unless prepaid)."""
        if prepaid and self._prepaid_rc_qps > 0:
            self._prepaid_rc_qps -= 1
        else:
            yield self.cost.rc_qp_create_us
            # A fault plan may fail the creation ENOMEM-style *after*
            # the attempt's time is spent, as a real ibv_create_qp does.
            self.hca.try_alloc_rc_context(self.rank)
            self.rc_qps_created += 1
            self.qp_memory_bytes += self.cost.rc_qp_memory_bytes
            self.counters.add("verbs.rc_qp_created")
        qp = RCQueuePair(self.hca, send_cq, recv_cq, self.rank)
        return qp

    def connect_rc_qp(
        self, qp: RCQueuePair, remote: EndpointAddress, prepaid: bool = False
    ) -> Generator:
        """Drive the QP through INIT->RTR->RTS toward ``remote``."""
        if not prepaid:
            yield self.cost.qp_modify_init_us
        qp.modify_to_init()
        if not prepaid:
            yield self.cost.qp_modify_rtr_us
        qp.modify_to_rtr(remote)
        if not prepaid:
            yield self.cost.qp_modify_rts_us
        qp.modify_to_rts()
        if not prepaid:
            self.connections_established += 1
            self.qp_memory_bytes += self.cost.conn_state_bytes
            self.counters.add("verbs.rc_connected")
        if False:  # pragma: no cover - keeps this a generator when prepaid
            yield

    def modify_init(self, qp: RCQueuePair) -> Generator:
        """RESET -> INIT (charged)."""
        yield self.cost.qp_modify_init_us
        qp.modify_to_init()

    def modify_rtr(self, qp: RCQueuePair, remote: EndpointAddress) -> Generator:
        """INIT -> RTR toward ``remote`` (charged)."""
        yield self.cost.qp_modify_rtr_us
        qp.modify_to_rtr(remote)

    def modify_rts(self, qp: RCQueuePair) -> Generator:
        """RTR -> RTS (charged); books the established connection."""
        yield self.cost.qp_modify_rts_us
        qp.modify_to_rts()
        self.connections_established += 1
        self.qp_memory_bytes += self.cost.conn_state_bytes
        self.counters.add("verbs.rc_connected")

    def destroy_qp(self, qp) -> Generator:
        """Tear a QP down (charged)."""
        yield self.cost.qp_destroy_us
        qp.destroy()

    def bulk_charge_qp_destroy(self, n: int) -> Generator:
        """Charge teardown time for ``n`` QPs without materialising them."""
        yield n * self.cost.qp_destroy_us

    def bulk_charge_rc_qps(self, n: int, connect: bool = True) -> Generator:
        """Charge time+memory for ``n`` full RC QP setups without objects.

        Used by the static conduit's wire-up (see module docstring).
        ``connect=True`` additionally charges the three state
        transitions and counts the connections.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        per_qp = self.cost.rc_qp_create_us
        if connect:
            per_qp += (
                self.cost.qp_modify_init_us
                + self.cost.qp_modify_rtr_us
                + self.cost.qp_modify_rts_us
            )
        yield n * per_qp
        self.rc_qps_created += n
        self.qp_memory_bytes += n * self.cost.rc_qp_memory_bytes
        if connect:
            self.connections_established += n
            self.qp_memory_bytes += n * self.cost.conn_state_bytes
            self.counters.add("verbs.rc_connected", n)
        self._prepaid_rc_qps += n
        self.counters.add("verbs.rc_qp_created", n)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def reg_mr(self, addr: int, model_bytes: Optional[int] = None) -> Generator:
        """Register the allocation at ``addr`` (yields pinning time).

        ``model_bytes`` overrides the size used for the *cost and
        accounting* (see SymmetricHeap: the simulator may back a large
        modelled region with a smaller real buffer).
        """
        buf = self.mm.buffer_of(addr)
        size_for_cost = model_bytes if model_bytes is not None else len(buf)
        yield self.cost.mr_register_us(size_for_cost)
        region = self.mm.register(addr)
        self.hca.expose_memory(self.mm, region)
        self.registered_bytes += size_for_cost
        self.counters.add("verbs.mr_registered")
        return region

    def dereg_mr(self, region: MemoryRegion) -> Generator:
        yield self.cost.mr_deregister_us
        self.hca.hide_memory(region)
        self.mm.deregister(region)
        self.registered_bytes -= region.size

    # ------------------------------------------------------------------
    # Posting helpers (charge post overhead, then fire)
    # ------------------------------------------------------------------
    def post_send(self, qp: RCQueuePair, payload, nbytes: int, wr_id: int = 0):
        yield self.cost.post_wr_us
        qp.post_send(payload, nbytes, wr_id=wr_id)

    def post_rdma_write(
        self, qp: RCQueuePair, data: bytes, raddr: int, rkey: int, wr_id: int = 0
    ):
        yield self.cost.post_wr_us
        qp.post_rdma_write(data, raddr, rkey, wr_id=wr_id)

    def post_rdma_read(
        self, qp: RCQueuePair, nbytes: int, raddr: int, rkey: int, wr_id: int = 0
    ):
        yield self.cost.post_wr_us
        qp.post_rdma_read(nbytes, raddr, rkey, wr_id=wr_id)

    def post_atomic(
        self,
        qp: RCQueuePair,
        op: str,
        raddr: int,
        rkey: int,
        compare: int = 0,
        swap_or_add: int = 0,
        wr_id: int = 0,
    ):
        yield self.cost.post_wr_us + self.cost.atomic_extra_us
        qp.post_atomic(
            op, raddr, rkey, compare=compare, swap_or_add=swap_or_add, wr_id=wr_id
        )

    def poll(self, cq: CompletionQueue):
        """Wait for (and charge the poll cost of) one completion.

        Error completions raise at the requester, as real verbs users
        treat them: a remote-access NAK (e.g. the target deregistered
        the region mid-flight) surfaces as :class:`RemoteAccessError`,
        anything else as :class:`VerbsError`.
        """
        wc = yield cq.wait()
        yield self.cost.poll_cq_us
        if wc.status is not WCStatus.SUCCESS:
            if wc.status is WCStatus.REMOTE_ACCESS_ERROR:
                raise RemoteAccessError(
                    f"PE {self.rank}: {wc.opcode.value} wr_id={wc.wr_id} "
                    f"failed remotely: {wc.data}"
                )
            raise VerbsError(
                f"PE {self.rank}: {wc.opcode.value} wr_id={wc.wr_id} "
                f"completed with {wc.status.value}"
            )
        return wc

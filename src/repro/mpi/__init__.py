"""Minimal MPI layer over the unified conduit (for hybrid apps)."""

from .comm import Communicator

__all__ = ["Communicator"]

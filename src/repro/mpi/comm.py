"""Minimal MPI over the unified runtime.

Hybrid MPI+OpenSHMEM applications (the paper's Graph500, Section V-E)
get a :class:`Communicator` that rides the *same* conduit — and hence
the same connections — as the OpenSHMEM side.  This is the
MVAPICH2-X unified-runtime property: the hybrid program does not pay
for two separate fully-wired runtimes, and an on-demand connection made
by either model is reused by the other.

Implemented: blocking ``send``/``recv`` with (source, tag) matching,
``sendrecv``, ``barrier``, ``bcast``, ``allreduce``, ``allgather``,
``alltoall``, ``gather`` — enough for the paper's hybrid workloads.
Payloads are Python objects; ``nbytes`` (or a numpy array's size)
drives the timing model.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..errors import MPIError
from ..shmem.collectives import tree_parent_children
from ..sim import Mailbox

__all__ = ["Communicator"]

_MPI_HANDLER = "mpi.msg"


def _size_of(data: Any, nbytes: Optional[int]) -> int:
    if nbytes is not None:
        return nbytes
    if isinstance(data, np.ndarray):
        return data.nbytes
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    return 64  # generic small Python object


class Communicator:
    """MPI_COMM_WORLD over the PE's existing conduit."""

    def __init__(self, pe) -> None:
        self.pe = pe
        self.sim = pe.sim
        self.conduit = pe.conduit
        self.rank = pe.rank
        self.size = pe.npes
        self._chans: Dict[Tuple, Mailbox] = {}
        self._coll_seq: Dict[str, int] = defaultdict(int)
        self.conduit.register_handler(_MPI_HANDLER, self._on_message)

    # ------------------------------------------------------------------
    def _chan(self, key: Tuple) -> Mailbox:
        mbox = self._chans.get(key)
        if mbox is None:
            mbox = Mailbox(self.sim, name=f"mpi-{self.rank}-{key}")
            self._chans[key] = mbox
        return mbox

    def _on_message(self, src: int, data) -> None:
        key, payload = data
        self._chan(key).send((src, payload))

    def _next_seq(self, kind: str) -> int:
        seq = self._coll_seq[kind]
        self._coll_seq[kind] += 1
        return seq

    def _send_key(self, peer: int, key: Tuple, payload: Any,
                  nbytes: int) -> Generator:
        yield from self.conduit.am_send(
            peer, _MPI_HANDLER, data=(key, payload), data_bytes=nbytes
        )

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, dest: int, data: Any, tag: int = 0,
             nbytes: Optional[int] = None) -> Generator:
        """MPI_Send (blocking, rendezvous-free model)."""
        if not (0 <= dest < self.size):
            raise MPIError(f"rank {self.rank}: invalid dest {dest}")
        self.pe.counters.add("mpi.sends")
        key = ("p2p", self.rank, tag)
        yield from self._send_key(dest, key, data, _size_of(data, nbytes))

    def recv(self, source: int, tag: int = 0) -> Generator:
        """MPI_Recv: blocks until a matching message arrives."""
        if not (0 <= source < self.size):
            raise MPIError(f"rank {self.rank}: invalid source {source}")
        self.pe.counters.add("mpi.recvs")
        key = ("p2p", source, tag)
        _src, payload = yield self._chan(key).recv()
        return payload

    def sendrecv(self, dest: int, data: Any, source: int,
                 tag: int = 0, nbytes: Optional[int] = None) -> Generator:
        """MPI_Sendrecv (deadlock-free exchange)."""
        yield from self.send(dest, data, tag=tag, nbytes=nbytes)
        result = yield from self.recv(source, tag=tag)
        return result

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        """MPI_Barrier: tree gather + release."""
        self.pe.counters.add("mpi.barriers")
        seq = self._next_seq("bar")
        parent, children = tree_parent_children(self.rank, self.size)
        up, down = ("cbar", seq, "u"), ("cbar", seq, "d")
        for _ in children:
            yield self._chan(up).recv()
        if parent is not None:
            yield from self._send_key(parent, up, None, 0)
            yield self._chan(down).recv()
        for child in children:
            yield from self._send_key(child, down, None, 0)

    def bcast(self, data: Any, root: int = 0,
              nbytes: Optional[int] = None) -> Generator:
        """MPI_Bcast: returns the broadcast value on every rank."""
        self.pe.counters.add("mpi.bcasts")
        seq = self._next_seq("bcast")
        key = ("cbc", seq)
        parent, children = tree_parent_children(self.rank, self.size, root)
        if parent is not None:
            _src, data = yield self._chan(key).recv()
        size = _size_of(data, nbytes)
        for child in children:
            yield from self._send_key(child, key, data, size)
        return data

    def reduce(self, value: Any, op: Callable[[Any, Any], Any],
               root: int = 0, nbytes: Optional[int] = None) -> Generator:
        """MPI_Reduce with a Python combiner; result only at root."""
        self.pe.counters.add("mpi.reduces")
        seq = self._next_seq("red")
        key = ("cred", seq)
        parent, children = tree_parent_children(self.rank, self.size, root)
        acc = value
        for _ in children:
            _src, contrib = yield self._chan(key).recv()
            acc = op(acc, contrib)
        if parent is not None:
            yield from self._send_key(parent, key, acc, _size_of(acc, nbytes))
            return None
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any],
                  nbytes: Optional[int] = None) -> Generator:
        """MPI_Allreduce = reduce to 0 + bcast."""
        total = yield from self.reduce(value, op, root=0, nbytes=nbytes)
        result = yield from self.bcast(total, root=0, nbytes=nbytes)
        return result

    def allgather(self, value: Any, nbytes: Optional[int] = None) -> Generator:
        """MPI_Allgather (Bruck dissemination); returns a list by rank."""
        self.pe.counters.add("mpi.allgathers")
        n = self.size
        seq = self._next_seq("ag")
        blocks = {self.rank: value}
        stages = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        per = _size_of(value, nbytes)
        for k in range(stages):
            s = 1 << k
            dst = (self.rank - s) % n
            key = ("cag", seq, k)
            yield from self._send_key(dst, key, dict(blocks), per * len(blocks))
            _src, incoming = yield self._chan(key).recv()
            blocks.update(incoming)
        return [blocks[r] for r in range(n)]

    def gather(self, value: Any, root: int = 0,
               nbytes: Optional[int] = None) -> Generator:
        """MPI_Gather; list at root (rank order), None elsewhere."""
        gathered = yield from self.reduce(
            {self.rank: value},
            lambda a, b: {**a, **b},
            root=root,
            nbytes=nbytes,
        )
        if gathered is None:
            return None
        return [gathered[r] for r in range(self.size)]

    def alltoall(self, values: List[Any],
                 nbytes_each: Optional[int] = None) -> Generator:
        """MPI_Alltoall: values[i] goes to rank i; returns received list."""
        if len(values) != self.size:
            raise MPIError(
                f"alltoall needs {self.size} values, got {len(values)}"
            )
        self.pe.counters.add("mpi.alltoalls")
        seq = self._next_seq("a2a")
        key = ("ca2a", seq)
        out: List[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        # Pairwise exchange: round r partner = rank XOR r (power-of-2)
        # or linear shifts otherwise.
        n = self.size
        for shift in range(1, n):
            dst = (self.rank + shift) % n
            src = (self.rank - shift) % n
            yield from self._send_key(
                dst, key + (shift,), values[dst],
                _size_of(values[dst], nbytes_each),
            )
            _s, payload = yield self._chan(key + (shift,)).recv()
            out[src] = payload
        return out

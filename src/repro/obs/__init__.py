"""repro.obs — the flight recorder: spans, metrics, exporters.

One :class:`Observability` object per observed :class:`~repro.core.job.
Job` aggregates the two recording surfaces:

* :attr:`Observability.spans` — a :class:`SpanTracer` capturing nested,
  causally-linked spans across every substrate (SHMEM startup phases,
  on-demand handshakes, QP state machines, PMI collectives, fault
  hits);
* :attr:`Observability.metrics` — a :class:`MetricsRegistry` of
  counters/gauges/histograms, which also subsumes the legacy flat
  ``Counters`` via :meth:`Observability.counters_facade`.

Layers hold a plain ``obs`` attribute that is ``None`` unless the job
was built with ``observe=True`` — instrumentation sites cost exactly
one predicate check when observation is off (the ``KernelProfile.
_prof`` discipline), which is what keeps the golden traces and the
wall-clock bench untouched by this module's existence.

Export with :meth:`Observability.chrome_trace` (Perfetto-loadable) or
:meth:`Observability.flat_spans` (byte-stable golden text), or from the
command line::

    PYTHONPATH=src python -m repro.obs --npes 64 --out trace.json
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim import Simulator
from .diff import (
    diff_snapshots,
    format_diff,
    load_snapshot,
    series_final,
    series_peak,
)
from .export import (
    chrome_trace,
    flat_dump,
    parse_prometheus_text,
    parse_timeline_csv,
    prometheus_text,
    span_descendants,
    span_index,
    timeline_counter_events,
    timeline_csv,
    validate_chrome_trace,
)
from .metrics import (
    BUCKET_BOUNDS,
    Counter,
    CountersBridge,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
)
from .spans import Span, SpanTracer
from .timeline import (
    Probe,
    SeriesBuffer,
    Timeline,
    TimelineConfig,
    canonical_observe,
    parse_observe,
)

__all__ = [
    "Observability",
    "Span",
    "SpanTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "CountersBridge",
    "BUCKET_BOUNDS",
    "bucket_index",
    "Timeline",
    "TimelineConfig",
    "Probe",
    "SeriesBuffer",
    "parse_observe",
    "canonical_observe",
    "chrome_trace",
    "flat_dump",
    "span_index",
    "span_descendants",
    "validate_chrome_trace",
    "timeline_counter_events",
    "timeline_csv",
    "parse_timeline_csv",
    "prometheus_text",
    "parse_prometheus_text",
    "load_snapshot",
    "diff_snapshots",
    "format_diff",
    "series_peak",
    "series_final",
]


class Observability:
    """Span tracer + metrics registry for one observed job."""

    def __init__(self, sim: Simulator, span_capacity: int = 1_000_000,
                 timeline: Optional[TimelineConfig] = None) -> None:
        self.sim = sim
        self.spans = SpanTracer(sim, capacity=span_capacity)
        self.metrics = MetricsRegistry()
        #: Time-series sampler; ``None`` unless the job asked for
        #: ``observe={"timeline": ...}``.
        self.timeline: Optional[Timeline] = (
            Timeline(sim, timeline) if timeline is not None else None
        )

    def counters_facade(self) -> CountersBridge:
        """A ``sim.trace.Counters``-compatible view feeding the registry."""
        return CountersBridge(self.metrics)

    # ------------------------------------------------------------------
    # results / export
    # ------------------------------------------------------------------
    def telemetry(self) -> Dict[str, Any]:
        """The ``JobResult.telemetry`` payload: span stats + metric dump
        (+ the timeline snapshot when sampling was enabled)."""
        open_spans = sum(1 for s in self.spans if s.end_us is None)
        payload: Dict[str, Any] = {
            "spans": {
                "count": len(self.spans),
                "dropped": self.spans.dropped,
                "open": open_spans,
            },
            "metrics": self.metrics.snapshot(),
        }
        if self.timeline is not None:
            payload["timeline"] = self.timeline.snapshot()
        return payload

    def chrome_trace(self, label: str = "repro simulated job") -> Dict[str, Any]:
        """Chrome trace-event JSON object (see :func:`export.chrome_trace`).

        When a timeline is attached its series are merged in as counter
        ("C") tracks, so footprint curves render under the span rows.
        """
        timeline = (self.timeline.snapshot()
                    if self.timeline is not None else None)
        return chrome_trace(self.spans, label=label,
                            dropped=self.spans.dropped,
                            timeline=timeline)

    def flat_spans(self) -> List[str]:
        """Deterministic flat-text span dump for golden comparisons."""
        lines = flat_dump(self.spans)
        if self.spans.dropped:
            lines.append(f"# dropped {self.spans.dropped} spans "
                         f"(capacity {self.spans.capacity})")
        return lines

"""CLI: run an observed job and export its flight-recorder data.

Used by the CI ``obs-smoke`` step and by hand::

    PYTHONPATH=src python -m repro.obs --npes 64 --testbed B \
        --out trace.json --flat spans.txt --validate --summary

Open ``trace.json`` at https://ui.perfetto.dev (or ``chrome://tracing``)
to browse one track per PE plus fabric/pmi/faults tracks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..apps.heat2d import Heat2D
from ..apps.hello import HelloWorld
from ..cluster import cluster_a, cluster_b
from ..core import Job, RuntimeConfig
from .export import validate_chrome_trace

_APPS = {
    "hello": lambda: HelloWorld(),
    "heat2d": lambda: Heat2D(),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a simulated job with the flight recorder on and "
                    "export spans/metrics.",
    )
    p.add_argument("--npes", type=int, default=64, help="number of PEs")
    p.add_argument("--ppn", type=int, default=None, help="PEs per node")
    p.add_argument("--testbed", choices=("A", "B"), default="B",
                   help="paper testbed preset (default B)")
    p.add_argument("--config", choices=("current", "proposed"),
                   default="proposed",
                   help="runtime design point (default proposed = on-demand)")
    p.add_argument("--app", choices=sorted(_APPS), default="hello",
                   help="application to run")
    p.add_argument("--seed", type=int, default=None, help="override RNG seed")
    p.add_argument("--out", default=None, metavar="TRACE.json",
                   help="write Chrome trace-event JSON here")
    p.add_argument("--flat", default=None, metavar="SPANS.txt",
                   help="write the deterministic flat span dump here")
    p.add_argument("--validate", action="store_true",
                   help="schema-validate the Chrome trace before writing")
    p.add_argument("--summary", action="store_true",
                   help="print telemetry summary to stdout")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    config = (RuntimeConfig.current() if args.config == "current"
              else RuntimeConfig.proposed())
    if args.seed is not None:
        config = config.evolve(seed=args.seed)
    if args.testbed == "A":
        cluster = cluster_a(args.npes, ppn=args.ppn or 8)
    else:
        cluster = cluster_b(args.npes, ppn=args.ppn or 16)

    job = Job(npes=args.npes, config=config, cluster=cluster, observe=True)
    result = job.run(_APPS[args.app]())

    trace = job.obs.chrome_trace(
        label=f"{args.app} npes={args.npes} {config.label}")
    if args.validate:
        stats = validate_chrome_trace(trace)
        print(f"trace OK: {sum(stats.values())} events "
              f"({', '.join(f'{k}={v}' for k, v in sorted(stats.items()))})")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(trace, fh, indent=None, separators=(",", ":"))
        print(f"wrote {args.out}: {len(trace['traceEvents'])} trace events")
    if args.flat:
        with open(args.flat, "w") as fh:
            fh.write("\n".join(job.obs.flat_spans()) + "\n")
        print(f"wrote {args.flat}: {len(job.obs.spans)} spans")

    if args.summary:
        tele = result.telemetry or {}
        print(json.dumps({
            "npes": args.npes,
            "config": config.label,
            "wall_time_us": result.wall_time_us,
            "spans": tele.get("spans"),
            "counters": tele.get("metrics", {}).get("counters"),
            "histograms": sorted(
                tele.get("metrics", {}).get("histograms", {})),
        }, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

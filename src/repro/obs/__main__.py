"""CLI: run an observed job and export its flight-recorder data, or
diff two telemetry snapshots.

Used by the CI ``obs-smoke`` step and by hand::

    PYTHONPATH=src python -m repro.obs --npes 64 --testbed B \
        --out trace.json --flat spans.txt --validate --summary

    PYTHONPATH=src python -m repro.obs --npes 64 --timeline \
        --csv timeline.csv --prom metrics.prom

    PYTHONPATH=src python -m repro.obs diff run_a.json run_b.json

Open ``trace.json`` at https://ui.perfetto.dev (or ``chrome://tracing``)
to browse one track per PE plus fabric/pmi/faults tracks — and, with
``--timeline``, counter tracks of every sampled series.

Bad inputs (missing/corrupt telemetry files, unwritable output paths)
exit with code 2 and a one-line error on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..apps.heat2d import Heat2D
from ..apps.hello import HelloWorld
from ..cluster import cluster_a, cluster_b
from ..core import Job, RuntimeConfig
from .diff import diff_snapshots, format_diff, load_snapshot
from .export import prometheus_text, timeline_csv, validate_chrome_trace

_APPS = {
    "hello": lambda: HelloWorld(),
    "heat2d": lambda: Heat2D(),
}


class CliError(Exception):
    """User-facing failure: printed as one line, exits nonzero."""


def _validate_output_path(path: str, flag: str) -> str:
    """Fail fast (one line, exit 2) on unwritable output destinations
    instead of tracebacking after an expensive simulated run."""
    if not path:
        raise CliError(f"{flag}: empty output path")
    if os.path.isdir(path):
        raise CliError(f"{flag}: {path!r} is a directory")
    parent = os.path.dirname(path) or "."
    if not os.path.isdir(parent):
        raise CliError(f"{flag}: directory {parent!r} does not exist")
    return path


# ----------------------------------------------------------------------
# run subcommand (the default, flag-only invocation)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a simulated job with the flight recorder on and "
                    "export spans/metrics/timeline "
                    "(or: python -m repro.obs diff A B).",
    )
    p.add_argument("--npes", type=int, default=64, help="number of PEs")
    p.add_argument("--ppn", type=int, default=None, help="PEs per node")
    p.add_argument("--testbed", choices=("A", "B"), default="B",
                   help="paper testbed preset (default B)")
    p.add_argument("--config", choices=("current", "proposed"),
                   default="proposed",
                   help="runtime design point (default proposed = on-demand)")
    p.add_argument("--app", choices=sorted(_APPS), default="hello",
                   help="application to run")
    p.add_argument("--seed", type=int, default=None, help="override RNG seed")
    p.add_argument("--timeline", action="store_true",
                   help="enable the time-series sampler (counter tracks in "
                        "the Chrome trace, --csv/--prom exports)")
    p.add_argument("--interval-us", type=float, default=None,
                   metavar="US", help="timeline sampling cadence "
                   "(simulated us; implies --timeline)")
    p.add_argument("--out", default=None, metavar="TRACE.json",
                   help="write Chrome trace-event JSON here")
    p.add_argument("--flat", default=None, metavar="SPANS.txt",
                   help="write the deterministic flat span dump here")
    p.add_argument("--csv", default=None, metavar="TIMELINE.csv",
                   help="write the timeline series as CSV here")
    p.add_argument("--prom", default=None, metavar="METRICS.prom",
                   help="write Prometheus-style metrics exposition here")
    p.add_argument("--telemetry", default=None, metavar="TELEMETRY.json",
                   help="write the full JobResult.telemetry JSON here "
                        "(the input format of `repro.obs diff`)")
    p.add_argument("--validate", action="store_true",
                   help="schema-validate the Chrome trace before writing "
                        "(with --timeline, also require counter tracks)")
    p.add_argument("--summary", action="store_true",
                   help="print telemetry summary to stdout")
    return p


def _run_main(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)

    timeline_on = args.timeline or args.interval_us is not None
    if args.csv and not timeline_on:
        raise CliError("--csv requires --timeline")
    outputs = [("--out", args.out), ("--flat", args.flat),
               ("--csv", args.csv), ("--prom", args.prom),
               ("--telemetry", args.telemetry)]
    for flag, path in outputs:
        if path is not None:
            _validate_output_path(path, flag)
    if args.interval_us is not None and args.interval_us <= 0:
        raise CliError(f"--interval-us must be positive, got {args.interval_us}")

    config = (RuntimeConfig.current() if args.config == "current"
              else RuntimeConfig.proposed())
    if args.seed is not None:
        config = config.evolve(seed=args.seed)
    if args.testbed == "A":
        cluster = cluster_a(args.npes, ppn=args.ppn or 8)
    else:
        cluster = cluster_b(args.npes, ppn=args.ppn or 16)

    if timeline_on:
        tl_opts = {}
        if args.interval_us is not None:
            tl_opts["interval_us"] = args.interval_us
        observe = {"timeline": tl_opts or True}
    else:
        observe = True
    job = Job(npes=args.npes, config=config, cluster=cluster, observe=observe)
    result = job.run(_APPS[args.app]())

    trace = job.obs.chrome_trace(
        label=f"{args.app} npes={args.npes} {config.label}")
    if args.validate:
        stats = validate_chrome_trace(trace)
        if timeline_on and not stats.get("C"):
            raise CliError("trace validation failed: --timeline was on but "
                           "the export contains no counter (C) events")
        print(f"trace OK: {sum(stats.values())} events "
              f"({', '.join(f'{k}={v}' for k, v in sorted(stats.items()))})")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(trace, fh, indent=None, separators=(",", ":"))
        print(f"wrote {args.out}: {len(trace['traceEvents'])} trace events")
    if args.flat:
        with open(args.flat, "w") as fh:
            fh.write("\n".join(job.obs.flat_spans()) + "\n")
        print(f"wrote {args.flat}: {len(job.obs.spans)} spans")

    tele = result.telemetry or {}
    if args.csv:
        snapshot = tele.get("timeline", {"series": {}})
        with open(args.csv, "w") as fh:
            fh.write(timeline_csv(snapshot))
        print(f"wrote {args.csv}: {len(snapshot.get('series', {}))} series")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prometheus_text(tele.get("metrics", {})))
        print(f"wrote {args.prom}")
    if args.telemetry:
        with open(args.telemetry, "w") as fh:
            json.dump(tele, fh, indent=None, separators=(",", ":"))
        print(f"wrote {args.telemetry}")

    if args.summary:
        summary = {
            "npes": args.npes,
            "config": config.label,
            "wall_time_us": result.wall_time_us,
            "spans": tele.get("spans"),
            "counters": tele.get("metrics", {}).get("counters"),
            "histograms": sorted(
                tele.get("metrics", {}).get("histograms", {})),
        }
        if "timeline" in tele:
            summary["timeline"] = {
                "samples": tele["timeline"]["samples"],
                "series": sorted(tele["timeline"]["series"]),
            }
        print(json.dumps(summary, indent=2))
    return 0


# ----------------------------------------------------------------------
# diff subcommand
# ----------------------------------------------------------------------
def build_diff_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Align two telemetry snapshots (JSON / CSV / "
                    "Prometheus text) and report per-series deltas.",
    )
    p.add_argument("a", metavar="A", help="baseline snapshot")
    p.add_argument("b", metavar="B", help="comparison snapshot")
    p.add_argument("--json", action="store_true",
                   help="emit the raw diff report as JSON")
    p.add_argument("--output", default=None, metavar="REPORT",
                   help="write the report here instead of stdout")
    return p


def _diff_main(argv: List[str]) -> int:
    args = build_diff_parser().parse_args(argv)
    if args.output is not None:
        _validate_output_path(args.output, "--output")
    loaded = []
    for path in (args.a, args.b):
        try:
            loaded.append(load_snapshot(path))
        except OSError as exc:
            raise CliError(f"cannot read {path}: {exc.strerror or exc}")
        except ValueError as exc:
            raise CliError(str(exc))
    report = diff_snapshots(loaded[0], loaded[1])
    if args.json:
        text = json.dumps(report, indent=2)
    else:
        text = format_diff(report, label_a=args.a, label_b=args.b)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    try:
        if argv and argv[0] == "diff":
            return _diff_main(argv[1:])
        return _run_main(list(argv))
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Run comparison: align two telemetry snapshots, report the deltas.

The paper's experiments are *pairs* — static vs on-demand startup,
evict-never vs LRU churn — and the interesting result is always the
delta between two trajectories (e.g. fig9's footprint 57 vs 18 at
1,024 PEs).  This module turns any two telemetry artifacts into that
report:

* :func:`load_snapshot` accepts a ``JobResult.telemetry`` JSON dump, a
  bare timeline snapshot, a ``repro.obs`` CSV, or a Prometheus-style
  exposition, and normalises all of them to one shape.
* :func:`diff_snapshots` aligns the series/counters/histograms by key
  and computes per-series peak/final deltas, counter deltas, and
  histogram count/mean/p50/p99 deltas.
* :func:`format_diff` renders the report as deterministic text.

Command line::

    PYTHONPATH=src python -m repro.obs diff A.json B.json
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .export import parse_prometheus_text, parse_timeline_csv

__all__ = [
    "load_snapshot",
    "diff_snapshots",
    "format_diff",
    "series_peak",
    "series_final",
]


def _empty() -> Dict[str, Any]:
    return {"series": {}, "counters": {}, "gauges": {}, "histograms": {}}


def _normalize(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Map any of the JSON shapes we emit onto the canonical one."""
    snap = _empty()
    if "timeline" in obj and isinstance(obj["timeline"], dict):
        snap["series"] = obj["timeline"].get("series", {})
    elif "series" in obj:
        snap["series"] = obj.get("series", {})
    metrics = obj.get("metrics", obj)
    if isinstance(metrics, dict):
        for kind in ("counters", "gauges", "histograms"):
            value = metrics.get(kind)
            if isinstance(value, dict):
                snap[kind] = value
    return snap


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read + normalise one telemetry artifact.

    Dispatches on content, not just extension: JSON objects
    (``JobResult.telemetry`` dumps, bare timeline snapshots, or metric
    snapshots), timeline CSVs, and Prometheus-style text all load.
    Raises ``OSError`` / ``ValueError`` with a one-line reason on
    missing or corrupt input (the CLI turns those into exit code 2).
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty telemetry file")
    if stripped.startswith(("{", "[")):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: corrupt JSON ({exc})") from None
        if not isinstance(obj, dict):
            raise ValueError(f"{path}: JSON telemetry must be an object")
        return _normalize(obj)
    first_line = stripped.splitlines()[0]
    if first_line.startswith("series,"):
        try:
            return _normalize(parse_timeline_csv(text))
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None
    if first_line.startswith("#") or os.path.splitext(path)[1] == ".prom":
        try:
            return _normalize({"metrics": parse_prometheus_text(text)})
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None
    raise ValueError(
        f"{path}: unrecognised telemetry format (expected JSON, "
        f"timeline CSV, or Prometheus-style text)"
    )


# ----------------------------------------------------------------------
# per-series reductions
# ----------------------------------------------------------------------
def series_peak(buf: Dict[str, Any]) -> float:
    """Largest windowed max — the high-water mark the series saw."""
    values = buf.get("max", [])
    return max(values) if values else 0.0


def series_final(buf: Dict[str, Any]) -> float:
    """The last stored sample value."""
    values = buf.get("last", [])
    return values[-1] if values else 0.0


def _align(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    return sorted(dict.fromkeys(list(a) + list(b)))


def diff_snapshots(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Align two normalised snapshots; compute per-key deltas.

    Every entry carries ``only_in`` (``None`` when present in both,
    else ``"a"``/``"b"``) so disappearing series are loud, not silent.
    Inputs may be canonical snapshots from :func:`load_snapshot` or raw
    ``JobResult.telemetry`` dicts (normalised here).
    """
    a = _normalize(a)
    b = _normalize(b)
    report: Dict[str, Any] = {"series": {}, "counters": {},
                              "gauges": {}, "histograms": {}}

    for key in _align(a["series"], b["series"]):
        sa, sb = a["series"].get(key), b["series"].get(key)
        entry: Dict[str, Any] = {
            "only_in": "a" if sb is None else ("b" if sa is None else None),
            "peak_a": series_peak(sa) if sa else None,
            "peak_b": series_peak(sb) if sb else None,
            "final_a": series_final(sa) if sa else None,
            "final_b": series_final(sb) if sb else None,
        }
        if entry["only_in"] is None:
            entry["peak_delta"] = entry["peak_b"] - entry["peak_a"]
            entry["final_delta"] = entry["final_b"] - entry["final_a"]
        report["series"][key] = entry

    for key in _align(a["counters"], b["counters"]):
        ca, cb = a["counters"].get(key), b["counters"].get(key)
        entry = {
            "only_in": "a" if cb is None else ("b" if ca is None else None),
            "a": ca, "b": cb,
        }
        if entry["only_in"] is None:
            entry["delta"] = cb - ca
        report["counters"][key] = entry

    for key in _align(a["gauges"], b["gauges"]):
        ga, gb = a["gauges"].get(key), b["gauges"].get(key)
        entry = {
            "only_in": "a" if gb is None else ("b" if ga is None else None),
            "value_a": ga["value"] if ga else None,
            "value_b": gb["value"] if gb else None,
            "max_a": ga["max"] if ga else None,
            "max_b": gb["max"] if gb else None,
        }
        if entry["only_in"] is None:
            entry["value_delta"] = entry["value_b"] - entry["value_a"]
            entry["max_delta"] = entry["max_b"] - entry["max_a"]
        report["gauges"][key] = entry

    for key in _align(a["histograms"], b["histograms"]):
        ha, hb = a["histograms"].get(key), b["histograms"].get(key)
        entry = {
            "only_in": "a" if hb is None else ("b" if ha is None else None),
        }
        for field in ("count", "mean", "p50", "p99"):
            entry[f"{field}_a"] = ha.get(field) if ha else None
            entry[f"{field}_b"] = hb.get(field) if hb else None
            if entry["only_in"] is None:
                entry[f"{field}_delta"] = (
                    entry[f"{field}_b"] - entry[f"{field}_a"]
                )
        report["histograms"][key] = entry

    return report


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _delta(value: Optional[float]) -> str:
    if value is None:
        return ""
    return f" ({'+' if value >= 0 else ''}{_fmt(value)})"


def format_diff(report: Dict[str, Any], label_a: str = "A",
                label_b: str = "B") -> str:
    """Deterministic text rendering of a :func:`diff_snapshots` report."""
    lines: List[str] = [f"telemetry diff: A={label_a}  B={label_b}"]

    if report["series"]:
        lines.append("")
        lines.append("series (peak / final):")
        for key, e in report["series"].items():
            if e["only_in"]:
                lines.append(f"  {key}: only in {e['only_in'].upper()}")
                continue
            lines.append(
                f"  {key}: peak {_fmt(e['peak_a'])} -> {_fmt(e['peak_b'])}"
                f"{_delta(e.get('peak_delta'))}, "
                f"final {_fmt(e['final_a'])} -> {_fmt(e['final_b'])}"
                f"{_delta(e.get('final_delta'))}"
            )

    changed = {k: e for k, e in report["counters"].items()
               if e["only_in"] or e.get("delta")}
    if changed:
        lines.append("")
        lines.append("counters (changed):")
        for key, e in changed.items():
            if e["only_in"]:
                lines.append(f"  {key}: only in {e['only_in'].upper()} "
                             f"({_fmt(e['a'] if e['a'] is not None else e['b'])})")
            else:
                lines.append(f"  {key}: {_fmt(e['a'])} -> {_fmt(e['b'])}"
                             f"{_delta(e['delta'])}")

    if report["gauges"]:
        lines.append("")
        lines.append("gauges (value / max):")
        for key, e in report["gauges"].items():
            if e["only_in"]:
                lines.append(f"  {key}: only in {e['only_in'].upper()}")
                continue
            lines.append(
                f"  {key}: value {_fmt(e['value_a'])} -> {_fmt(e['value_b'])}"
                f"{_delta(e.get('value_delta'))}, "
                f"max {_fmt(e['max_a'])} -> {_fmt(e['max_b'])}"
                f"{_delta(e.get('max_delta'))}"
            )

    if report["histograms"]:
        lines.append("")
        lines.append("histograms (count / mean / p50 / p99):")
        for key, e in report["histograms"].items():
            if e["only_in"]:
                lines.append(f"  {key}: only in {e['only_in'].upper()}")
                continue
            lines.append(
                f"  {key}: count {_fmt(e['count_a'])} -> {_fmt(e['count_b'])}"
                f"{_delta(e.get('count_delta'))}, "
                f"mean {_fmt(e['mean_a'])} -> {_fmt(e['mean_b'])}"
                f"{_delta(e.get('mean_delta'))}, "
                f"p50 {_fmt(e['p50_a'])} -> {_fmt(e['p50_b'])}"
                f"{_delta(e.get('p50_delta'))}, "
                f"p99 {_fmt(e['p99_a'])} -> {_fmt(e['p99_b'])}"
                f"{_delta(e.get('p99_delta'))}"
            )

    if len(lines) == 1:
        lines.append("(no overlapping telemetry)")
    return "\n".join(lines)

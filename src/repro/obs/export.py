"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and flat text.

Two formats, two purposes:

* :func:`chrome_trace` — the `Trace Event Format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  consumed by ``ui.perfetto.dev`` and ``chrome://tracing``.  One track
  (``tid``) per PE plus dedicated ``fabric`` / ``pmi`` / ``faults``
  tracks; durations become complete (``"X"``) events, instants become
  ``"i"`` events, and every cross-actor parent link becomes a flow
  (``"s"``/``"f"``) arrow so a connection establishment reads as one
  causal chain across tracks.

* :func:`flat_dump` — a deterministic one-line-per-span text form for
  golden tests: byte-for-byte comparable across runs, like
  ``Tracer.formatted()``.

:func:`validate_chrome_trace` is a dependency-free structural check of
the trace-event schema (used by the CI ``obs-smoke`` step — the
container installs nothing, so the validator lives here).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .spans import Span

__all__ = [
    "chrome_trace",
    "flat_dump",
    "span_index",
    "span_descendants",
    "validate_chrome_trace",
]

#: Well-known non-PE actors, in display order after the PE tracks.
_SPECIAL_ACTORS = ("fabric", "pmi", "faults")


def _actor_order(actors: Iterable[str]) -> List[str]:
    """PE tracks in rank order, then fabric/pmi/faults, then the rest."""
    pes: List[Tuple[int, str]] = []
    special: List[str] = []
    other: List[str] = []
    # dict.fromkeys, not set(): dedup without hash-order iteration (the
    # output is fully sorted below, but the lint bans the pattern
    # wholesale — see repro.check.lint).
    for actor in dict.fromkeys(actors):
        if actor.startswith("pe") and actor[2:].isdigit():
            pes.append((int(actor[2:]), actor))
        elif actor in _SPECIAL_ACTORS:
            special.append(actor)
        else:
            other.append(actor)
    ordered = [a for _, a in sorted(pes)]
    ordered += [a for a in _SPECIAL_ACTORS if a in special]
    ordered += sorted(other)
    return ordered


def chrome_trace(
    spans: Iterable[Span],
    label: str = "repro simulated job",
    dropped: int = 0,
) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object (not a string)."""
    spans = list(spans)
    by_id: Dict[int, Span] = {s.span_id: s for s in spans}
    actors = _actor_order(s.actor for s in spans)
    tids = {actor: i + 1 for i, actor in enumerate(actors)}
    pid = 1

    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": label},
    }]
    for actor in actors:
        events.append({
            "ph": "M", "pid": pid, "tid": tids[actor],
            "name": "thread_name", "args": {"name": actor},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": tids[actor],
            "name": "thread_sort_index", "args": {"sort_index": tids[actor]},
        })

    for span in spans:
        tid = tids[span.actor]
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        if span.end_us is not None and span.end_us > span.start_us:
            events.append({
                "name": span.name, "cat": "span", "ph": "X",
                "ts": span.start_us, "dur": span.end_us - span.start_us,
                "pid": pid, "tid": tid, "args": args,
            })
        else:
            if span.end_us is None:
                args["open"] = True
            events.append({
                "name": span.name, "cat": "span", "ph": "i",
                "ts": span.start_us, "pid": pid, "tid": tid,
                "s": "t", "args": args,
            })
        # Cross-actor causality: draw a flow arrow parent -> child.
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None and parent.actor != span.actor:
            # The "s" anchor must lie inside the parent slice.
            anchor = span.start_us
            if anchor < parent.start_us:
                anchor = parent.start_us
            if parent.end_us is not None and anchor > parent.end_us:
                anchor = parent.end_us
            events.append({
                "name": span.name, "cat": "causal", "ph": "s",
                "id": span.span_id, "ts": anchor,
                "pid": pid, "tid": tids[parent.actor],
            })
            events.append({
                "name": span.name, "cat": "causal", "ph": "f", "bp": "e",
                "id": span.span_id, "ts": span.start_us,
                "pid": pid, "tid": tid,
            })

    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"spans": len(spans), "dropped_spans": dropped},
    }
    return trace


def flat_dump(spans: Iterable[Span]) -> List[str]:
    """Canonical one-line-per-span form for byte-exact golden diffs.

    ``start|end|actor|name|span_id|parent_id|attrs`` with ``repr`` for
    times and attribute values (attributes key-sorted), mirroring
    ``Tracer.formatted``.
    """
    lines = []
    for s in spans:
        end = "open" if s.end_us is None else repr(s.end_us)
        attrs = (
            ",".join(f"{k}={s.attrs[k]!r}" for k in sorted(s.attrs))
            if s.attrs else "-"
        )
        parent = "-" if s.parent_id is None else str(s.parent_id)
        lines.append(
            f"{s.start_us!r}|{end}|{s.actor}|{s.name}|{s.span_id}|"
            f"{parent}|{attrs}"
        )
    return lines


# ----------------------------------------------------------------------
# tree reconstruction helpers (tests and analysis)
# ----------------------------------------------------------------------
def span_index(spans: Iterable[Span]) -> Dict[Optional[int], List[Span]]:
    """Map parent_id -> children, in recording order."""
    children: Dict[Optional[int], List[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    return children


def span_descendants(root: Span, children: Dict[Optional[int], List[Span]]
                     ) -> List[Span]:
    """Every span transitively parented under ``root`` (depth-first)."""
    out: List[Span] = []
    stack = list(reversed(children.get(root.span_id, [])))
    while stack:
        s = stack.pop()
        out.append(s)
        stack.extend(reversed(children.get(s.span_id, [])))
    return out


# ----------------------------------------------------------------------
# schema validation (CI obs-smoke)
# ----------------------------------------------------------------------
_KNOWN_PHASES = {"B", "E", "X", "i", "I", "M", "s", "t", "f", "C", "b", "e", "n"}
_NUMBER = (int, float)


def _fail(i: int, event: Any, why: str) -> None:
    raise ValueError(f"traceEvents[{i}]: {why} (event={event!r})")


def validate_chrome_trace(trace: Any) -> Dict[str, int]:
    """Structurally validate a trace-event JSON object.

    Checks the container shape and, per event, the fields the format
    requires for its phase type.  Returns ``{phase: count}`` stats;
    raises :class:`ValueError` with a precise location on violation.
    """
    if isinstance(trace, str):
        trace = json.loads(trace)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a 'traceEvents' key")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty array")

    stats: Dict[str, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            _fail(i, ev, "event is not an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            _fail(i, ev, f"unknown or missing ph {ph!r}")
        if not isinstance(ev.get("pid"), int):
            _fail(i, ev, "pid must be an int")
        if ph != "M":
            if not isinstance(ev.get("ts"), _NUMBER):
                _fail(i, ev, "ts must be a number")
            if ev["ts"] < 0:
                _fail(i, ev, "ts must be >= 0")
            if not isinstance(ev.get("tid"), int):
                _fail(i, ev, "tid must be an int")
        if ph in ("X", "B", "E", "i", "I", "s", "f", "C"):
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                _fail(i, ev, "name must be a non-empty string")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, _NUMBER) or dur < 0:
                _fail(i, ev, "X event needs dur >= 0")
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            _fail(i, ev, "instant scope must be one of t/p/g")
        if ph in ("s", "f") and "id" not in ev:
            _fail(i, ev, "flow event needs an id")
        if ph == "M":
            if ev.get("name") not in (
                "process_name", "thread_name", "process_sort_index",
                "thread_sort_index", "process_labels",
            ):
                _fail(i, ev, f"unknown metadata name {ev.get('name')!r}")
            if not isinstance(ev.get("args"), dict):
                _fail(i, ev, "metadata event needs args")
        stats[ph] = stats.get(ph, 0) + 1

    # Every flow start must have a matching finish (and vice versa).
    starts = {e["id"] for e in events if e.get("ph") == "s"}
    ends = {e["id"] for e in events if e.get("ph") == "f"}
    if starts != ends:
        raise ValueError(
            f"unmatched flow ids: starts-only={sorted(starts - ends)[:5]} "
            f"finishes-only={sorted(ends - starts)[:5]}"
        )
    return stats

"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and flat text.

Four formats, four purposes:

* :func:`chrome_trace` — the `Trace Event Format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  consumed by ``ui.perfetto.dev`` and ``chrome://tracing``.  One track
  (``tid``) per PE plus dedicated ``fabric`` / ``pmi`` / ``faults``
  tracks; durations become complete (``"X"``) events, instants become
  ``"i"`` events, and every cross-actor parent link becomes a flow
  (``"s"``/``"f"``) arrow so a connection establishment reads as one
  causal chain across tracks.

* :func:`flat_dump` — a deterministic one-line-per-span text form for
  golden tests: byte-for-byte comparable across runs, like
  ``Tracer.formatted()``.

* :func:`timeline_csv` / :func:`parse_timeline_csv` — the timeline
  sampler's series as one flat CSV (``series,kind,t_us,min,max,mean,
  last``) for offline plotting; floats are written with ``repr`` so
  the parse is an *exact* inverse (pinned by round-trip tests).

* :func:`prometheus_text` / :func:`parse_prometheus_text` — the
  metrics registry in Prometheus-style text exposition (``# TYPE``
  headers, cumulative ``le`` histogram buckets, ``_sum``/``_count``).
  Metric names keep their dotted form verbatim — close enough to feed
  standard tooling, exact enough to round-trip through
  ``repro.obs diff`` without loss.

:func:`validate_chrome_trace` is a dependency-free structural check of
the trace-event schema (used by the CI ``obs-smoke`` step — the
container installs nothing, so the validator lives here).
:func:`timeline_counter_events` renders a timeline snapshot as counter
("C") track events, merged into :func:`chrome_trace` via its
``timeline=`` argument so footprint curves render under the span rows.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .spans import Span

__all__ = [
    "chrome_trace",
    "flat_dump",
    "span_index",
    "span_descendants",
    "validate_chrome_trace",
    "timeline_counter_events",
    "timeline_csv",
    "parse_timeline_csv",
    "prometheus_text",
    "parse_prometheus_text",
]

#: Well-known non-PE actors, in display order after the PE tracks.
_SPECIAL_ACTORS = ("fabric", "pmi", "faults")


def _actor_order(actors: Iterable[str]) -> List[str]:
    """PE tracks in rank order, then fabric/pmi/faults, then the rest."""
    pes: List[Tuple[int, str]] = []
    special: List[str] = []
    other: List[str] = []
    # dict.fromkeys, not set(): dedup without hash-order iteration (the
    # output is fully sorted below, but the lint bans the pattern
    # wholesale — see repro.check.lint).
    for actor in dict.fromkeys(actors):
        if actor.startswith("pe") and actor[2:].isdigit():
            pes.append((int(actor[2:]), actor))
        elif actor in _SPECIAL_ACTORS:
            special.append(actor)
        else:
            other.append(actor)
    ordered = [a for _, a in sorted(pes)]
    ordered += [a for a in _SPECIAL_ACTORS if a in special]
    ordered += sorted(other)
    return ordered


def timeline_counter_events(
    timeline: Dict[str, Any], pid: int = 1, tid: int = 0,
) -> List[Dict[str, Any]]:
    """Render a timeline snapshot as Chrome counter ("C") track events.

    One counter track per series (Perfetto keys counter tracks by event
    ``name``, so they all share one synthetic ``tid``); one event per
    stored window carrying the window's *last* value — the level the
    quantity actually held when the window closed, which is what a
    footprint curve should draw.
    """
    events: List[Dict[str, Any]] = []
    series = timeline.get("series", {})
    for key in sorted(series):
        buf = series[key]
        times = buf["t"]
        lasts = buf["last"]
        for i in range(len(times)):
            events.append({
                "name": key, "cat": "timeline", "ph": "C",
                "ts": times[i], "pid": pid, "tid": tid,
                "args": {"value": lasts[i]},
            })
    return events


def chrome_trace(
    spans: Iterable[Span],
    label: str = "repro simulated job",
    dropped: int = 0,
    timeline: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object (not a string).

    ``timeline`` (a :meth:`Timeline.snapshot` dict) merges counter
    tracks into the same trace.
    """
    spans = list(spans)
    by_id: Dict[int, Span] = {s.span_id: s for s in spans}
    actors = _actor_order(s.actor for s in spans)
    tids = {actor: i + 1 for i, actor in enumerate(actors)}
    pid = 1

    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": label},
    }]
    for actor in actors:
        events.append({
            "ph": "M", "pid": pid, "tid": tids[actor],
            "name": "thread_name", "args": {"name": actor},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": tids[actor],
            "name": "thread_sort_index", "args": {"sort_index": tids[actor]},
        })

    for span in spans:
        tid = tids[span.actor]
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        if span.end_us is not None and span.end_us > span.start_us:
            events.append({
                "name": span.name, "cat": "span", "ph": "X",
                "ts": span.start_us, "dur": span.end_us - span.start_us,
                "pid": pid, "tid": tid, "args": args,
            })
        else:
            if span.end_us is None:
                args["open"] = True
            events.append({
                "name": span.name, "cat": "span", "ph": "i",
                "ts": span.start_us, "pid": pid, "tid": tid,
                "s": "t", "args": args,
            })
        # Cross-actor causality: draw a flow arrow parent -> child.
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None and parent.actor != span.actor:
            # The "s" anchor must lie inside the parent slice.
            anchor = span.start_us
            if anchor < parent.start_us:
                anchor = parent.start_us
            if parent.end_us is not None and anchor > parent.end_us:
                anchor = parent.end_us
            events.append({
                "name": span.name, "cat": "causal", "ph": "s",
                "id": span.span_id, "ts": anchor,
                "pid": pid, "tid": tids[parent.actor],
            })
            events.append({
                "name": span.name, "cat": "causal", "ph": "f", "bp": "e",
                "id": span.span_id, "ts": span.start_us,
                "pid": pid, "tid": tid,
            })

    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"spans": len(spans), "dropped_spans": dropped},
    }
    if timeline is not None:
        counter_events = timeline_counter_events(timeline, pid=pid)
        events.extend(counter_events)
        trace["otherData"]["counter_series"] = len(timeline.get("series", {}))
        trace["otherData"]["counter_samples"] = len(counter_events)
    return trace


def flat_dump(spans: Iterable[Span]) -> List[str]:
    """Canonical one-line-per-span form for byte-exact golden diffs.

    ``start|end|actor|name|span_id|parent_id|attrs`` with ``repr`` for
    times and attribute values (attributes key-sorted), mirroring
    ``Tracer.formatted``.
    """
    lines = []
    for s in spans:
        end = "open" if s.end_us is None else repr(s.end_us)
        attrs = (
            ",".join(f"{k}={s.attrs[k]!r}" for k in sorted(s.attrs))
            if s.attrs else "-"
        )
        parent = "-" if s.parent_id is None else str(s.parent_id)
        lines.append(
            f"{s.start_us!r}|{end}|{s.actor}|{s.name}|{s.span_id}|"
            f"{parent}|{attrs}"
        )
    return lines


# ----------------------------------------------------------------------
# tree reconstruction helpers (tests and analysis)
# ----------------------------------------------------------------------
def span_index(spans: Iterable[Span]) -> Dict[Optional[int], List[Span]]:
    """Map parent_id -> children, in recording order."""
    children: Dict[Optional[int], List[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    return children


def span_descendants(root: Span, children: Dict[Optional[int], List[Span]]
                     ) -> List[Span]:
    """Every span transitively parented under ``root`` (depth-first)."""
    out: List[Span] = []
    stack = list(reversed(children.get(root.span_id, [])))
    while stack:
        s = stack.pop()
        out.append(s)
        stack.extend(reversed(children.get(s.span_id, [])))
    return out


# ----------------------------------------------------------------------
# schema validation (CI obs-smoke)
# ----------------------------------------------------------------------
_KNOWN_PHASES = {"B", "E", "X", "i", "I", "M", "s", "t", "f", "C", "b", "e", "n"}
_NUMBER = (int, float)


def _fail(i: int, event: Any, why: str) -> None:
    raise ValueError(f"traceEvents[{i}]: {why} (event={event!r})")


def validate_chrome_trace(trace: Any) -> Dict[str, int]:
    """Structurally validate a trace-event JSON object.

    Checks the container shape and, per event, the fields the format
    requires for its phase type.  Returns ``{phase: count}`` stats;
    raises :class:`ValueError` with a precise location on violation.
    """
    if isinstance(trace, str):
        trace = json.loads(trace)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a 'traceEvents' key")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty array")

    stats: Dict[str, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            _fail(i, ev, "event is not an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            _fail(i, ev, f"unknown or missing ph {ph!r}")
        if not isinstance(ev.get("pid"), int):
            _fail(i, ev, "pid must be an int")
        if ph != "M":
            if not isinstance(ev.get("ts"), _NUMBER):
                _fail(i, ev, "ts must be a number")
            if ev["ts"] < 0:
                _fail(i, ev, "ts must be >= 0")
            if not isinstance(ev.get("tid"), int):
                _fail(i, ev, "tid must be an int")
        if ph in ("X", "B", "E", "i", "I", "s", "f", "C"):
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                _fail(i, ev, "name must be a non-empty string")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, _NUMBER) or dur < 0:
                _fail(i, ev, "X event needs dur >= 0")
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            _fail(i, ev, "instant scope must be one of t/p/g")
        if ph in ("s", "f") and "id" not in ev:
            _fail(i, ev, "flow event needs an id")
        if ph == "M":
            if ev.get("name") not in (
                "process_name", "thread_name", "process_sort_index",
                "thread_sort_index", "process_labels",
            ):
                _fail(i, ev, f"unknown metadata name {ev.get('name')!r}")
            if not isinstance(ev.get("args"), dict):
                _fail(i, ev, "metadata event needs args")
        stats[ph] = stats.get(ph, 0) + 1

    # Every flow start must have a matching finish (and vice versa).
    starts = {e["id"] for e in events if e.get("ph") == "s"}
    ends = {e["id"] for e in events if e.get("ph") == "f"}
    if starts != ends:
        raise ValueError(
            f"unmatched flow ids: starts-only={sorted(starts - ends)[:5]} "
            f"finishes-only={sorted(ends - starts)[:5]}"
        )
    return stats


# ----------------------------------------------------------------------
# timeline CSV (offline plotting; exact round trip)
# ----------------------------------------------------------------------
_CSV_HEADER = ("series", "kind", "t_us", "min", "max", "mean", "last")


def timeline_csv(timeline: Dict[str, Any]) -> str:
    """Flatten a timeline snapshot to CSV text.

    One row per stored window, series key-sorted then chronological.
    Floats are emitted with ``repr`` (`str` of a float in py3), so
    ``parse_timeline_csv`` recovers bit-identical values; series keys
    containing label commas (``x{a=1,b=2}``) are quoted by the csv
    module.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(_CSV_HEADER)
    series = timeline.get("series", {})
    for key in sorted(series):
        buf = series[key]
        kind = buf["kind"]
        t, lo, hi = buf["t"], buf["min"], buf["max"]
        mean, last = buf["mean"], buf["last"]
        for i in range(len(t)):
            writer.writerow((key, kind, t[i], lo[i], hi[i], mean[i], last[i]))
    return out.getvalue()


def parse_timeline_csv(text: str) -> Dict[str, Any]:
    """Exact inverse of :func:`timeline_csv` (modulo ``dropped``/config
    echo, which the CSV does not carry)."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or tuple(header) != _CSV_HEADER:
        raise ValueError(
            f"not a timeline CSV: expected header {','.join(_CSV_HEADER)!r}, "
            f"got {header!r}"
        )
    series: Dict[str, Dict[str, Any]] = {}
    for row in reader:
        if not row:
            continue
        if len(row) != len(_CSV_HEADER):
            raise ValueError(f"malformed timeline CSV row: {row!r}")
        key, kind = row[0], row[1]
        buf = series.get(key)
        if buf is None:
            buf = series[key] = {
                "kind": kind, "dropped": 0,
                "t": [], "min": [], "max": [], "mean": [], "last": [],
            }
        buf["t"].append(float(row[2]))
        buf["min"].append(float(row[3]))
        buf["max"].append(float(row[4]))
        buf["mean"].append(float(row[5]))
        buf["last"].append(float(row[6]))
    return {"series": series}


# ----------------------------------------------------------------------
# Prometheus-style text exposition (metrics registry)
# ----------------------------------------------------------------------
def _key_parts(key: str) -> Tuple[str, str]:
    """Split ``name{a=1,b=2}`` into ``("name", "a=1,b=2")``."""
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


def _suffixed(key: str, suffix: str, extra_label: str = "") -> str:
    """``name{labels}`` -> ``name<suffix>{labels[,extra]}``."""
    name, labels = _key_parts(key)
    if extra_label:
        labels = f"{labels},{extra_label}" if labels else extra_label
    return f"{name}{suffix}{{{labels}}}" if labels else f"{name}{suffix}"


def prometheus_text(metrics: Dict[str, Any]) -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict as Prometheus-style
    text exposition.

    Dotted metric names are kept verbatim (no ``_``-mangling) so the
    exposition round-trips exactly through
    :func:`parse_prometheus_text`; histogram buckets are cumulative
    with ``le="..."`` labels plus ``_sum``/``_count`` (and ``_min``/
    ``_max``, which stock Prometheus lacks but the diff tool uses).
    """
    lines: List[str] = []
    for key, value in metrics.get("counters", {}).items():
        lines.append(f"# TYPE {_key_parts(key)[0]} counter")
        lines.append(f"{key} {value!r}")
    for key, gauge in metrics.get("gauges", {}).items():
        lines.append(f"# TYPE {_key_parts(key)[0]} gauge")
        lines.append(f"{key} {gauge['value']!r}")
        lines.append(f"{_suffixed(key, '_max')} {gauge['max']!r}")
    for key, hist in metrics.get("histograms", {}).items():
        lines.append(f"# TYPE {_key_parts(key)[0]} histogram")
        cumulative = 0
        for bucket in hist["buckets"]:
            cumulative += bucket["count"]
            le = bucket["le"]
            le_txt = le if isinstance(le, str) else repr(le)
            lines.append(
                f"{_suffixed(key, '_bucket', f'le={le_txt}')} {cumulative!r}"
            )
        lines.append(f"{_suffixed(key, '_sum')} {hist['sum']!r}")
        lines.append(f"{_suffixed(key, '_count')} {hist['count']!r}")
        if hist["min"] is not None:
            lines.append(f"{_suffixed(key, '_min')} {hist['min']!r}")
        if hist["max"] is not None:
            lines.append(f"{_suffixed(key, '_max')} {hist['max']!r}")
    lines.append("")
    return "\n".join(lines)


def _hist_quantile(buckets: List[Dict[str, Any]], count: int,
                   hist_max: Optional[float], q: float) -> float:
    """Recompute ``Histogram.quantile`` from a (non-cumulative) bucket
    list — same semantics: the bucket's upper bound, or the observed
    max for the overflow bucket."""
    if count == 0:
        return 0.0
    rank = max(1, math.ceil(q * count))
    seen = 0
    for bucket in buckets:
        seen += bucket["count"]
        if seen >= rank:
            le = bucket["le"]
            if isinstance(le, str):  # "+Inf" overflow
                return hist_max if hist_max is not None else 0.0
            return le
    return hist_max if hist_max is not None else 0.0


#: Component suffixes a histogram / gauge sample line may carry.
_COMPONENT_SUFFIXES = ("_bucket", "_sum", "_count", "_min", "_max")


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Inverse of :func:`prometheus_text`: rebuild the registry
    snapshot (histogram ``mean``/``p50``/``p99`` are recomputed with
    the same bucket semantics ``Histogram`` uses)."""
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    hists: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}

    def hist_for(base: str, labels: str) -> Dict[str, Any]:
        label_items = [p for p in labels.split(",") if p] if labels else []
        rest = ",".join(p for p in label_items if not p.startswith("le="))
        hkey = f"{base}{{{rest}}}" if rest else base
        return hists.setdefault(hkey, {
            "count": 0, "sum": 0.0, "min": None, "max": None, "buckets": [],
        })

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        key, sep, value_txt = line.rpartition(" ")
        if not sep:
            raise ValueError(f"line {lineno}: not a 'name value' sample: "
                             f"{raw!r}")
        try:
            value = float(value_txt)
        except ValueError:
            raise ValueError(f"line {lineno}: bad sample value "
                             f"{value_txt!r}") from None
        name, labels = _key_parts(key)

        mtype = types.get(name)
        if mtype == "counter":
            counters[key] = int(value)
            continue
        if mtype == "gauge":
            gauges.setdefault(key, {"value": 0.0, "max": 0.0})["value"] = value
            continue

        # Component line: <base><suffix>{labels} for a gauge/histogram.
        handled = False
        for suffix in _COMPONENT_SUFFIXES:
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            btype = types.get(base)
            if btype == "gauge" and suffix == "_max":
                gkey = f"{base}{{{labels}}}" if labels else base
                gauge = gauges.setdefault(gkey, {"value": 0.0, "max": 0.0})
                gauge["max"] = value
                handled = True
            elif btype == "histogram":
                hist = hist_for(base, labels)
                if suffix == "_bucket":
                    le_items = [p for p in labels.split(",")
                                if p.startswith("le=")]
                    if not le_items:
                        raise ValueError(f"line {lineno}: histogram bucket "
                                         f"without le label")
                    le_txt = le_items[0][3:]
                    le: Any = le_txt if le_txt == "+Inf" else float(le_txt)
                    hist["buckets"].append({"le": le, "count": int(value)})
                elif suffix == "_sum":
                    hist["sum"] = value
                elif suffix == "_count":
                    hist["count"] = int(value)
                elif suffix == "_min":
                    hist["min"] = value
                else:
                    hist["max"] = value
                handled = True
            if handled:
                break
        if not handled:
            raise ValueError(f"line {lineno}: sample {key!r} has no # TYPE")

    ordered_hists: Dict[str, Dict[str, Any]] = {}
    for hkey in sorted(hists):
        hist = hists[hkey]
        # Exposition buckets are cumulative; snapshot buckets are not.
        prev = 0
        plain: List[Dict[str, Any]] = []
        for bucket in hist["buckets"]:
            plain.append({"le": bucket["le"], "count": bucket["count"] - prev})
            prev = bucket["count"]
        count = hist["count"]
        ordered_hists[hkey] = {
            "count": count, "sum": hist["sum"],
            "min": hist["min"], "max": hist["max"],
            "mean": hist["sum"] / count if count else 0.0,
            "p50": _hist_quantile(plain, count, hist["max"], 0.5),
            "p99": _hist_quantile(plain, count, hist["max"], 0.99),
            "buckets": plain,
        }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": ordered_hists,
    }

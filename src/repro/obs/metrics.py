"""The metrics registry: counters, gauges and log2-bucket histograms.

Every metric is keyed by ``(name, labels)`` where labels is a sorted
tuple of ``(key, value)`` pairs, so ``registry.counter("x", pe=3)`` and
``registry.counter("x", pe=7)`` are distinct series while remaining
cheap to aggregate.

:class:`Histogram` replaces the means-only reporting the repro had for
latencies: fixed log2 buckets (shared by *every* histogram, so two
histograms are always mergeable and golden snapshots never depend on
per-instance configuration) record full distributions of handshake
RTT, PMI fence duration, QP-cache miss penalties, and anything else a
layer observes.  Bucket semantics are Prometheus-style ``le``: bucket
``i`` counts values ``v`` with ``bounds[i-1] < v <= bounds[i]``; an
exact power of two lands in the bucket whose bound it equals (pinned
by unit tests — the boundary test uses :func:`math.frexp`, which is
exact for floats, not ``log2`` rounding).

:class:`CountersBridge` subsumes the flat :class:`repro.sim.trace.
Counters` API behind the registry: when a job runs with observation
enabled, every existing ``counters.add(...)`` call site transparently
feeds a registry counter — no substrate changes, one façade.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..sim import Counters

__all__ = [
    "BUCKET_BOUNDS",
    "bucket_index",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CountersBridge",
]

#: Smallest / largest log2 bucket exponent.  2**-4 = 0.0625 us resolves
#: sub-cost-model noise; 2**24 us ≈ 16.8 simulated seconds tops every
#: latency the repro can produce.  Fixed for ALL histograms (see module
#: docstring).
_LOG2_MIN_EXP = -4
_LOG2_MAX_EXP = 24

#: Inclusive upper bounds of the finite buckets; one overflow bucket
#: (+Inf) follows implicitly.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    2.0 ** e for e in range(_LOG2_MIN_EXP, _LOG2_MAX_EXP + 1)
)

#: Finite buckets + overflow.
NUM_BUCKETS = len(BUCKET_BOUNDS) + 1


def bucket_index(value: float) -> int:
    """Index of the bucket that counts ``value`` (le semantics).

    Exact at the boundaries: ``frexp`` decomposes the float precisely,
    so ``2.0**k`` always lands in the bucket whose bound is ``2.0**k``,
    never one off due to ``log2`` rounding.
    """
    if value <= BUCKET_BOUNDS[0]:
        return 0
    mantissa, exp = math.frexp(value)  # value = mantissa * 2**exp
    if mantissa == 0.5:  # exact power of two: v == 2**(exp-1)
        exp -= 1
    idx = exp - _LOG2_MIN_EXP
    return idx if idx < len(BUCKET_BOUNDS) else len(BUCKET_BOUNDS)


class _Metric:
    """Identity shared by all metric kinds."""

    __slots__ = ("name", "labels")
    kind = "metric"

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels

    @property
    def key(self) -> str:
        """Deterministic flat series name, ``name{k=v,...}``."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


class Counter(_Metric):
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels=()) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge(_Metric):
    """A settable level; tracks its high-water mark."""

    __slots__ = ("value", "max_value")
    kind = "gauge"

    def __init__(self, name: str, labels=()) -> None:
        super().__init__(name, labels)
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Metric):
    """Latency distribution over the shared log2 buckets."""

    __slots__ = ("counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, labels=()) -> None:
        super().__init__(name, labels)
        self.counts: List[int] = [0] * NUM_BUCKETS
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation.

        Conservative (bucket-resolution) estimate; the overflow bucket
        reports the maximum observed value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[i]
                return self.max if self.max is not None else BUCKET_BOUNDS[-1]
        return self.max if self.max is not None else 0.0  # pragma: no cover

    def percentile(self, p: float) -> float:
        """:meth:`quantile` with the argument in percent (``p50`` ==
        ``percentile(50)``) — the form the diff tool's latency
        comparison and most dashboards speak."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        return self.quantile(p / 100.0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly summary; only non-empty buckets are listed."""
        buckets = [
            {"le": BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else "+Inf",
             "count": c}
            for i, c in enumerate(self.counts) if c
        ]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metric series of one observed run, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], _Metric] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, Any]) -> _Metric:
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = _KINDS[kind](name, key[1])
        elif metric.kind != kind:
            raise TypeError(
                f"metric {metric.key!r} already registered as "
                f"{metric.kind}, requested as {kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic (key-sorted) dump of every series."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for metric in self._metrics.values():
            if metric.kind == "counter":
                counters[metric.key] = metric.value
            elif metric.kind == "gauge":
                gauges[metric.key] = {
                    "value": metric.value, "max": metric.max_value,
                }
            else:
                histograms[metric.key] = metric.snapshot()
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


class CountersBridge(Counters):
    """`sim.trace.Counters`-compatible façade over registry counters.

    Installed as ``Job.counters`` when observation is on: every
    substrate keeps calling the flat counter API it always had, and the
    values land in the registry as label-less counter series.  The
    per-name metric object is memoised locally so the hot ``add`` path
    is one dict lookup + integer add, like the original.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        super().__init__()
        self._registry = registry
        self._cache: Dict[str, Counter] = {}

    def add(self, name: str, amount: int = 1) -> None:
        counter = self._cache.get(name)
        if counter is None:
            counter = self._cache[name] = self._registry.counter(name)
        counter.value += amount

    def __getitem__(self, name: str) -> int:
        counter = self._cache.get(name)
        return counter.value if counter is not None else 0

    def as_dict(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._cache.items() if c.value}

    def reset(self) -> None:
        for counter in self._cache.values():
            counter.value = 0

"""Causally-linked spans over simulated time: the flight recorder core.

A :class:`Span` is one named interval on one actor's timeline (a PE,
the fabric, the PMI daemon tree, the fault injector), carrying a
monotonically increasing ``span_id`` and an optional ``parent_id`` so
that cross-layer, cross-actor work — e.g. one on-demand connection
establishment flowing conduit → UD handshake → QP state machine →
first RC delivery — reconstructs as a single causal tree.

Instant happenings (a QP state transition, a dropped datagram) are
zero-duration spans created with :meth:`SpanTracer.event`.

The tracer exists only when observation is enabled (``Job(observe=
True)``); instrumented layers hold ``obs = None`` otherwise, so the
hot-path cost of the whole facility is one predicate check — the same
discipline as ``Simulator._prof`` and the protocol :class:`Tracer`.

Parent links accept either a :class:`Span` or a raw ``span_id`` int:
the handshake messages carry the integer across the wire (it is
metadata, not payload — it never contributes to ``nbytes``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Union

from ..sim import Simulator

__all__ = ["Span", "SpanTracer"]

ParentRef = Union["Span", int, None]


class Span:
    """One recorded interval: identity, causality, timing, attributes."""

    __slots__ = ("span_id", "parent_id", "name", "actor", "start_us",
                 "end_us", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        actor: str,
        start_us: float,
        end_us: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.actor = actor
        self.start_us = start_us
        #: ``None`` while the span is open.
        self.end_us = end_us
        self.attrs = attrs if attrs is not None else {}

    @property
    def open(self) -> bool:
        return self.end_us is None

    @property
    def duration_us(self) -> float:
        """Span length; 0.0 while still open (and for instant events)."""
        return 0.0 if self.end_us is None else self.end_us - self.start_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_us is None else f"end={self.end_us!r}"
        return (
            f"<Span #{self.span_id} {self.name!r} actor={self.actor} "
            f"parent={self.parent_id} start={self.start_us!r} {state}>"
        )


def _parent_id(parent: ParentRef) -> Optional[int]:
    if parent is None or parent.__class__ is int:
        return parent
    return parent.span_id


class SpanTracer:
    """Records spans against a simulator's clock, in creation order.

    Bounded like the protocol :class:`~repro.sim.trace.Tracer`: once
    ``capacity`` spans have been recorded, further ones are *dropped*
    (counted in :attr:`dropped`) rather than silently evicting history
    — a truncated trace stays a valid prefix, and exporters can say so.
    Dropped spans are returned as detached objects so instrumentation
    code can still ``finish`` them without ceremony.
    """

    def __init__(self, sim: Simulator, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError("span capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.dropped = 0
        self._spans: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start(self, name: str, actor: str, parent: ParentRef = None,
              **attrs: Any) -> Span:
        """Open a span at the current simulated time."""
        span = Span(
            span_id=self._next_id,
            parent_id=_parent_id(parent),
            name=name,
            actor=actor,
            start_us=self.sim.now,
            attrs=attrs,
        )
        self._next_id += 1
        if len(self._spans) < self.capacity:
            self._spans.append(span)
        else:
            self.dropped += 1
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` at the current simulated time."""
        if span.end_us is not None:
            raise ValueError(f"span #{span.span_id} finished twice")
        span.end_us = self.sim.now
        if attrs:
            span.attrs.update(attrs)
        return span

    def event(self, name: str, actor: str, parent: ParentRef = None,
              **attrs: Any) -> Span:
        """Record an instant (zero-duration) span."""
        span = self.start(name, actor, parent=parent, **attrs)
        span.end_us = span.start_us
        return span

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        return self._spans

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self._spans if s.name == name]

    def children_of(self, span_or_id: Union[Span, int]) -> List[Span]:
        sid = span_or_id if span_or_id.__class__ is int else span_or_id.span_id
        return [s for s in self._spans if s.parent_id == sid]

"""Timeline telemetry: deterministic time-series probes over the run.

Spans answer *what happened*; histograms answer *how it was
distributed*; neither answers the question the paper's figures actually
plot — **how a quantity evolved over the job**.  Figure 9's footprint
claim is a trajectory (connections vs. time under churn), and ROADMAP
item 2's pressure-driven eviction needs a sampled occupancy signal to
act on.  This module is that substrate.

A :class:`Timeline` samples a set of registered :class:`Probe`\\ s — a
probe is just a name plus a zero-argument callable reading live layer
state — on a fixed **simulated-time** cadence.  Samples land in
columnar ring buffers (:class:`SeriesBuffer`) with windowed
aggregation: every ``window`` raw samples collapse into one stored
point carrying ``(t, min, max, mean, last)``, and once ``capacity``
windows are stored the oldest are overwritten (``dropped`` counts
them), so memory is bounded no matter how long the job runs.

Determinism contract
--------------------
Sampling must have **zero effect on simulated time** — the 128-PE
golden trace is byte-identical with the sampler on (pinned by
``tests/sim/test_golden_trace.py``).  That holds because:

* tick events consume sequence numbers but seq only breaks *same-time*
  ties, and inserting extra monotone allocations preserves the relative
  order of every other event;
* probe callables are pure reads — no RNG draws, no state mutation, no
  process interaction — and the tick callback schedules nothing but its
  own successor;
* the sampler stops re-arming once :meth:`Timeline.stop` runs (the Job
  calls it when every PE has finished), so the event queue still
  drains; one orphaned tick may fire after the stop and does nothing.

``parse_observe`` / ``canonical_observe`` also live here: they define
how ``Job(observe=...)`` / ``RuntimeConfig.observe`` / ``JobSpec.
observe`` accept ``bool | dict | TimelineConfig`` uniformly (e.g.
``observe={"timeline": True}``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    TYPE_CHECKING,
    Tuple,
)

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator

__all__ = [
    "TimelineConfig",
    "Probe",
    "SeriesBuffer",
    "Timeline",
    "parse_observe",
    "canonical_observe",
]


@dataclass(frozen=True)
class TimelineConfig:
    """Sampling parameters; frozen and hashable so it can live inside
    ``RuntimeConfig`` and ``JobSpec`` (both frozen dataclasses)."""

    enabled: bool = True
    #: Simulated microseconds between samples.
    interval_us: float = 1000.0
    #: Raw samples aggregated into one stored window point.
    window: int = 1
    #: Ring capacity in *windows* per series; the oldest windows are
    #: overwritten (and counted as dropped) beyond it.
    capacity: int = 65536

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ConfigError(
                f"timeline interval_us must be positive, got {self.interval_us}"
            )
        if self.window < 1:
            raise ConfigError(
                f"timeline window must be >= 1, got {self.window}"
            )
        if self.capacity < 1:
            raise ConfigError(
                f"timeline capacity must be >= 1, got {self.capacity}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimelineConfig":
        unknown = sorted(k for k in data if k not in cls.__dataclass_fields__)
        if unknown:
            raise ConfigError(f"unknown timeline config keys: {unknown}")
        return cls(**dict(data))

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def parse_observe(value: Any) -> Tuple[bool, Optional[TimelineConfig]]:
    """Normalise an ``observe=`` argument to ``(enabled, timeline_cfg)``.

    Accepted forms::

        False / None                     -> observation off
        True                             -> spans + metrics only
        {"timeline": True}               -> spans + metrics + timeline
        {"timeline": {"interval_us": 500}}
        TimelineConfig(...)              -> shorthand for the dict form
    """
    if value is None or value is False:
        return False, None
    if value is True:
        return True, None
    if isinstance(value, TimelineConfig):
        return True, (value if value.enabled else None)
    if isinstance(value, Mapping):
        unknown = sorted(k for k in value if k != "timeline")
        if unknown:
            raise ConfigError(f"unknown observe options: {unknown}")
        timeline = value.get("timeline", False)
        if timeline is True:
            return True, TimelineConfig()
        if timeline is False or timeline is None:
            return True, None
        if isinstance(timeline, TimelineConfig):
            return True, (timeline if timeline.enabled else None)
        if isinstance(timeline, Mapping):
            cfg = TimelineConfig.from_dict(timeline)
            return True, (cfg if cfg.enabled else None)
        raise ConfigError(
            f"observe['timeline'] must be a bool, dict, or TimelineConfig, "
            f"got {timeline!r}"
        )
    raise ConfigError(
        f"observe must be a bool, dict, or TimelineConfig, got {value!r}"
    )


def canonical_observe(value: Any) -> Any:
    """Canonical, hashable storage form: ``False`` / ``True`` /
    :class:`TimelineConfig` (used by the frozen ``RuntimeConfig`` and
    ``JobSpec`` so dict arguments never leak into hashable fields)."""
    enabled, cfg = parse_observe(value)
    if not enabled:
        return False
    return cfg if cfg is not None else True


class Probe:
    """One registered data source: a key plus a pure-read callable."""

    __slots__ = ("name", "labels", "fn", "kind")

    def __init__(self, name: str, fn: Callable[[], float], kind: str,
                 labels: Tuple[Tuple[str, Any], ...]) -> None:
        if kind not in ("gauge", "counter"):
            raise ConfigError(f"probe kind must be gauge/counter, got {kind!r}")
        self.name = name
        self.fn = fn
        self.kind = kind
        self.labels = labels

    @property
    def key(self) -> str:
        """Flat series name, ``name{k=v,...}`` (same form as metrics)."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


class SeriesBuffer:
    """Columnar ring buffer of windowed samples for one series.

    Five parallel arrays — window end time, min, max, mean, last —
    preallocated at ``capacity`` and written through a wrapping head
    index.  ``snapshot`` unrolls to chronological Python lists.
    """

    __slots__ = (
        "kind", "capacity", "window", "dropped",
        "_t", "_min", "_max", "_mean", "_last", "_head", "_filled",
        "_wn", "_wsum", "_wmin", "_wmax", "_wlast",
    )

    def __init__(self, kind: str, capacity: int, window: int) -> None:
        self.kind = kind
        self.capacity = capacity
        self.window = window
        self.dropped = 0
        self._t = [0.0] * capacity
        self._min = [0.0] * capacity
        self._max = [0.0] * capacity
        self._mean = [0.0] * capacity
        self._last = [0.0] * capacity
        self._head = 0
        self._filled = 0
        # Accumulator for the currently-open window.
        self._wn = 0
        self._wsum = 0.0
        self._wmin = 0.0
        self._wmax = 0.0
        self._wlast = 0.0

    def record(self, now: float, value: float) -> None:
        """Fold one raw sample in; flush if the window is complete."""
        if self._wn == 0:
            self._wmin = self._wmax = value
        else:
            if value < self._wmin:
                self._wmin = value
            if value > self._wmax:
                self._wmax = value
        self._wn += 1
        self._wsum += value
        self._wlast = value
        if self._wn >= self.window:
            self._flush(now)

    def flush_partial(self, now: float) -> None:
        """Emit a short final window (job end rarely lands on a window
        boundary)."""
        if self._wn:
            self._flush(now)

    def _flush(self, now: float) -> None:
        slot = self._head
        self._t[slot] = now
        self._min[slot] = self._wmin
        self._max[slot] = self._wmax
        self._mean[slot] = self._wsum / self._wn
        self._last[slot] = self._wlast
        self._head = (slot + 1) % self.capacity
        if self._filled < self.capacity:
            self._filled += 1
        else:
            self.dropped += 1
        self._wn = 0
        self._wsum = 0.0

    def __len__(self) -> int:
        return self._filled

    def _unroll(self, column: List[float]) -> List[float]:
        if self._filled < self.capacity:
            return column[: self._filled]
        head = self._head
        return column[head:] + column[:head]

    @property
    def peak(self) -> float:
        """Largest windowed max on record (0.0 for an empty series)."""
        values = self._unroll(self._max)
        return max(values) if values else 0.0

    @property
    def final(self) -> float:
        """Most recent stored last-value (0.0 for an empty series)."""
        if self._filled == 0:
            return 0.0
        return self._last[(self._head - 1) % self.capacity]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dropped": self.dropped,
            "t": self._unroll(self._t),
            "min": self._unroll(self._min),
            "max": self._unroll(self._max),
            "mean": self._unroll(self._mean),
            "last": self._unroll(self._last),
        }


class Timeline:
    """The sampler: probes in, windowed ring-buffered series out."""

    def __init__(self, sim: "Simulator", config: TimelineConfig) -> None:
        self.sim = sim
        self.config = config
        self.series: Dict[str, SeriesBuffer] = {}
        self._probes: List[Probe] = []
        self._started = False
        self._stopped = False
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # registration (Job wires the layers in at assembly time)
    # ------------------------------------------------------------------
    def add_probe(self, name: str, fn: Callable[[], float],
                  kind: str = "gauge", **labels: Any) -> None:
        """Register ``fn`` under ``name{labels}``.

        ``fn`` MUST be a pure read of live state: no RNG, no mutation,
        no simulated delay — the determinism contract depends on it.
        ``kind`` is ``"gauge"`` (instantaneous level) or ``"counter"``
        (cumulative count sampled over time; the diff tool turns those
        into rates).
        """
        probe = Probe(name, fn, kind, tuple(sorted(labels.items())))
        if probe.key in self.series:
            raise ConfigError(f"duplicate timeline probe {probe.key!r}")
        self._probes.append(probe)
        self.series[probe.key] = SeriesBuffer(
            kind, self.config.capacity, self.config.window
        )

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Take the t=0 anchor sample and arm the periodic tick."""
        if self._started:
            return
        self._started = True
        self._sample()
        self._arm()

    def stop(self) -> None:
        """Final sample + flush; the pending tick becomes a no-op."""
        if self._stopped:
            return
        self._stopped = True
        if not self._started:
            return
        self._sample()
        now = self.sim.now
        for buf in self.series.values():
            buf.flush_partial(now)

    def _arm(self) -> None:
        self.sim.schedule_callback(
            self.sim.now + self.config.interval_us, self._tick
        )

    def _tick(self, _arg: Any) -> None:
        if self._stopped:
            return
        self._sample()
        self._arm()

    def _sample(self) -> None:
        now = self.sim.now
        self.samples_taken += 1
        series = self.series
        for probe in self._probes:
            series[probe.key].record(now, float(probe.fn()))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly dump: config echo + every series, key-sorted."""
        return {
            "interval_us": self.config.interval_us,
            "window": self.config.window,
            "capacity": self.config.capacity,
            "samples": self.samples_taken,
            "series": {
                key: self.series[key].snapshot()
                for key in sorted(self.series)
            },
        }

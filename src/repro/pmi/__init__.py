"""Process Management Interface: KVS, daemon tree, client, PMIX extensions."""

from .client import PMIClient, PMIHandle
from .kvs import KeyValueStore
from .pmix import PMIX_Iallgather, PMIX_Ifence, PMIX_Ring, PMIX_Wait
from .server import Daemon, PMIDomain

__all__ = [
    "PMIClient",
    "PMIHandle",
    "KeyValueStore",
    "Daemon",
    "PMIDomain",
    "PMIX_Iallgather",
    "PMIX_Ifence",
    "PMIX_Ring",
    "PMIX_Wait",
]

"""PMI client API (what the middleware links against).

Blocking PMI2 operations (``put``, ``get``, ``fence``) plus the
non-blocking PMIX extensions from the authors' earlier work
(EuroMPI'14 / CCGrid'15) that this paper exploits:

* :meth:`PMIClient.ifence`      -- split-phase fence,
* :meth:`PMIClient.iallgather`  -- fused Put+Fence+Get-all,
* :meth:`PMIHandle.wait`        -- PMIX_Wait.

Every call charges realistic client<->daemon round-trip and daemon
queueing costs; collectives ride the daemon tree in
:mod:`repro.pmi.server`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..errors import PMIError
from ..sim import SimEvent, Waitable
from .server import PMIDomain

__all__ = ["PMIClient", "PMIHandle"]


class PMIHandle:
    """Completion handle for a non-blocking PMI operation (PMIX_Wait)."""

    def __init__(self, event: SimEvent) -> None:
        self._event = event

    @property
    def done(self) -> bool:
        return self._event.triggered

    def wait(self) -> Waitable:
        """Yieldable; value is the operation result (dict rank->value)."""
        return self._event


class PMIClient:
    """Per-rank PMI client."""

    def __init__(self, domain: PMIDomain, rank: int) -> None:
        self.domain = domain
        self.rank = rank
        self.daemon = domain.daemon_of(rank)
        self._fence_epoch = 0
        self._iag_epoch = 0
        self._ring_epoch = 0
        self._staged_since_fence = 0
        #: Flight recorder (installed by ``Job(observe=True)``).
        self.obs = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _local_call(self, cpu: float) -> Generator:
        """One client->daemon->client round trip; returns service time."""
        sim = self.domain.sim
        cost = self.domain.cost
        arrival = sim.now + cost.pmi_local_rtt_us / 2
        done = self.daemon.occupy(arrival, cpu)
        reply = done + cost.pmi_local_rtt_us / 2
        yield reply - sim.now
        return done

    # ------------------------------------------------------------------
    # blocking PMI2
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> Generator:
        """PMI2_KVS_Put: stage a key-value pair at the local daemon."""
        if self.daemon.staging.get(key) is not None or self.domain.kvs.contains(key):
            raise PMIError(f"PE {self.rank}: duplicate put of key {key!r}")
        self.domain.counters.add("pmi.puts")
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.spans.start("pmi.put", f"pe{self.rank}", key=key)
        yield from self._local_call(self.domain.cost.pmi_server_cpu_us)
        self.daemon.staging[key] = value
        self._staged_since_fence += 1
        if span is not None:
            obs.spans.finish(span)

    def get(self, key: str) -> Generator:
        """PMI2_KVS_Get: read a committed key (fence must have run)."""
        self.domain.counters.add("pmi.gets")
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.spans.start("pmi.get", f"pe{self.rank}", key=key)
        yield from self._local_call(self.domain.cost.pmi_server_cpu_us)
        if span is not None:
            obs.spans.finish(span)
        return self.domain.kvs.get(key)

    def get_many(self, keys: List[str]) -> Generator:
        """Batched get (one daemon request, per-entry parse cost)."""
        cost = self.domain.cost
        self.domain.counters.add("pmi.gets", len(keys))
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.spans.start(
                "pmi.get_many", f"pe{self.rank}", nkeys=len(keys)
            )
        yield from self._local_call(
            cost.pmi_server_cpu_us + len(keys) * cost.pmi_entry_cpu_us
        )
        if span is not None:
            obs.spans.finish(span)
        return self.domain.kvs.get_many(keys)

    def get_range(self, prefix: str, count: int) -> Generator:
        """Batched get of ``prefix0 .. prefix{count-1}``.

        Timing, counters and spans are identical to :meth:`get_many`
        over the same keys (one daemon request, per-entry parse cost);
        the parsed value list is shared job-wide via the KVS memo so a
        full-directory fetch costs O(N) host work once, not O(N) per PE.
        """
        cost = self.domain.cost
        self.domain.counters.add("pmi.gets", count)
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.spans.start(
                "pmi.get_many", f"pe{self.rank}", nkeys=count
            )
        yield from self._local_call(
            cost.pmi_server_cpu_us + count * cost.pmi_entry_cpu_us
        )
        if span is not None:
            obs.spans.finish(span)
        return self.domain.kvs.get_range(prefix, count)

    def fence(self) -> Generator:
        """PMI2_KVS_Fence: blocking commit + global synchronisation."""
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.spans.start("pmi.fence", f"pe{self.rank}")
        handle = self.ifence(_parent=span)
        yield handle.wait()
        if span is not None:
            obs.spans.finish(span)
            obs.metrics.histogram("pmi.fence_us").observe(
                span.end_us - span.start_us
            )

    # ------------------------------------------------------------------
    # non-blocking PMIX extensions
    # ------------------------------------------------------------------
    def ifence(self, alias: Optional[str] = None,
               _parent=None) -> PMIHandle:
        """PMIX_Ifence: returns immediately with a handle."""
        cid = f"fence:{self._fence_epoch}"
        self._fence_epoch += 1
        self.domain.counters.add("pmi.fences")
        staged, self._staged_since_fence = self._staged_since_fence, 0
        return self._contribute(cid, staged, alias=alias or "pmi.ifence",
                                parent=_parent)

    def iallgather(self, value: Any, alias: Optional[str] = None) -> PMIHandle:
        """PMIX_Iallgather: contribute ``value``; result maps rank->value.

        Fuses the Put-Fence-Get-all sequence into one operation with a
        symmetric data pattern (paper Section III-E).
        """
        cid = f"iag:{self._iag_epoch}"
        self._iag_epoch += 1
        self.domain.counters.add("pmi.iallgathers")
        return self._contribute(cid, value, alias=alias or "pmi.iallgather")

    def ring(self, value: Any) -> Generator:
        """PMIX_Ring: blocking neighbour exchange.

        Returns ``(left_value, right_value)`` for a rank ring.  Modelled
        on top of the tree collective with neighbour extraction at the
        client (the data volume per client is O(1), which is the point
        of the ring design).
        """
        cid = f"ring:{self._ring_epoch}"
        self._ring_epoch += 1
        self.domain.counters.add("pmi.rings")
        handle = self._contribute(cid, value, alias="pmi.ring")
        result = yield handle.wait()
        n = self.domain.cluster.npes
        left = result[(self.rank - 1) % n]
        right = result[(self.rank + 1) % n]
        return left, right

    def _contribute(self, cid: str, value: Any, alias: str = "pmi.coll",
                    parent=None) -> PMIHandle:
        sim = self.domain.sim
        cost = self.domain.cost
        daemon = self.daemon
        ev = sim.event()
        obs = self.obs
        if obs is not None:
            # Span covers launch -> completion of this rank's share of
            # the collective; closed from the event callback so it also
            # measures non-blocking ops that complete in the background.
            span = obs.spans.start(
                alias, f"pe{self.rank}", parent=parent, cid=cid
            )
            spans = obs.spans

            def _close(_w, _span=span, _spans=spans):
                if _span.end_us is None:
                    _spans.finish(_span)

            ev.add_callback(_close)
        state = daemon.coll(cid)
        if state.result is not None:
            # Down phase already finished before this client asked.
            result = state.result
            sim._schedule_at(
                sim.now + cost.pmi_local_rtt_us,
                lambda _a: ev.succeed(result),
                None,
            )
        else:
            state.waiters.append(ev)
            arrival = sim.now + cost.pmi_local_rtt_us / 2
            done = daemon.occupy(arrival, cost.pmi_server_cpu_us)
            sim._schedule_at(
                done,
                lambda _a: daemon.local_contribution(cid, self.rank, value, done),
                None,
            )
        return PMIHandle(ev)

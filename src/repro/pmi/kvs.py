"""The PMI global key-value store.

One logical store per job.  Writes land in per-daemon *staging* areas
and only become globally visible when a fence commits them — the
:class:`KeyValueStore` tracks the commit epoch so tests can assert the
Put/Fence/Get visibility contract.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..errors import PMIError

__all__ = ["KeyValueStore"]


class KeyValueStore:
    """Committed portion of the PMI KVS (shared by all daemons)."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.epoch = 0
        #: Single-slot memo for :meth:`get_range` (see below).
        self._range_key: Optional[tuple] = None
        self._range_values: Optional[List[Any]] = None
        #: Invariant sanitizer (installed by ``Job(check=...)``).
        self.check = None

    def commit(self, staged: Dict[str, Any]) -> None:
        """Merge a batch of staged puts; bumps the commit epoch."""
        overlap = set(staged) & set(self._data)
        if overlap:
            raise PMIError(f"duplicate KVS keys committed: {sorted(overlap)[:5]}")
        prev_epoch = self.epoch
        self._data.update(staged)
        self.epoch += 1
        # The memo is keyed by the pre-commit epoch, which can never
        # match a future lookup — dropping it here frees the dead
        # directory instead of pinning one per epoch for the job's
        # lifetime (pure host memory; no simulated cost either way).
        self._range_key = None
        self._range_values = None
        if self.check is not None:
            self.check.on_kvs_commit(self, prev_epoch)

    def get(self, key: str) -> Any:
        try:
            return self._data[key]
        except KeyError:
            raise PMIError(f"KVS key not found (missing fence?): {key!r}") from None

    def get_many(self, keys: Iterable[str]) -> List[Any]:
        return [self.get(k) for k in keys]

    def get_range(self, prefix: str, count: int) -> List[Any]:
        """Values of ``f"{prefix}{i}"`` for ``i in range(count)``.

        The job-wide endpoint directory is fetched with exactly this
        shape by *every* PE after the same fence — building the key
        list and probing the dict N times per PE is O(N^2) host work
        with no timing meaning (the per-entry parse cost is charged by
        the PMI client either way).  A single-slot memo keyed by
        ``(prefix, count, epoch)`` makes it O(N) per job; callers must
        treat the returned list as read-only.
        """
        memo_key = (prefix, count, self.epoch)
        if self._range_key == memo_key:
            if self.check is not None:
                self.check.on_range_memo_hit(
                    self, prefix, count, self._range_values
                )
            return self._range_values
        values = [self.get(f"{prefix}{i}") for i in range(count)]
        self._range_key, self._range_values = memo_key, values
        return values

    def contains(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

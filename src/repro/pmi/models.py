"""Closed-form models of the PMI daemon tree (macro phase layer).

Companion to :mod:`repro.pmi.server`: every formula here mirrors one
code path of the exact engine.  Two kinds of results come out:

* **Exact combinatorics** — :func:`iallgather_tree_counters` computes
  the ``pmi.tree_messages`` / ``pmi.tree_bytes`` totals of one
  allgather over the daemon tree.  These depend only on the tree shape
  and payload sizes, never on timing, so they match the exact DES
  bit for bit and are asserted by the equivalence fixtures.
* **Timing recurrences** — :func:`iallgather_release_times` replays the
  per-daemon ``occupy`` chains (client contributions, tree sends, the
  down-phase waiter release) as an O(npes + nnodes) recurrence.  Under
  a lossless management network this reproduces the exact engine's
  release instants; it feeds the *modeled* on-demand finalize path
  (``resolve_directory`` waits) and is not asserted by fixtures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..cluster import Cluster

__all__ = [
    "tree_fanout",
    "tree_children",
    "subtree_rank_counts",
    "iallgather_tree_counters",
    "iallgather_release_times",
]


def tree_fanout(cluster: Cluster) -> int:
    """The daemon tree fan-out (mirrors ``PMIDomain.__init__``)."""
    return max(2, cluster.cost.pmi_tree_fanout)


def tree_children(node: int, fanout: int, nnodes: int) -> List[int]:
    """Children of ``node`` in the k-ary heap layout (``Daemon.children``)."""
    first = node * fanout + 1
    return [c for c in range(first, first + fanout) if c < nnodes]


def subtree_rank_counts(cluster: Cluster) -> List[int]:
    """Ranks in the daemon subtree rooted at each node.

    The up-phase payload a daemon forwards maps every rank in its
    subtree to that rank's contribution, so the message size from node
    ``k`` is governed by this count (``PMIDomain._entries_of`` with an
    ``iag:`` cid is ``max(1, len(payload))``).
    """
    fanout = tree_fanout(cluster)
    nnodes = cluster.nnodes
    counts = [len(cluster.ranks_on_node(n)) for n in range(nnodes)]
    # Children have strictly larger indices than their parent in the
    # heap layout, so one reverse sweep accumulates bottom-up.
    for node in range(nnodes - 1, 0, -1):
        counts[(node - 1) // fanout] += counts[node]
    return counts


def iallgather_tree_counters(cluster: Cluster) -> Tuple[int, int]:
    """(messages, bytes) one allgather pushes over the daemon tree.

    Up phase: every non-root daemon sends its merged subtree payload to
    its parent — ``nnodes - 1`` messages of
    ``max(64, subtree_ranks * pmi_entry_bytes)`` each.  Down phase: the
    full result (npes entries) is re-serialised on every edge —
    another ``nnodes - 1`` messages of ``max(64, npes * pmi_entry_bytes)``.
    A single-node job never touches the tree.
    """
    cost = cluster.cost
    nnodes = cluster.nnodes
    if nnodes <= 1:
        return 0, 0
    sub = subtree_rank_counts(cluster)
    entry = cost.pmi_entry_bytes
    up_bytes = sum(max(64, sub[n] * entry) for n in range(1, nnodes))
    down_bytes = (nnodes - 1) * max(64, max(1, cluster.npes) * entry)
    return 2 * (nnodes - 1), up_bytes + down_bytes


def iallgather_release_times(
    cluster: Cluster, call_times: Sequence[float]
) -> List[float]:
    """Per-node client release instants of one allgather.

    ``call_times[r]`` is the simulated time PE ``r`` calls
    ``iallgather`` (all clients are waiters — the on-demand startup
    arms the handle before any daemon finishes).  The recurrence
    replays, per daemon, the exact ``occupy`` chain of
    :mod:`repro.pmi.server` in chronological order: local contribution
    round-trips, child tree-message arrivals, the up-phase send, the
    down-phase fan-out and finally
    ``release_at = max(when, busy_until) + rtt/2``.

    Lossless-network assumption: management TCP never drops, so
    arrival = send_done + tcp_time exactly as ``_tree_send`` computes.
    """
    cost = cluster.cost
    fanout = tree_fanout(cluster)
    nnodes = cluster.nnodes
    npes = cluster.npes
    rtt2 = cost.pmi_local_rtt_us / 2
    scpu = cost.pmi_server_cpu_us
    ecpu = cost.pmi_entry_cpu_us
    entry = cost.pmi_entry_bytes
    sub = subtree_rank_counts(cluster)
    busy = [0.0] * nnodes
    # node -> [(arrival, ser_cpu), ...] of child up-messages.
    up_arrivals: Dict[int, List[Tuple[float, float]]] = {
        n: [] for n in range(nnodes)
    }
    ready = [0.0] * nnodes  # 'when' the daemon's subtree completes

    # Up phase: children have larger indices, so a reverse index sweep
    # visits every child before its parent.
    for node in range(nnodes - 1, -1, -1):
        # All busy-advancing events on this daemon before its up-send,
        # in chronological order of the occupy() *call*: a local
        # contribution occupies at client-call time (arrival call+rtt/2),
        # a tree arrival occupies at its arrival instant.
        events = [
            (call_times[r], call_times[r] + rtt2, scpu)
            for r in cluster.ranks_on_node(node)
        ]
        events += [(arr, arr, scpu + ser) for arr, ser in up_arrivals[node]]
        events.sort()
        b = busy[node]
        for _call, arrival, cpu in events:
            start = arrival if arrival > b else b
            b = start + cpu
        ready[node] = b
        busy[node] = b
        if node > 0:
            ser = sub[node] * ecpu
            send_done = b + ser  # occupy(ready, ser) with busy == ready
            busy[node] = send_done
            nbytes = max(64, sub[node] * entry)
            arrival = send_done + cost.pmi_tcp_time(nbytes)
            up_arrivals[(node - 1) // fanout].append((arrival, ser))

    # Down phase: the root result is re-serialised per edge; a parent's
    # sends queue behind each other on its own busy chain
    # (``_propagate_down`` calls ``_tree_send`` with the same ``when``
    # for every child — serialisation comes from ``occupy`` alone).
    down_entries = max(1, npes)
    ser_down = down_entries * ecpu
    nb_down = max(64, down_entries * entry)
    deliver = [0.0] * nnodes  # 'when' deliver_down runs at each node
    deliver[0] = ready[0]
    release = [0.0] * nnodes
    for node in range(nnodes):  # index order == top-down order
        when = deliver[node]
        for child in tree_children(node, fanout, nnodes):
            start = when if when > busy[node] else busy[node]
            send_done = start + ser_down
            busy[node] = send_done
            arrival = send_done + cost.pmi_tcp_time(nb_down)
            cstart = arrival if arrival > busy[child] else busy[child]
            cdone = cstart + (scpu + ser_down)
            busy[child] = cdone
            deliver[child] = cdone
        after = when if when > busy[node] else busy[node]
        release[node] = after + rtt2
    return release

"""Paper-faithful functional aliases for the PMIX extensions.

The paper (Section III-E) names the operations ``PMIX_Iallgather``,
``PMIX_Ifence``, ``PMIX_Ring`` and ``PMIX_Wait``; the object API lives
on :class:`repro.pmi.client.PMIClient`.  These wrappers exist so that
code ported from the paper reads one-to-one.
"""

from __future__ import annotations

from typing import Any

from ..sim import Waitable
from .client import PMIClient, PMIHandle

__all__ = ["PMIX_Iallgather", "PMIX_Ifence", "PMIX_Ring", "PMIX_Wait"]


def PMIX_Iallgather(client: PMIClient, value: Any) -> PMIHandle:
    """Non-blocking allgather of one value per rank."""
    return client.iallgather(value, alias="PMIX_Iallgather")


def PMIX_Ifence(client: PMIClient) -> PMIHandle:
    """Non-blocking (split-phase) fence."""
    return client.ifence(alias="PMIX_Ifence")


def PMIX_Ring(client: PMIClient, value: Any):
    """Blocking ring exchange; generator returning (left, right)."""
    return client.ring(value)


def PMIX_Wait(handle: PMIHandle) -> Waitable:
    """Completion wait for a non-blocking PMI operation (yieldable)."""
    return handle.wait()

"""The process-manager side of PMI: one daemon per node, a k-ary tree.

Daemons talk to their node-local clients over a cheap local channel and
to each other over the management Ethernet (TCP cost model).  The tree
implements the fence/allgather dissemination the paper's Figure 1
charges as "PMI Exchange":

* **up phase** -- a daemon that has heard from all local clients and
  all children forwards the merged payload to its parent;
* **down phase** -- the root broadcasts the fully merged payload; each
  daemon forwards to its children (serialising the full data on every
  hop, which is what makes PMI fence scale poorly) and then releases
  its waiting local clients.

Every daemon is a simple state machine with a ``busy_until`` timestamp:
client requests and tree messages queue behind each other, so a daemon
serving 16 local ranks is genuinely a bottleneck, as on real systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..cluster import Cluster
from ..sim import Counters, SimEvent, Simulator
from .kvs import KeyValueStore

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultInjector

__all__ = ["PMIDomain", "Daemon"]


class _SucceedWith:
    """Wave member callback: succeed each waiter with a shared result."""

    __slots__ = ("result",)

    def __init__(self, result: Any) -> None:
        self.result = result

    def __call__(self, ev: SimEvent) -> None:
        ev.succeed(self.result)


@dataclass
class _CollectiveState:
    """Per-daemon progress of one tree collective."""

    local_needed: int
    local_arrived: int = 0
    children_needed: int = 0
    children_arrived: int = 0
    #: Merged payload for the subtree rooted here (rank -> value).
    payload: Dict[int, Any] = field(default_factory=dict)
    up_sent: bool = False
    #: Set once the down-phase result reaches this daemon.
    result: Optional[Dict[int, Any]] = None
    waiters: List[SimEvent] = field(default_factory=list)


class Daemon:
    """One PMI daemon (e.g. a SLURM step daemon) on one node."""

    def __init__(self, domain: "PMIDomain", node: int, nlocal: int) -> None:
        self.domain = domain
        self.node = node
        self.nlocal = nlocal
        self.busy_until = 0.0
        self.staging: Dict[str, Any] = {}
        self._coll: Dict[str, _CollectiveState] = {}

    # -- tree geometry ---------------------------------------------------
    @property
    def parent(self) -> Optional[int]:
        if self.node == 0:
            return None
        return (self.node - 1) // self.domain.fanout

    @property
    def children(self) -> List[int]:
        fanout = self.domain.fanout
        first = self.node * fanout + 1
        return [c for c in range(first, first + fanout) if c < self.domain.nnodes]

    # -- request serialisation ----------------------------------------------
    def occupy(self, arrival: float, cpu: float) -> float:
        """Queue ``cpu`` us of daemon work arriving at ``arrival``.

        Returns the completion time; advances ``busy_until``.  A fault
        plan may defer the arrival past a restart (outage) window or
        inflate ``cpu`` by a slowdown factor.
        """
        faults = self.domain.faults
        if faults is not None:
            arrival, cpu = faults.pmi_adjust(self.node, arrival, cpu)
        start = max(arrival, self.busy_until)
        done = start + cpu
        self.busy_until = done
        return done

    # -- collective machinery ---------------------------------------------
    def coll(self, cid: str) -> _CollectiveState:
        state = self._coll.get(cid)
        if state is None:
            state = _CollectiveState(
                local_needed=self.nlocal, children_needed=len(self.children)
            )
            self._coll[cid] = state
        return state

    def local_contribution(self, cid: str, rank: int, value: Any, when: float) -> None:
        """A local client's contribution, already daemon-time adjusted."""
        state = self.coll(cid)
        state.local_arrived += 1
        if value is not None:
            state.payload[rank] = value
        self.domain._check_progress(self, cid, when)

    def child_contribution(
        self, cid: str, payload: Dict[int, Any], when: float
    ) -> None:
        state = self.coll(cid)
        state.children_arrived += 1
        state.payload.update(payload)
        self.domain._check_progress(self, cid, when)

    def deliver_down(self, cid: str, result: Dict[int, Any], when: float) -> None:
        state = self.coll(cid)
        state.result = result
        self.domain._propagate_down(self, cid, when)


class PMIDomain:
    """The whole process-manager: daemons, tree, committed KVS."""

    def __init__(self, sim: Simulator, cluster: Cluster, counters: Counters) -> None:
        self.sim = sim
        self.cluster = cluster
        self.cost = cluster.cost
        self.counters = counters
        self.fanout = max(2, cluster.cost.pmi_tree_fanout)
        self.nnodes = cluster.nnodes
        #: Optional fault injector (installed by ``Job(faults=...)``).
        self.faults: Optional["FaultInjector"] = None
        #: Flight recorder (installed by ``Job(observe=True)``).
        self.obs = None
        #: Invariant sanitizer (installed by ``Job(check=...)``).
        self.check = None
        self.kvs = KeyValueStore()
        self.daemons = [
            Daemon(self, node, len(cluster.ranks_on_node(node)))
            for node in range(cluster.nnodes)
        ]

    def daemon_of(self, rank: int) -> Daemon:
        return self.daemons[self.cluster.node_of(rank)]

    def install_timeline_probes(self, timeline) -> None:
        """Register PMI time-series probes (pure reads; see the
        determinism contract in :mod:`repro.obs.timeline`)."""
        timeline.add_probe("pmi.kvs_keys", self.kvs.__len__)
        timeline.add_probe(
            "pmi.collectives",
            lambda: sum(len(d._coll) for d in self.daemons),
        )

    # ------------------------------------------------------------------
    # Tree message timing
    # ------------------------------------------------------------------
    def _tree_send(
        self,
        src: Daemon,
        dst: Daemon,
        entries: int,
        fn: Callable[[float], None],
        when: float,
    ) -> None:
        """Send a tree message carrying ``entries`` KVS entries.

        ``fn(t)`` runs at the destination once the message is received
        *and* processed (it may then trigger further sends).
        """
        nbytes = max(64, entries * self.cost.pmi_entry_bytes)
        ser_cpu = entries * self.cost.pmi_entry_cpu_us
        send_done = src.occupy(when, ser_cpu)
        arrival = send_done + self.cost.pmi_tcp_time(nbytes)
        proc_done_holder = {}

        def on_arrival(_arg) -> None:
            done = dst.occupy(
                self.sim.now, self.cost.pmi_server_cpu_us + ser_cpu
            )
            self.sim._schedule_at(done, lambda _a: fn(done), None)

        self.sim._schedule_at(arrival, on_arrival, None)
        self.counters.add("pmi.tree_messages")
        self.counters.add("pmi.tree_bytes", nbytes)
        if self.obs is not None:
            self.obs.spans.event(
                "pmi.tree_send", "pmi",
                src_node=src.node, dst_node=dst.node, nbytes=nbytes,
            )

    # ------------------------------------------------------------------
    # Collective progress
    # ------------------------------------------------------------------
    @staticmethod
    def _entries_of(cid: str, payload: Dict[int, Any]) -> int:
        """KVS entries a message carries.

        For a fence, each rank's contribution is the *count* of entries
        it staged (the data that must ride the tree); for allgather and
        ring it is one value per rank.
        """
        if cid.startswith("fence:"):
            return max(1, sum(int(v or 0) for v in payload.values()))
        return max(1, len(payload))

    def _check_progress(self, daemon: Daemon, cid: str, when: float) -> None:
        state = daemon.coll(cid)
        if state.up_sent:
            return
        if (
            state.local_arrived >= state.local_needed
            and state.children_arrived >= state.children_needed
        ):
            state.up_sent = True
            parent = daemon.parent
            if parent is None:
                # Root: subtree payload is the full result.
                result = state.payload
                if cid.startswith("fence:"):
                    self.kvs.commit(self._collect_staging())
                daemon.deliver_down(cid, result, when)
            else:
                dst = self.daemons[parent]
                payload = state.payload
                self._tree_send(
                    daemon,
                    dst,
                    entries=self._entries_of(cid, payload),
                    fn=lambda t, p=payload: dst.child_contribution(cid, p, t),
                    when=when,
                )

    def _collect_staging(self) -> Dict[str, Any]:
        staged: Dict[str, Any] = {}
        for d in self.daemons:
            staged.update(d.staging)
            d.staging = {}
        return staged

    def _propagate_down(self, daemon: Daemon, cid: str, when: float) -> None:
        state = daemon.coll(cid)
        assert state.result is not None
        total_entries = self._entries_of(cid, state.result)
        t = when
        for child in daemon.children:
            dst = self.daemons[child]
            self._tree_send(
                daemon,
                dst,
                entries=total_entries,
                fn=lambda tt, d=dst: d.deliver_down(cid, state.result, tt),
                when=t,
            )
        # Release local waiters after the daemon finished its down work.
        # All waiters share one release instant, so the whole fence wave
        # goes out as a single aggregate: one scheduler entry, one
        # contiguous seq block — byte-identical order to the former
        # per-waiter scheduling loop (see repro.sim.calendar).
        release_at = max(when, daemon.busy_until) + self.cost.pmi_local_rtt_us / 2
        if state.waiters:
            self.sim.schedule_wave(
                release_at, _SucceedWith(state.result), state.waiters
            )
            state.waiters = []

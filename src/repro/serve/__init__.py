"""The multi-tenant sweep service (ROADMAP item 3; see DESIGN.md).

``repro.exec`` made a :class:`~repro.exec.JobSpec` a picklable, fully
deterministic description of one run; this package exploits that to
serve *streams* of specs the way a production system serves traffic:

* :mod:`repro.serve.cache` — :class:`ResultCache`, a content-addressed
  result store (memory + disk tiers, LRU byte budgets) keyed by
  :func:`repro.exec.spec_hash`; a hit is free and provably exact.
* :mod:`repro.serve.service` — :class:`SweepService`, the long-lived
  admission + fair-share scheduling front end that dedupes in-flight
  and completed specs and fans genuine misses over the sweep pool.
* :mod:`repro.serve.trace` — :class:`JobArrival` records and the
  deterministic skewed multi-tenant :func:`synthetic_trace` generator.
* :mod:`repro.serve.store` — :class:`ResultStore`, the queryable read
  API over everything the service has computed.
"""

from ..exec import canonical_json, canonical_spec, spec_hash, spec_identity
from .cache import PICKLE_PROTOCOL, ResultCache, canonical_payload
from .service import ServiceReport, SweepService
from .store import ResultStore, StoreEntry
from .trace import JobArrival, synthetic_trace

__all__ = [
    "PICKLE_PROTOCOL",
    "JobArrival",
    "ResultCache",
    "ResultStore",
    "ServiceReport",
    "StoreEntry",
    "SweepService",
    "canonical_json",
    "canonical_payload",
    "canonical_spec",
    "spec_hash",
    "spec_identity",
    "synthetic_trace",
]

"""The content-addressed result cache: memory + disk tiers, LRU budget.

Every entry is keyed by :func:`repro.exec.spec_hash` — a collision-free
digest of the spec's semantic content — and holds the *pickled bytes*
of the :class:`~repro.core.metrics.JobResult` a fresh run of that spec
produces.  Because a JobSpec fully determines its result, a cache hit
is provably exact: ``cache.get(spec)`` returns an object whose pickle
serialisation is byte-identical to a fresh ``execute(spec)``'s (the
``serve-smoke`` gate and ``tests/serve/test_exactness.py`` assert
this literally).

Two tiers:

* **memory** — an LRU dict of pickled payloads under a byte budget.
  Storing bytes (not live objects) keeps hits aliasing-free: every
  ``get`` unpickles a fresh object graph, so a caller mutating its
  result can never corrupt the cache.
* **disk** — an optional content-addressed directory
  (``objects/<hh>/<hash>.pkl`` + ``index.json``), written through on
  every ``put`` so the cache survives process restarts and is
  shareable between service instances.  Its own byte budget evicts
  least-recently-*written* entries.

Hit/miss/eviction counters and byte gauges land on a
:class:`repro.obs.MetricsRegistry` (``serve.cache.*``), so a service
run exports cache behaviour through the same snapshot / Prometheus
path every other subsystem uses.
"""

from __future__ import annotations

import json
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ConfigError
from ..exec import JobSpec, spec_hash
from ..obs.metrics import MetricsRegistry

__all__ = ["ResultCache", "PICKLE_PROTOCOL", "canonical_payload"]

#: Pinned so payload bytes are stable across interpreter minor versions
#: that share a pickle implementation; the byte-identity guarantee is
#: always *within* one interpreter, the pin just avoids gratuitous
#: cross-version churn in persisted caches.
PICKLE_PROTOCOL = 4

_INDEX_NAME = "index.json"
_OBJECTS_DIR = "objects"


def canonical_payload(result: Any) -> bytes:
    """The canonical pickled form of a result — the cached bytes.

    A plain ``pickle.dumps`` is sensitive to the object graph's
    *sharing* structure, which differs between an in-process result
    and the same result after crossing a pool-worker pickle boundary
    (unpickling interns instance-dict keys, merging equal strings that
    were distinct objects in the fresh graph).  One dump/load/dump
    round-trip normalises the sharing to the unpickler's canonical
    form — a fixed point, so results from either path serialise to
    identical bytes and the byte-identity gate is meaningful.
    """
    raw = pickle.dumps(result, protocol=PICKLE_PROTOCOL)
    return pickle.dumps(pickle.loads(raw), protocol=PICKLE_PROTOCOL)


def _resolve_key(spec_or_hash: Any) -> str:
    if isinstance(spec_or_hash, str):
        return spec_or_hash
    if isinstance(spec_or_hash, JobSpec):
        return spec_hash(spec_or_hash)
    raise ConfigError(
        f"ResultCache keys are JobSpecs or hash strings, "
        f"got {spec_or_hash!r}"
    )


def _entry_meta(spec: JobSpec, payload: bytes, result: Any) -> Dict[str, Any]:
    """Queryable metadata stored alongside the payload."""
    app = spec.app
    return {
        "app": getattr(app, "name", type(app).__name__),
        "npes": spec.npes,
        "config_label": spec.config.label,
        "testbed": spec.testbed,
        "ppn": spec.ppn,
        "macro": bool(getattr(result, "macro", False)),
        "wall_time_us": float(getattr(result, "wall_time_us", 0.0)),
        "size": len(payload),
    }


class ResultCache:
    """Content-addressed JobResult store (see module docstring).

    ``path=None`` runs memory-only; with a path, every ``put`` writes
    through to disk and a fresh instance on the same path starts warm.
    """

    def __init__(
        self,
        path: Optional[Any] = None,
        memory_budget: int = 64 * 1024 * 1024,
        disk_budget: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if memory_budget < 0:
            raise ConfigError(
                f"ResultCache.memory_budget must be >= 0, "
                f"got {memory_budget}"
            )
        if disk_budget is not None and disk_budget < 0:
            raise ConfigError(
                f"ResultCache.disk_budget must be >= 0 or None, "
                f"got {disk_budget}"
            )
        self.memory_budget = memory_budget
        self.disk_budget = disk_budget
        self.registry = registry if registry is not None else MetricsRegistry()
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._memory_bytes = 0
        #: hash -> metadata for every entry in either tier, in
        #: least-recently-written order (the disk eviction order).
        self._meta: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: hashes currently present on disk.
        self._on_disk: Dict[str, bool] = {}
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            (self._path / _OBJECTS_DIR).mkdir(parents=True, exist_ok=True)
            self._load_index()

    # -- persistence ----------------------------------------------------
    def _index_path(self) -> Path:
        return self._path / _INDEX_NAME

    def _object_path(self, key: str) -> Path:
        return self._path / _OBJECTS_DIR / key[:2] / f"{key}.pkl"

    def _load_index(self) -> None:
        index = self._index_path()
        if not index.exists():
            return
        try:
            entries = json.loads(index.read_text())
        except (OSError, ValueError) as exc:
            raise ConfigError(
                f"ResultCache: corrupt index {index}: {exc}"
            ) from exc
        for key, meta in entries.items():
            if self._object_path(key).exists():
                self._meta[key] = meta
                self._on_disk[key] = True

    def _write_index(self) -> None:
        if self._path is None:
            return
        on_disk = {
            key: meta for key, meta in self._meta.items()
            if self._on_disk.get(key)
        }
        self._index_path().write_text(
            json.dumps(on_disk, sort_keys=False, indent=0)
        )

    # -- metrics helpers ------------------------------------------------
    def _count(self, name: str, **labels: Any) -> None:
        self.registry.counter(f"serve.cache.{name}", **labels).inc()

    def _set_gauges(self) -> None:
        self.registry.gauge("serve.cache.bytes", tier="memory").set(
            self._memory_bytes
        )
        self.registry.gauge("serve.cache.entries", tier="memory").set(
            len(self._memory)
        )
        self.registry.gauge("serve.cache.entries", tier="disk").set(
            sum(1 for v in self._on_disk.values() if v)
        )

    # -- tier plumbing --------------------------------------------------
    def _memory_insert(self, key: str, payload: bytes) -> None:
        if key in self._memory:
            self._memory.move_to_end(key)
            return
        if len(payload) > self.memory_budget:
            # Payload alone overflows the tier; skip it rather than
            # evicting everything for a transient resident.
            return
        self._memory[key] = payload
        self._memory_bytes += len(payload)
        while self._memory_bytes > self.memory_budget:
            victim, victim_payload = self._memory.popitem(last=False)
            self._memory_bytes -= len(victim_payload)
            self._count("evictions", tier="memory")
            if not self._on_disk.get(victim):
                # Memory was the only copy: the entry leaves the cache.
                self._meta.pop(victim, None)

    def _disk_insert(self, key: str, payload: bytes) -> None:
        if self._path is None:
            return
        obj = self._object_path(key)
        obj.parent.mkdir(parents=True, exist_ok=True)
        obj.write_bytes(payload)
        self._on_disk[key] = True
        if self.disk_budget is not None:
            disk_bytes = sum(
                meta["size"] for k, meta in self._meta.items()
                if self._on_disk.get(k)
            )
            for victim in list(self._meta):
                if disk_bytes <= self.disk_budget:
                    break
                if victim == key or not self._on_disk.get(victim):
                    continue
                disk_bytes -= self._meta[victim]["size"]
                self._evict_disk(victim)
        self._write_index()

    def _evict_disk(self, key: str) -> None:
        self._object_path(key).unlink(missing_ok=True)
        self._on_disk[key] = False
        self._count("evictions", tier="disk")
        if key not in self._memory:
            self._meta.pop(key, None)

    # -- public API -----------------------------------------------------
    def put(self, spec: JobSpec, result: Any,
            payload: Optional[bytes] = None) -> str:
        """Store ``result`` under ``spec``'s content hash; returns it.

        ``payload`` (the canonical pickled bytes) may be passed when
        the caller already serialised the result — e.g. exactness
        tests comparing against a worker's wire bytes.
        """
        key = spec_hash(spec)
        if payload is None:
            payload = canonical_payload(result)
        fresh = key not in self._meta
        self._meta[key] = _entry_meta(spec, payload, result)
        if fresh:
            self._count("stores")
        self._memory_insert(key, payload)
        self._disk_insert(key, payload)
        self._set_gauges()
        return key

    def get_bytes(self, spec_or_hash: Any) -> Optional[bytes]:
        """The stored payload bytes, or ``None`` on a miss.

        A hit promotes the entry to the memory tier's MRU end; counters
        record which tier served it.
        """
        key = _resolve_key(spec_or_hash)
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self._count("hits", tier="memory")
            return payload
        if self._on_disk.get(key):
            obj = self._object_path(key)
            try:
                payload = obj.read_bytes()
            except OSError:
                # The file vanished under us (external cleanup);
                # treat as a miss and drop the stale index entry.
                self._on_disk[key] = False
                self._meta.pop(key, None)
                self._write_index()
                self._count("misses")
                return None
            self._count("hits", tier="disk")
            self._memory_insert(key, payload)
            self._set_gauges()
            return payload
        self._count("misses")
        return None

    def get(self, spec_or_hash: Any) -> Optional[Any]:
        """The cached :class:`JobResult` (a fresh unpickled object
        graph on every call), or ``None`` on a miss."""
        payload = self.get_bytes(spec_or_hash)
        if payload is None:
            return None
        return pickle.loads(payload)

    def contains(self, spec_or_hash: Any) -> bool:
        """Membership without touching hit/miss counters or LRU order."""
        key = _resolve_key(spec_or_hash)
        return key in self._memory or bool(self._on_disk.get(key))

    __contains__ = contains

    def metadata(self, spec_or_hash: Any) -> Optional[Dict[str, Any]]:
        """The queryable metadata for one entry (None on a miss)."""
        meta = self._meta.get(_resolve_key(spec_or_hash))
        return dict(meta) if meta is not None else None

    def hashes(self) -> List[str]:
        """Every resident hash, least-recently-written first."""
        return [
            k for k in self._meta
            if k in self._memory or self._on_disk.get(k)
        ]

    def entries(self) -> List[Dict[str, Any]]:
        """``metadata() + {"hash": ...}`` for every resident entry."""
        return [
            {"hash": k, **self._meta[k]} for k in self.hashes()
        ]

    def __len__(self) -> int:
        return len(self.hashes())

    def evict_memory(self) -> int:
        """Drop the whole memory tier (disk copies survive); returns
        the number of entries dropped.  Exercises the demote/refill
        path the exactness tests pin."""
        dropped = 0
        for victim in list(self._memory):
            payload = self._memory.pop(victim)
            self._memory_bytes -= len(payload)
            self._count("evictions", tier="memory")
            dropped += 1
            if not self._on_disk.get(victim):
                self._meta.pop(victim, None)
        self._set_gauges()
        return dropped

    def stats(self) -> Dict[str, Any]:
        """Flat counter/occupancy summary (reads the registry)."""
        def count(name: str, **labels: Any) -> int:
            return self.registry.counter(name, **labels).value

        return {
            "entries": len(self),
            "memory_entries": len(self._memory),
            "memory_bytes": self._memory_bytes,
            "disk_entries": sum(1 for v in self._on_disk.values() if v),
            "stores": count("serve.cache.stores"),
            "hits_memory": count("serve.cache.hits", tier="memory"),
            "hits_disk": count("serve.cache.hits", tier="disk"),
            "misses": count("serve.cache.misses"),
            "evictions_memory": count("serve.cache.evictions",
                                      tier="memory"),
            "evictions_disk": count("serve.cache.evictions", tier="disk"),
        }

"""The multi-tenant sweep service: admission, fair-share, dedup.

``SweepService`` is the long-lived front end the ROADMAP's item 3 asks
for: tenants submit streams of :class:`~repro.exec.JobSpec`\\ s (live
via :meth:`~SweepService.submit`, or replayed from a trace via
:meth:`~SweepService.run_trace`), and the service answers each from the
content-addressed :class:`~repro.serve.cache.ResultCache` when it can,
scheduling only genuine misses onto the PR-4 sweep pool.

The service itself is a small deterministic discrete-event model in
**virtual time** — deliberately the same trick the simulator plays on
the paper's cluster.  Executing a spec takes real CPU once (and is
cached forever after), but *when* each submission completes is computed
in simulated microseconds:

* a **hit** (spec already cached, or completed earlier in this
  service's lifetime) costs ``hit_cost_us`` and never occupies a slot;
* an **in-flight duplicate** attaches to the running job and completes
  with it — one execution serves every concurrent requester;
* a **miss** queues per-tenant and waits for one of ``concurrency``
  server slots; its service time is the job's own simulated
  ``wall_time_us``, so bigger experiments genuinely hold slots longer.

Scheduling across tenants is weighted fair-share (stride scheduling:
each dispatch advances the owning tenant's virtual time by
``duration / weight``, and the backlogged tenant with the smallest
virtual time goes next; a tenant returning from idle is re-based so it
cannot starve the others with banked idleness).  Within a tenant,
higher ``priority`` wins, FIFO within a priority.  Admission control
is a per-tenant queue cap: a cold submission beyond ``queue_limit``
is rejected outright, recorded per tenant.

Everything lands on a :class:`~repro.obs.MetricsRegistry`
(``serve.submitted{tenant=}``, ``serve.hits``, ``serve.dedup_inflight``,
``serve.misses``, ``serve.rejected{tenant=}``, per-tenant
``serve.latency_us`` histograms, an ``serve.inflight`` gauge) so one
snapshot/Prometheus export shows service behaviour next to cache
behaviour.

Determinism contract: same cache state + same submission sequence →
identical :class:`ServiceReport`, including every latency percentile.
All tie-breaks are (value, sequence-number) ordered; no wall clock, no
unordered iteration, no stdlib ``random``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from ..exec import (
    JobSpec,
    canonical_json,
    execute,
    run_sweep,
    spec_hash,
)
from ..obs.metrics import MetricsRegistry
from .cache import ResultCache
from .trace import JobArrival

__all__ = ["SweepService", "ServiceReport"]


def _percentile(sorted_values: List[float], p: float) -> float:
    """Exact nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    rank = max(1, math.ceil(p / 100.0 * n))
    return sorted_values[min(n, rank) - 1]


@dataclass
class _Pending:
    key: str
    spec: JobSpec
    tenant: str
    arrival_us: float
    priority: int
    seq: int
    #: (tenant, arrival_us) of every submission waiting on this entry —
    #: duplicates arriving while it sits in the queue attach here, and
    #: the list transfers to the :class:`_Running` at dispatch.
    waiters: List[Tuple[str, float]] = field(default_factory=list)


@dataclass
class _Running:
    key: str
    tenant: str
    start_us: float
    finish_us: float
    duration_us: float
    #: (tenant, arrival_us) of every submission served by this run.
    waiters: List[Tuple[str, float]] = field(default_factory=list)


@dataclass
class ServiceReport:
    """Everything one service run (or trace replay) produced."""

    submitted: int
    admitted: int
    rejected: int
    hits: int
    dedup_inflight: int
    misses: int
    executed: int
    hit_ratio: float
    makespan_us: float
    identity_collisions: int
    fairness: float
    #: name -> {submitted, hits, misses, dedup_inflight, rejected,
    #:          completed, busy_us, weight, latency_us: {p50/p90/p99/
    #:          mean/max}}
    tenants: Dict[str, Dict[str, Any]]

    def format(self) -> str:
        """Human-readable multi-line summary (smoke script output)."""
        lines = [
            f"submitted={self.submitted} admitted={self.admitted} "
            f"rejected={self.rejected}",
            f"hits={self.hits} dedup_inflight={self.dedup_inflight} "
            f"misses={self.misses} executed={self.executed} "
            f"hit_ratio={self.hit_ratio:.3f}",
            f"makespan={self.makespan_us / 1e6:.3f}s "
            f"fairness={self.fairness:.3f} "
            f"collisions={self.identity_collisions}",
        ]
        for name, t in self.tenants.items():
            lat = t["latency_us"]
            lines.append(
                f"  tenant {name} (w={t['weight']:g}): "
                f"sub={t['submitted']} hit={t['hits']} "
                f"miss={t['misses']} dedup={t['dedup_inflight']} "
                f"rej={t['rejected']} busy={t['busy_us'] / 1e6:.3f}s "
                f"p50={lat['p50'] / 1e3:.2f}ms "
                f"p90={lat['p90'] / 1e3:.2f}ms "
                f"p99={lat['p99'] / 1e3:.2f}ms"
            )
        return "\n".join(lines)


class SweepService:
    """Multi-tenant sweep front end over a :class:`ResultCache`."""

    def __init__(
        self,
        cache: ResultCache,
        tenants: Mapping[str, float],
        concurrency: int = 2,
        queue_limit: Optional[int] = None,
        hit_cost_us: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if not isinstance(cache, ResultCache):
            raise ConfigError(
                f"SweepService needs a ResultCache, got {cache!r}"
            )
        if not tenants:
            raise ConfigError("SweepService needs at least one tenant")
        for name, weight in tenants.items():
            if not isinstance(name, str) or not name:
                raise ConfigError(
                    f"tenant names must be non-empty strings, got {name!r}"
                )
            if not weight > 0:
                raise ConfigError(
                    f"tenant {name!r} weight must be positive, got {weight!r}"
                )
        if concurrency < 1:
            raise ConfigError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        if queue_limit is not None and queue_limit < 1:
            raise ConfigError(
                f"queue_limit must be >= 1 or None, got {queue_limit}"
            )
        if hit_cost_us < 0:
            raise ConfigError(
                f"hit_cost_us must be >= 0, got {hit_cost_us}"
            )
        self.cache = cache
        self.registry = registry if registry is not None else cache.registry
        self.weights: Dict[str, float] = {
            name: float(w) for name, w in tenants.items()
        }
        self.concurrency = concurrency
        self.queue_limit = queue_limit
        self.hit_cost_us = hit_cost_us
        self.max_workers = max_workers

        self.now = 0.0
        self._seq = 0
        self._queues: Dict[str, List[Tuple[int, int, _Pending]]] = {
            name: [] for name in self.weights
        }
        self._running: List[Tuple[float, int, _Running]] = []
        self._inflight: Dict[str, _Running] = {}
        self._queued: Dict[str, _Pending] = {}
        self._completed: Dict[str, bool] = {}
        self._durations: Dict[str, float] = {}
        self._vtime: Dict[str, float] = {name: 0.0 for name in self.weights}
        self._vfloor = 0.0
        self._canon: Dict[str, str] = {}
        self._collisions = 0
        self._executed = 0
        self._stats: Dict[str, Dict[str, Any]] = {
            name: {
                "submitted": 0, "hits": 0, "misses": 0,
                "dedup_inflight": 0, "rejected": 0, "completed": 0,
                "busy_us": 0.0, "latencies": [],
            }
            for name in self.weights
        }

    # -- metrics --------------------------------------------------------
    def _observe_latency(self, tenant: str, latency_us: float) -> None:
        stats = self._stats[tenant]
        stats["latencies"].append(latency_us)
        stats["completed"] += 1
        # Histograms only take positive observations; an instant hit
        # with hit_cost_us=0 still counts through the list above.
        if latency_us > 0:
            self.registry.histogram(
                "serve.latency_us", tenant=tenant
            ).observe(latency_us)

    # -- identity bookkeeping -------------------------------------------
    def _register_identity(self, key: str, spec: JobSpec) -> None:
        canon = canonical_json(spec)
        known = self._canon.get(key)
        if known is None:
            self._canon[key] = canon
        elif known != canon:  # pragma: no cover - sha256 collision
            self._collisions += 1
            self.registry.counter("serve.identity_collisions").inc()

    # -- virtual-time engine --------------------------------------------
    def _complete_next(self) -> None:
        finish, _, run = heapq.heappop(self._running)
        self.now = finish
        self._inflight.pop(run.key, None)
        self._completed[run.key] = True
        self._stats[run.tenant]["busy_us"] += run.duration_us
        for tenant, arrival_us in run.waiters:
            self._observe_latency(tenant, finish - arrival_us)
        self.registry.gauge("serve.inflight").set(len(self._running))
        self._dispatch()

    def advance_to(self, time_us: float) -> None:
        """Process every completion up to ``time_us``, then move the
        virtual clock there."""
        while self._running and self._running[0][0] <= time_us:
            self._complete_next()
        if time_us > self.now:
            self.now = time_us

    def _duration_for(self, pending: _Pending) -> float:
        duration = self._durations.get(pending.key)
        if duration is None:
            # Incremental (un-prefetched) miss: run it now, cache it.
            result = execute(pending.spec)
            self._executed += 1
            self.cache.put(pending.spec, result)
            duration = float(result.wall_time_us)
            self._durations[pending.key] = duration
        return duration

    def _dispatch(self) -> None:
        while len(self._running) < self.concurrency:
            backlogged = [
                name for name, q in self._queues.items() if q
            ]
            if not backlogged:
                return
            tenant = min(backlogged, key=lambda n: (self._vtime[n], n))
            _, _, pending = heapq.heappop(self._queues[tenant])
            self._queued.pop(pending.key, None)
            duration = self._duration_for(pending)
            self._vfloor = self._vtime[tenant]
            self._vtime[tenant] += duration / self.weights[tenant]
            run = _Running(
                key=pending.key,
                tenant=tenant,
                start_us=self.now,
                finish_us=self.now + duration,
                duration_us=duration,
                waiters=pending.waiters,
            )
            self._inflight[pending.key] = run
            self._seq += 1
            heapq.heappush(
                self._running, (run.finish_us, self._seq, run)
            )
            self.registry.gauge("serve.inflight").set(len(self._running))

    # -- submission -----------------------------------------------------
    def submit(
        self,
        time_us: float,
        tenant: str,
        spec: JobSpec,
        priority: int = 0,
        warm: Optional[bool] = None,
    ) -> str:
        """Submit one spec; returns ``"hit"``, ``"inflight"``,
        ``"miss"`` (admitted cold), or ``"rejected"``.

        Submissions must be time-ordered.  ``warm`` overrides the
        hit/miss classification (``run_trace`` passes the pre-replay
        snapshot so its own prefetch doesn't inflate the hit ratio);
        ``None`` consults the live cache.
        """
        if tenant not in self.weights:
            raise ConfigError(
                f"unknown tenant {tenant!r}; service tenants are "
                f"{sorted(self.weights)}"
            )
        if time_us < self.now:
            raise ConfigError(
                f"submissions must be time-ordered: {time_us} is before "
                f"the service clock {self.now}"
            )
        if not isinstance(spec, JobSpec):
            raise ConfigError(f"submit expects a JobSpec, got {spec!r}")
        self.advance_to(time_us)
        stats = self._stats[tenant]
        stats["submitted"] += 1
        self.registry.counter("serve.submitted", tenant=tenant).inc()
        key = spec_hash(spec)
        self._register_identity(key, spec)

        run = self._inflight.get(key)
        if run is not None:
            run.waiters.append((tenant, time_us))
            stats["dedup_inflight"] += 1
            self.registry.counter("serve.dedup_inflight").inc()
            return "inflight"
        pending = self._queued.get(key)
        if pending is not None:
            # Queued-but-not-dispatched duplicates attach to the
            # pending entry: one future execution serves them all.
            pending.waiters.append((tenant, time_us))
            stats["dedup_inflight"] += 1
            self.registry.counter("serve.dedup_inflight").inc()
            return "inflight"

        if warm is None:
            warm = self.cache.contains(key)
        if warm or key in self._completed:
            stats["hits"] += 1
            self.registry.counter("serve.hits").inc()
            self._observe_latency(tenant, self.hit_cost_us)
            return "hit"

        if (
            self.queue_limit is not None
            and len(self._queues[tenant]) >= self.queue_limit
        ):
            stats["rejected"] += 1
            self.registry.counter("serve.rejected", tenant=tenant).inc()
            return "rejected"

        stats["misses"] += 1
        self.registry.counter("serve.misses").inc()
        self._seq += 1
        if not self._queues[tenant] and not any(
            r.tenant == tenant for _, _, r in self._running
        ):
            # Re-base a tenant returning from idle so banked idleness
            # cannot starve the active tenants.
            self._vtime[tenant] = max(self._vtime[tenant], self._vfloor)
        pending = _Pending(key, spec, tenant, time_us, priority,
                           self._seq, waiters=[(tenant, time_us)])
        self._queued[key] = pending
        heapq.heappush(
            self._queues[tenant], (-priority, self._seq, pending)
        )
        self._dispatch()
        return "miss"

    def drain(self) -> "ServiceReport":
        """Run every queued/in-flight job to completion; report."""
        while self._running:
            self._complete_next()
        return self.report()

    # -- trace replay ---------------------------------------------------
    def run_trace(
        self,
        arrivals: List[JobArrival],
        prefetch: bool = True,
    ) -> "ServiceReport":
        """Replay a trace and drain; returns the report.

        With ``prefetch`` (the default), the distinct cold specs are
        first fanned over the PR-4 sweep pool (``run_sweep``) and
        cached, so the replay itself is pure virtual-time bookkeeping;
        hit/miss classification is snapshotted *before* the prefetch,
        so warming the cache this way never inflates the hit ratio.
        """
        for arrival in arrivals:
            if not isinstance(arrival, JobArrival):
                raise ConfigError(
                    f"run_trace expects JobArrivals, got {arrival!r}"
                )
        arrivals = sorted(
            arrivals, key=lambda a: a.time_us
        )
        warm_map: Dict[str, bool] = {}
        cold_specs: List[JobSpec] = []
        for arrival in arrivals:
            key = spec_hash(arrival.spec)
            if key not in warm_map:
                warm_map[key] = self.cache.contains(key)
                if not warm_map[key] and key not in self._completed:
                    cold_specs.append(arrival.spec)
        if prefetch and cold_specs:
            results = run_sweep(cold_specs, max_workers=self.max_workers)
            self._executed += len(results)
            for spec, result in zip(cold_specs, results):
                key = self.cache.put(spec, result)
                self._durations[key] = float(result.wall_time_us)
        for arrival in arrivals:
            self.submit(
                arrival.time_us, arrival.tenant, arrival.spec,
                priority=arrival.priority,
                warm=warm_map[spec_hash(arrival.spec)],
            )
        return self.drain()

    # -- reporting ------------------------------------------------------
    def report(self) -> "ServiceReport":
        """Snapshot of everything submitted so far."""
        tenants: Dict[str, Dict[str, Any]] = {}
        totals = {
            "submitted": 0, "hits": 0, "misses": 0,
            "dedup_inflight": 0, "rejected": 0,
        }
        busy_shares: List[float] = []
        for name in self.weights:
            stats = self._stats[name]
            for k in totals:
                totals[k] += stats[k]
            latencies = sorted(stats["latencies"])
            tenants[name] = {
                "submitted": stats["submitted"],
                "hits": stats["hits"],
                "misses": stats["misses"],
                "dedup_inflight": stats["dedup_inflight"],
                "rejected": stats["rejected"],
                "completed": stats["completed"],
                "busy_us": stats["busy_us"],
                "weight": self.weights[name],
                "latency_us": {
                    "p50": _percentile(latencies, 50),
                    "p90": _percentile(latencies, 90),
                    "p99": _percentile(latencies, 99),
                    "mean": (sum(latencies) / len(latencies)
                             if latencies else 0.0),
                    "max": latencies[-1] if latencies else 0.0,
                },
            }
            if stats["busy_us"] > 0:
                busy_shares.append(stats["busy_us"] / self.weights[name])
        if len(busy_shares) >= 2:
            fairness = (
                sum(busy_shares) ** 2
                / (len(busy_shares) * sum(x * x for x in busy_shares))
            )
        else:
            fairness = 1.0
        admitted = totals["submitted"] - totals["rejected"]
        served = totals["hits"] + totals["dedup_inflight"]
        return ServiceReport(
            submitted=totals["submitted"],
            admitted=admitted,
            rejected=totals["rejected"],
            hits=totals["hits"],
            dedup_inflight=totals["dedup_inflight"],
            misses=totals["misses"],
            executed=self._executed,
            hit_ratio=(served / admitted) if admitted else 0.0,
            makespan_us=self.now,
            identity_collisions=self._collisions,
            fairness=fairness,
            tenants=tenants,
        )

"""The queryable result store: a read API over the content cache.

``ResultCache`` answers "give me the result for exactly this spec";
``ResultStore`` answers the browsing questions an experimenter asks a
long-lived service — *which* points are already computed, for which
apps and sizes, at what design corners — without re-deriving a single
spec.  It reads the cache's metadata index (which survives restarts on
a disk-backed cache), filters on the stored fields, and materialises
full :class:`~repro.core.metrics.JobResult` objects only on request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import ConfigError
from .cache import ResultCache

__all__ = ["ResultStore", "StoreEntry"]


@dataclass(frozen=True)
class StoreEntry:
    """One computed point, as the query API reports it."""

    hash: str
    app: str
    npes: int
    config_label: str
    testbed: str
    ppn: Optional[int]
    macro: bool
    wall_time_us: float
    size: int


class ResultStore:
    """Query façade over a :class:`ResultCache`."""

    def __init__(self, cache: ResultCache) -> None:
        if not isinstance(cache, ResultCache):
            raise ConfigError(
                f"ResultStore needs a ResultCache, got {cache!r}"
            )
        self.cache = cache

    def entries(self) -> List[StoreEntry]:
        """Every resident entry, hash-sorted (stable across tiers)."""
        rows = [
            StoreEntry(
                hash=meta["hash"], app=meta["app"], npes=meta["npes"],
                config_label=meta["config_label"],
                testbed=meta["testbed"], ppn=meta["ppn"],
                macro=meta["macro"], wall_time_us=meta["wall_time_us"],
                size=meta["size"],
            )
            for meta in self.cache.entries()
        ]
        return sorted(rows, key=lambda e: e.hash)

    def query(
        self,
        app: Optional[str] = None,
        npes: Optional[int] = None,
        config_label: Optional[str] = None,
        testbed: Optional[str] = None,
        predicate: Optional[Callable[[StoreEntry], bool]] = None,
    ) -> List[StoreEntry]:
        """Entries matching every given filter (AND semantics)."""
        out = []
        for entry in self.entries():
            if app is not None and entry.app != app:
                continue
            if npes is not None and entry.npes != npes:
                continue
            if config_label is not None and entry.config_label != config_label:
                continue
            if testbed is not None and entry.testbed != testbed:
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def get(self, spec_or_hash: Any) -> Any:
        """The full :class:`JobResult` for one entry.

        Raises :class:`KeyError` on a miss — the store is a read API
        over known results, not a compute path.
        """
        result = self.cache.get(spec_or_hash)
        if result is None:
            raise KeyError(
                f"result store has no entry for {spec_or_hash!r}"
            )
        return result

    def summary(self) -> Dict[str, Any]:
        """Aggregate view: entry count, byte total, apps x sizes."""
        entries = self.entries()
        apps: Dict[str, int] = {}
        sizes: Dict[int, int] = {}
        for entry in entries:
            apps[entry.app] = apps.get(entry.app, 0) + 1
            sizes[entry.npes] = sizes.get(entry.npes, 0) + 1
        return {
            "entries": len(entries),
            "bytes": sum(e.size for e in entries),
            "apps": dict(sorted(apps.items())),
            "sizes": dict(sorted(sizes.items())),
        }

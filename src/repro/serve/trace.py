"""Job-arrival traces: the service's stand-in for production traffic.

A trace is a time-ordered list of :class:`JobArrival` records — *which
tenant* asked for *which spec* at *what simulated instant*, with what
priority.  The ROADMAP's "heavy traffic from millions of users" becomes
a replayable, deterministic artefact: the synthetic generator draws
every choice from one seeded numpy Generator, so a (specs, tenants,
seed) triple always produces the same trace, and service-level results
(hit ratios, latency percentiles, fairness) are exactly reproducible.

The generator's shape mirrors what makes content-addressed caching
interesting in production: **skewed popularity** (Zipf-weighted spec
choice — a few hot experiment points dominate, the tail is cold) and
**uneven tenants** (weighted tenant choice, so fair-share actually has
something to arbitrate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

from ..errors import ConfigError
from ..exec import JobSpec

__all__ = ["JobArrival", "synthetic_trace"]


@dataclass(frozen=True)
class JobArrival:
    """One submission: a tenant hands the service a spec at a time."""

    time_us: float
    tenant: str
    spec: JobSpec
    priority: int = 0

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ConfigError(
                f"JobArrival.time_us must be >= 0, got {self.time_us}"
            )
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ConfigError(
                f"JobArrival.tenant must be a non-empty string, "
                f"got {self.tenant!r}"
            )
        if not isinstance(self.spec, JobSpec):
            raise ConfigError(
                f"JobArrival.spec must be a JobSpec, got {self.spec!r}"
            )


def synthetic_trace(
    specs: Sequence[JobSpec],
    tenants: Mapping[str, float],
    arrivals: int,
    seed: int = 0,
    mean_interarrival_us: float = 10_000.0,
    skew: float = 1.1,
    priorities: Sequence[int] = (0, 1, 2),
) -> List[JobArrival]:
    """Generate a deterministic skewed multi-tenant arrival trace.

    ``specs`` is the spec universe, most-popular first: spec ``i`` is
    drawn with Zipf weight ``1 / (i + 1) ** skew`` (``skew=0`` is
    uniform).  ``tenants`` maps tenant name to its traffic weight.
    Inter-arrival gaps are exponential with the given mean; priorities
    are drawn uniformly from ``priorities``.  Everything comes from
    ``numpy.random.default_rng(seed)`` — same inputs, same trace,
    byte for byte.
    """
    if not specs:
        raise ConfigError("synthetic_trace needs at least one spec")
    for spec in specs:
        if not isinstance(spec, JobSpec):
            raise ConfigError(
                f"synthetic_trace specs must be JobSpecs, got {spec!r}"
            )
    if not tenants:
        raise ConfigError("synthetic_trace needs at least one tenant")
    names = list(tenants)
    weights = np.asarray([float(tenants[name]) for name in names])
    if (weights <= 0).any():
        raise ConfigError(
            f"tenant weights must be positive, got {dict(tenants)!r}"
        )
    if arrivals < 1:
        raise ConfigError(f"arrivals must be >= 1, got {arrivals}")
    if mean_interarrival_us <= 0:
        raise ConfigError(
            f"mean_interarrival_us must be positive, "
            f"got {mean_interarrival_us}"
        )
    if skew < 0:
        raise ConfigError(f"skew must be >= 0, got {skew}")
    if not priorities:
        raise ConfigError("priorities must be non-empty")

    rng = np.random.default_rng(seed)
    pop = 1.0 / np.arange(1, len(specs) + 1, dtype=float) ** skew
    pop /= pop.sum()
    tenant_p = weights / weights.sum()

    gaps = rng.exponential(mean_interarrival_us, size=arrivals)
    times = np.cumsum(gaps)
    spec_idx = rng.choice(len(specs), size=arrivals, p=pop)
    tenant_idx = rng.choice(len(names), size=arrivals, p=tenant_p)
    prio_idx = rng.integers(0, len(priorities), size=arrivals)

    return [
        JobArrival(
            time_us=float(times[i]),
            tenant=names[tenant_idx[i]],
            spec=specs[spec_idx[i]],
            priority=int(priorities[prio_idx[i]]),
        )
        for i in range(arrivals)
    ]

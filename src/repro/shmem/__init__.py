"""OpenSHMEM runtime: symmetric heap, RMA, atomics, collectives, startup."""

from .activeset import ActiveSet
from .collectives import tree_parent_children
from .context import ShmemContext
from .heap import SymmetricHeap
from .runtime import ShmemPE
from .startup import (
    PHASE_CONN,
    PHASE_MEMREG,
    PHASE_OTHER,
    PHASE_PMI,
    PHASE_SHM,
    STARTUP_PHASES,
)

__all__ = [
    "ShmemPE",
    "ActiveSet",
    "ShmemContext",
    "SymmetricHeap",
    "tree_parent_children",
    "PHASE_CONN",
    "PHASE_PMI",
    "PHASE_MEMREG",
    "PHASE_SHM",
    "PHASE_OTHER",
    "STARTUP_PHASES",
]

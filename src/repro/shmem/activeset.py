"""OpenSHMEM 1.x active sets (PE_start, logPE_stride, PE_size).

The classic collectives take a strided subset of PEs instead of a
team object; :class:`ActiveSet` models that triple and provides the
rank translation the team collectives need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ShmemError

__all__ = ["ActiveSet"]


@dataclass(frozen=True)
class ActiveSet:
    """The (PE_start, logPE_stride, PE_size) triple of OpenSHMEM 1.x."""

    pe_start: int
    log_pe_stride: int
    pe_size: int

    def __post_init__(self) -> None:
        if self.pe_start < 0:
            raise ShmemError("PE_start must be >= 0")
        if self.log_pe_stride < 0:
            raise ShmemError("logPE_stride must be >= 0")
        if self.pe_size < 1:
            raise ShmemError("PE_size must be >= 1")

    @property
    def stride(self) -> int:
        return 1 << self.log_pe_stride

    @classmethod
    def world(cls, npes: int) -> "ActiveSet":
        return cls(pe_start=0, log_pe_stride=0, pe_size=npes)

    def members(self) -> List[int]:
        """Global ranks in the set, in team order."""
        return [self.pe_start + i * self.stride for i in range(self.pe_size)]

    def contains(self, rank: int) -> bool:
        offset = rank - self.pe_start
        return (
            0 <= offset
            and offset % self.stride == 0
            and offset // self.stride < self.pe_size
        )

    def team_rank(self, rank: int) -> int:
        """Position of a global rank within the set."""
        if not self.contains(rank):
            raise ShmemError(
                f"PE {rank} is not in active set "
                f"(start={self.pe_start}, stride={self.stride}, "
                f"size={self.pe_size})"
            )
        return (rank - self.pe_start) // self.stride

    def global_rank(self, team_rank: int) -> int:
        if not (0 <= team_rank < self.pe_size):
            raise ShmemError(f"team rank {team_rank} out of range")
        return self.pe_start + team_rank * self.stride

    def key(self) -> tuple:
        """Hashable identity for collective-channel keys."""
        return (self.pe_start, self.log_pe_stride, self.pe_size)

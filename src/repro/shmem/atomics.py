"""Remote atomic operations on 64-bit symmetric integers.

The full OpenSHMEM 1.x atomic set the paper benchmarks in Figure 6(c):
fadd, finc, add, inc, cswap, swap (plus fetch/set conveniences).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

__all__ = ["AtomicsMixin"]


class AtomicsMixin:
    """Mixed into :class:`repro.shmem.runtime.ShmemPE`."""

    def _atomic(self, peer: int, op: str, addr: int, compare: int,
                operand: int) -> Generator:
        self._require_init()
        self.counters.add("shmem.atomics")
        yield from self._ensure_peer(peer)
        raddr, rkey = self._translate(peer, addr)
        old = yield from self.conduit.atomic(
            peer, op, raddr, rkey, compare=compare, operand=operand
        )
        return old

    # -- fetching variants -------------------------------------------------
    def atomic_fetch_add(self, peer: int, addr: int, value: int) -> Generator:
        """shmem_longlong_fadd: returns the old value."""
        old = yield from self._atomic(peer, "fetch_add", addr, 0, value)
        return old

    def atomic_fetch_inc(self, peer: int, addr: int) -> Generator:
        """shmem_longlong_finc."""
        old = yield from self._atomic(peer, "fetch_add", addr, 0, 1)
        return old

    def atomic_compare_swap(self, peer: int, addr: int, cond: int,
                            value: int) -> Generator:
        """shmem_longlong_cswap: swap iff current == cond; returns old."""
        old = yield from self._atomic(peer, "cmp_swap", addr, cond, value)
        return old

    def atomic_swap(self, peer: int, addr: int, value: int) -> Generator:
        """shmem_longlong_swap: unconditional swap; returns old.

        Implemented as a compare-swap retry loop, as on HCAs without a
        native swap (bounded in practice by contention).
        """
        while True:
            current = yield from self.atomic_fetch_add(peer, addr, 0)
            old = yield from self._atomic(peer, "cmp_swap", addr, current, value)
            if old == current:
                return old

    def atomic_fetch(self, peer: int, addr: int) -> Generator:
        """shmem_longlong_fetch (atomic read)."""
        old = yield from self.atomic_fetch_add(peer, addr, 0)
        return old

    # -- non-fetching variants ----------------------------------------------
    def atomic_add(self, peer: int, addr: int, value: int) -> Generator:
        """shmem_longlong_add (no result returned)."""
        yield from self._atomic(peer, "fetch_add", addr, 0, value)

    def atomic_inc(self, peer: int, addr: int) -> Generator:
        """shmem_longlong_inc."""
        yield from self._atomic(peer, "fetch_add", addr, 0, 1)

    def atomic_set(self, peer: int, addr: int, value: int) -> Generator:
        """shmem_longlong_set (atomic write)."""
        yield from self.atomic_swap(peer, addr, value)

"""OpenSHMEM collectives: barrier, broadcast, collect, reductions —
over the world set or any OpenSHMEM 1.x *active set*.

Algorithms (and the connection footprints they imply, which is what
Figure 9 measures):

* barriers / broadcasts / reductions — a binary tree over the set's
  members: each PE talks to its parent and at most two children, so
  on-demand mode creates only a handful of connections per PE;
* ``collect``/``fcollect`` — Bruck-style dissemination allgather:
  ceil(log2 P) *distinct* peers per PE with doubling message sizes
  (the "dense" collective of Figure 7a);
* ``alltoall`` — pairwise exchange rounds (every member is a peer:
  the densest pattern, used by the IS kernel);
* the intra-node barrier of Section IV-E — pure shared memory, zero
  fabric connections.

All payloads are real bytes: a reduction really reduces, a collect
really concatenates.
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional, Tuple

import numpy as np

from ..errors import ShmemError
from .activeset import ActiveSet

__all__ = ["CollectivesMixin", "tree_parent_children"]


def tree_parent_children(rank: int, npes: int, root: int = 0
                         ) -> Tuple[Optional[int], List[int]]:
    """Binary-heap tree rotated so ``root`` is the root.

    Returns (parent or None, children) in *real* rank space.
    """
    vrank = (rank - root) % npes
    parent = None if vrank == 0 else ((vrank - 1) // 2 + root) % npes
    children = [
        (c + root) % npes
        for c in (2 * vrank + 1, 2 * vrank + 2)
        if c < npes
    ]
    return parent, children


_REDUCE_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


class CollectivesMixin:
    """Mixed into :class:`repro.shmem.runtime.ShmemPE`."""

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _world(self) -> ActiveSet:
        return ActiveSet.world(self.npes)

    def _team_tree(self, aset: ActiveSet, team_root: int
                   ) -> Tuple[Optional[int], List[int]]:
        """Parent/children as *global* ranks for a team tree."""
        me = aset.team_rank(self.rank)
        parent, children = tree_parent_children(me, aset.pe_size, team_root)
        return (
            None if parent is None else aset.global_rank(parent),
            [aset.global_rank(c) for c in children],
        )

    def _team_seq(self, kind: str, aset: ActiveSet) -> int:
        return self._next_seq((kind,) + aset.key())

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def barrier_all(self) -> Generator:
        """shmem_barrier_all: tree gather + release over the fabric."""
        self._require_init()
        self.counters.add("shmem.barriers")
        yield from self.team_barrier(self._world())

    def team_barrier(self, aset: ActiveSet) -> Generator:
        """shmem_barrier over an active set."""
        self._require_init()
        seq = self._team_seq("bar", aset)
        parent, children = self._team_tree(aset, 0)
        up = ("bar", aset.key(), seq, "up")
        down = ("bar", aset.key(), seq, "down")
        for _ in children:
            yield self._chan(up).recv()
        if parent is not None:
            yield from self._coll_send(parent, up)
            yield self._chan(down).recv()
        for child in children:
            yield from self._coll_send(child, down)

    def barrier_intranode(self) -> Generator:
        """The paper's shared-memory intra-node barrier (Section IV-E)."""
        if self.node_barrier is None:
            raise ShmemError(f"PE {self.rank}: node barrier not installed")
        local = self.cluster.local_size(self.rank)
        rounds = max(1, math.ceil(math.log2(max(2, local))))
        yield self.cost.shm_barrier_us * rounds
        yield self.node_barrier.wait()
        self.counters.add("shmem.intranode_barriers")

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------
    def broadcast(self, root: int, addr: int, nbytes: int) -> Generator:
        """shmem_broadcast over all PEs; ``root`` is a global rank."""
        self._require_init()
        self.counters.add("shmem.broadcasts")
        yield from self.team_broadcast(self._world(), root, addr, nbytes)

    def team_broadcast(self, aset: ActiveSet, pe_root: int, addr: int,
                       nbytes: int) -> Generator:
        """shmem_broadcast over an active set (``pe_root`` is the
        *team-relative* root, as in the OpenSHMEM 1.x signature)."""
        self._require_init()
        seq = self._team_seq("bcast", aset)
        key = ("bcast", aset.key(), seq)
        parent, children = self._team_tree(aset, pe_root)
        if parent is None:
            data = self.heap.read(addr, nbytes)
        else:
            _src, data = yield self._chan(key).recv()
            self.heap.write(addr, data)
        for child in children:
            yield from self._coll_send(child, key, payload=data, nbytes=nbytes)

    # ------------------------------------------------------------------
    # collect (allgather)
    # ------------------------------------------------------------------
    def fcollect(self, src_addr: int, dst_addr: int, nbytes: int) -> Generator:
        """shmem_fcollect: every PE contributes ``nbytes`` from
        ``src_addr``; the concatenation (by PE order) lands at
        ``dst_addr`` everywhere."""
        self._require_init()
        self.counters.add("shmem.collects")
        yield from self.team_fcollect(self._world(), src_addr, dst_addr, nbytes)

    collect = fcollect  # fixed-size variant is all the paper uses

    def team_fcollect(self, aset: ActiveSet, src_addr: int, dst_addr: int,
                      nbytes: int) -> Generator:
        """Bruck allgather over an active set (team order)."""
        self._require_init()
        n = aset.pe_size
        me = aset.team_rank(self.rank)
        seq = self._team_seq("coll", aset)
        blocks = {me: self.heap.read(src_addr, nbytes)}
        stages = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for k in range(stages):
            s = 1 << k
            dst = aset.global_rank((me - s) % n)
            key = ("coll", aset.key(), seq, k)
            total = sum(len(b) for b in blocks.values())
            yield from self._coll_send(
                dst, key, payload=dict(blocks), nbytes=total
            )
            _src, incoming = yield self._chan(key).recv()
            blocks.update(incoming)
        if len(blocks) != n:
            raise ShmemError(
                f"PE {self.rank}: collect gathered {len(blocks)}/{n} blocks"
            )
        for pos in range(n):
            self.heap.write(dst_addr + pos * nbytes, blocks[pos])

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def reduce(self, src_addr: int, dst_addr: int, count: int, dtype,
               op: str = "sum") -> Generator:
        """shmem_*_to_all over all PEs."""
        self._require_init()
        self.counters.add("shmem.reductions")
        yield from self.team_reduce(
            self._world(), src_addr, dst_addr, count, dtype, op
        )

    def team_reduce(self, aset: ActiveSet, src_addr: int, dst_addr: int,
                    count: int, dtype, op: str = "sum") -> Generator:
        """Elementwise reduction over an active set, result everywhere.

        Binary-tree reduce to the first member followed by a tree
        broadcast — the "sparse" collective of Figure 7(b).
        """
        self._require_init()
        try:
            ufunc = _REDUCE_OPS[op]
        except KeyError:
            raise ShmemError(f"unknown reduction op {op!r}") from None
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        seq = self._team_seq("red", aset)
        up = ("red", aset.key(), seq, "up")
        down = ("red", aset.key(), seq, "down")
        parent, children = self._team_tree(aset, 0)

        acc = np.frombuffer(self.heap.read(src_addr, nbytes), dtype=dtype).copy()
        for _ in children:
            _src, data = yield self._chan(up).recv()
            acc = ufunc(acc, np.frombuffer(data, dtype=dtype))
        if parent is not None:
            yield from self._coll_send(
                parent, up, payload=acc.tobytes(), nbytes=nbytes
            )
            _src, result = yield self._chan(down).recv()
        else:
            result = acc.tobytes()
        self.heap.write(dst_addr, result)
        for child in children:
            yield from self._coll_send(child, down, payload=result, nbytes=nbytes)

    def sum_to_all(self, src_addr: int, dst_addr: int, count: int,
                   dtype=np.float64) -> Generator:
        yield from self.reduce(src_addr, dst_addr, count, dtype, "sum")

    def max_to_all(self, src_addr: int, dst_addr: int, count: int,
                   dtype=np.float64) -> Generator:
        yield from self.reduce(src_addr, dst_addr, count, dtype, "max")

    # ------------------------------------------------------------------
    # alltoall
    # ------------------------------------------------------------------
    def alltoall(self, src_addr: int, dst_addr: int, nbytes: int) -> Generator:
        """shmem_alltoall: block i of my source lands in *my* slot of
        member i's destination (``nbytes`` per block)."""
        self._require_init()
        self.counters.add("shmem.alltoalls")
        yield from self.team_alltoall(self._world(), src_addr, dst_addr, nbytes)

    def team_alltoall(self, aset: ActiveSet, src_addr: int, dst_addr: int,
                      nbytes: int) -> Generator:
        """Pairwise-exchange alltoall over an active set.

        Uses non-blocking puts (pipelined round trips) followed by a
        quiet + team barrier — the standard one-sided formulation.
        """
        self._require_init()
        n = aset.pe_size
        me = aset.team_rank(self.rank)
        # Local block: plain copy.
        self.heap.write(
            dst_addr + me * nbytes,
            self.heap.read(src_addr + me * nbytes, nbytes),
        )
        for shift in range(1, n):
            peer_team = (me + shift) % n
            peer = aset.global_rank(peer_team)
            block = self.heap.read(src_addr + peer_team * nbytes, nbytes)
            yield from self.put_nbi(peer, dst_addr + me * nbytes, block)
        yield from self.quiet()
        yield from self.team_barrier(aset)

"""Per-PE OpenSHMEM state: the :class:`ShmemContext` base.

The full user-facing object is :class:`repro.shmem.runtime.ShmemPE`,
which mixes this state base with the RMA, atomics and collectives
mixins.  Keeping the state here lets each mixin stay a small module.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generator, Optional, Tuple

from ..cluster import Cluster
from ..errors import ShmemError
from ..gasnet import Conduit, SegmentTable
from ..gasnet.segment import SegmentInfo
from ..ib import VerbsContext
from ..pmi import PMIClient
from ..sim import Barrier, Counters, Mailbox, PhaseTimer, Simulator
from .heap import SymmetricHeap

__all__ = ["ShmemContext", "COLL_HANDLER"]

#: AM handler name used by all OpenSHMEM collectives.
COLL_HANDLER = "shmem.coll"


class ShmemContext:
    """State shared by every part of the OpenSHMEM runtime."""

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        cluster: Cluster,
        ctx: VerbsContext,
        conduit: Conduit,
        pmi: PMIClient,
        counters: Counters,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.cluster = cluster
        self.cost = cluster.cost
        self.ctx = ctx
        self.conduit = conduit
        self.pmi = pmi
        self.counters = counters

        self.heap: Optional[SymmetricHeap] = None
        self.heap_region = None
        self.segments = SegmentTable(rank)
        self.timer = PhaseTimer(sim)
        #: Flight recorder (repro.obs.Observability); the Job installs
        #: it when observing, None otherwise (one predicate per site).
        self.obs = None
        #: Invariant sanitizer (installed by ``Job(check=...)``).
        self.check = None
        self.initialized = False
        self.finalized = False

        #: Node-level shared-memory barrier (installed by the Job).
        self.node_barrier: Optional[Barrier] = None

        # Collective plumbing: per-key mailboxes + per-kind sequence
        # numbers (collective calls are globally ordered, so the same
        # sequence is generated on every PE).
        self._coll_chan: Dict[tuple, Mailbox] = {}
        self._coll_seq: Dict[str, int] = defaultdict(int)
        conduit.register_handler(COLL_HANDLER, self._on_coll_message)

        # Separate (non-piggybacked) segment exchange — the baseline
        # behaviour the paper's Section IV-B calls inefficiency #2;
        # kept for the D1 ablation.
        self._segrep_waiters: Dict[int, object] = {}
        conduit.register_handler("shmem.segreq", self._on_segreq)
        conduit.register_handler("shmem.segrep", self._on_segrep)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def npes(self) -> int:
        """shmem_n_pes()."""
        return self.cluster.npes

    @property
    def mype(self) -> int:
        """shmem_my_pe()."""
        return self.rank

    def _require_init(self) -> None:
        if not self.initialized:
            raise ShmemError(f"PE {self.rank}: OpenSHMEM not initialised")

    # ------------------------------------------------------------------
    # symmetric allocation
    # ------------------------------------------------------------------
    def shmalloc(self, size: int) -> int:
        """Symmetric allocation (must be called symmetrically on all PEs)."""
        self._require_init()
        addr = self.heap.shmalloc(size)
        if self.check is not None:
            self.check.on_shmalloc(self.rank, addr, size)
        return addr

    def shfree(self, addr: int) -> None:
        self._require_init()
        self.heap.shfree(addr)

    def view(self, addr: int, dtype, count: int):
        """Typed local view of symmetric memory (for computation)."""
        self._require_init()
        return self.heap.view(addr, dtype, count)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def _translate(self, peer: int, addr: int) -> Tuple[int, int]:
        """Map a local symmetric address to (remote_addr, rkey) at peer."""
        seg = self.segments.get(peer)[0]
        return seg.translate(addr, self.heap.base), seg.rkey

    def _ensure_peer(self, peer: int) -> Generator:
        """Connect (if needed) and guarantee segment info for ``peer``."""
        if not (0 <= peer < self.npes):
            raise ShmemError(f"PE {self.rank}: invalid target PE {peer}")
        if not self.segments.knows(peer):
            yield from self.conduit.ensure_connected(peer)
            if not self.segments.knows(peer):
                if getattr(self.config, "piggyback_segments", True):
                    raise ShmemError(
                        f"PE {self.rank}: no segment info for {peer} after "
                        "connection (exchange payload missing?)"
                    )
                yield from self._request_segments(peer)

    # -- separate segment exchange (baseline / ablation D1) -------------
    def _request_segments(self, peer: int) -> Generator:
        ev = self._segrep_waiters.get(peer)
        if ev is None:
            ev = self.sim.event()
            self._segrep_waiters[peer] = ev
            yield from self.conduit.am_send(
                peer, "shmem.segreq", data=None, data_bytes=8
            )
        if not self.segments.knows(peer):
            yield ev
        self.counters.add("shmem.separate_seg_exchanges")

    def _on_segreq(self, src: int, _data) -> Generator:
        from ..gasnet.segment import encode_segments

        region = self.heap_region
        blob = encode_segments(
            [SegmentInfo(addr=region.addr, size=region.size,
                         rkey=region.rkey)]
        )
        # Reply over the already-established connection (safe: the
        # requester only asks after connecting).
        yield from self.conduit.am_send(
            src, "shmem.segrep", data=blob, data_bytes=len(blob)
        )

    def _on_segrep(self, src: int, blob: bytes) -> None:
        from ..gasnet.segment import decode_segments

        self.segments.put(src, decode_segments(blob))
        ev = self._segrep_waiters.pop(src, None)
        if ev is not None and not ev.triggered:
            ev.succeed()

    def _install_own_segments(self) -> None:
        """Record our own heap segment (self-targeted RMA)."""
        region = self.heap_region
        self.segments.put(
            self.rank,
            [SegmentInfo(addr=region.addr, size=region.size, rkey=region.rkey)],
        )

    # ------------------------------------------------------------------
    # collective channels
    # ------------------------------------------------------------------
    def _chan(self, key: tuple) -> Mailbox:
        mbox = self._coll_chan.get(key)
        if mbox is None:
            mbox = Mailbox(self.sim, name=f"coll-{self.rank}-{key}")
            self._coll_chan[key] = mbox
        return mbox

    def _on_coll_message(self, src: int, data) -> None:
        key, payload = data
        self._chan(key).send((src, payload))

    def _next_seq(self, kind: str) -> int:
        seq = self._coll_seq[kind]
        self._coll_seq[kind] += 1
        return seq

    def _coll_send(self, peer: int, key: tuple, payload=None,
                   nbytes: int = 0) -> Generator:
        yield from self.conduit.am_send(
            peer, COLL_HANDLER, data=(key, payload), data_bytes=nbytes
        )

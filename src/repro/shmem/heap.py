"""The symmetric heap.

Every PE allocates an identical heap at init; because OpenSHMEM
requires allocation calls to be symmetric (same sizes, same order on
every PE), an object's offset from the heap base is identical
everywhere — the remote address is computed from the local one via the
peer's segment descriptor.

The heap is a real byte buffer (``numpy.uint8``): RMA moves real data.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ShmemError
from ..ib.memory import MemoryManager

__all__ = ["SymmetricHeap"]

_ALIGN = 64  # cache-line alignment for allocations


class SymmetricHeap:
    """Bump allocator over one registered region.

    ``model_bytes`` is the heap size the runtime *registers* (drives
    the memory-registration cost and the resource accounting, 256 MB by
    default as on the paper's systems); ``backing_bytes`` is the real
    buffer actually materialised for data movement.  Simulating 8K PEs
    with 256 MB of physical backing each is infeasible and unnecessary:
    applications use a tiny fraction, and exceeding the backing raises
    a clear error telling the user to raise ``heap_backing_kb``.
    """

    def __init__(self, mm: MemoryManager, model_bytes: int,
                 backing_bytes: Optional[int] = None) -> None:
        if model_bytes < _ALIGN:
            raise ValueError(f"heap too small: {model_bytes}")
        backing = backing_bytes if backing_bytes is not None else model_bytes
        if backing < _ALIGN:
            raise ValueError(f"heap backing too small: {backing}")
        self.mm = mm
        self.model_bytes = max(model_bytes, backing)
        self.size = backing  # real, allocatable bytes
        self.base = mm.alloc(self.size)
        self._bufcache: Optional[np.ndarray] = None  # materialised lazily
        self._brk = 0  # offset of first free byte
        self._allocs: Dict[int, int] = {}  # addr -> size (for shfree checks)

    @property
    def _buf(self) -> np.ndarray:
        buf = self._bufcache
        if buf is None:
            buf = self._bufcache = self.mm.buffer_of(self.base)
        return buf

    # ------------------------------------------------------------------
    def shmalloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the (local) symmetric address."""
        if size <= 0:
            raise ShmemError(f"shmalloc of non-positive size {size}")
        offset = (self._brk + _ALIGN - 1) // _ALIGN * _ALIGN
        if offset + size > self.size:
            raise ShmemError(
                f"symmetric heap backing exhausted: need {size}B at offset "
                f"{offset}, backing is {self.size}B — raise the job's "
                "heap_backing_kb (the modelled heap is "
                f"{self.model_bytes}B)"
            )
        self._brk = offset + size
        addr = self.base + offset
        self._allocs[addr] = size
        return addr

    def shfree(self, addr: int) -> None:
        """Release an allocation (bump allocator: bookkeeping only)."""
        if addr not in self._allocs:
            raise ShmemError(f"shfree of unknown address {addr:#x}")
        del self._allocs[addr]

    def reset(self) -> None:
        """Drop every allocation (used between benchmark iterations)."""
        self._brk = 0
        self._allocs.clear()

    # ------------------------------------------------------------------
    def offset_of(self, addr: int) -> int:
        off = addr - self.base
        if not (0 <= off < self.size):
            raise ShmemError(f"address {addr:#x} is not in the symmetric heap")
        return off

    def view(self, addr: int, dtype, count: int) -> np.ndarray:
        """A typed numpy view of local heap memory (zero copy)."""
        off = self.offset_of(addr)
        itemsize = np.dtype(dtype).itemsize
        end = off + itemsize * count
        if end > self.size:
            raise ShmemError("typed view extends past the heap")
        return self._buf[off:end].view(dtype)

    def read(self, addr: int, nbytes: int) -> bytes:
        off = self.offset_of(addr)
        return bytes(self._buf[off : off + nbytes])

    def write(self, addr: int, data: bytes) -> None:
        off = self.offset_of(addr)
        self._buf[off : off + len(data)] = np.frombuffer(data, dtype=np.uint8)

    @property
    def bytes_in_use(self) -> int:
        return self._brk

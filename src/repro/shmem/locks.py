"""Distributed locks (shmem_set_lock / clear_lock / test_lock).

Implemented the classic OpenSHMEM way: the lock is a symmetric 64-bit
word whose *home* is PE 0's copy; acquisition is an atomic
compare-and-swap against the home copy with bounded exponential
backoff.  (Production MCS-queue locks trade fairness for fewer remote
atomics; the simple CAS lock keeps the remote-atomic traffic pattern
visible, which is what the simulation measures.)
"""

from __future__ import annotations

from typing import Generator

from ..errors import ShmemError

__all__ = ["LocksMixin"]

#: Value stored in a held lock word: owner rank + 1 (0 == free).
_FREE = 0


class LocksMixin:
    """Mixed into :class:`repro.shmem.runtime.ShmemPE`."""

    _LOCK_HOME = 0  #: PE owning the authoritative copy of every lock.

    def set_lock(self, lock_addr: int) -> Generator:
        """shmem_set_lock: blocks until the lock is acquired."""
        self._require_init()
        self.counters.add("shmem.lock_acquires")
        ticket = self.rank + 1
        backoff = 1.0
        while True:
            old = yield from self.atomic_compare_swap(
                self._LOCK_HOME, lock_addr, _FREE, ticket
            )
            if old == _FREE:
                return
            yield backoff
            backoff = min(backoff * 2.0, 50.0)

    def clear_lock(self, lock_addr: int) -> Generator:
        """shmem_clear_lock: releases a lock this PE holds."""
        self._require_init()
        ticket = self.rank + 1
        old = yield from self.atomic_compare_swap(
            self._LOCK_HOME, lock_addr, ticket, _FREE
        )
        if old != ticket:
            raise ShmemError(
                f"PE {self.rank}: clear_lock of a lock it does not hold "
                f"(word={old})"
            )

    def test_lock(self, lock_addr: int) -> Generator:
        """shmem_test_lock: one acquisition attempt; True on success."""
        self._require_init()
        old = yield from self.atomic_compare_swap(
            self._LOCK_HOME, lock_addr, _FREE, self.rank + 1
        )
        return old == _FREE

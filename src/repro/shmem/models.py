"""Macro phase models for ``start_pes`` (the analytical phase layer).

:func:`run_macro_job` is the orchestrator behind
``Job(macro=True)`` / ``RuntimeConfig.macro_phases``: it reproduces one
job's startup metrics without stepping a per-PE protocol coroutine
swarm.  Two strategies, matched to the two design corners the macro
layer supports:

* **On-demand (the paper's proposed design)** — every startup phase is
  homogeneous and data-independent: endpoint creation, the
  PMIX_Iallgather launch (which charges *zero* client time — the
  daemon-tree work happens in the background), memory registration,
  shared-memory setup and two intra-node barriers.  The whole flow
  reduces to per-PE closed-form arithmetic plus a per-node max for the
  barrier release — O(npes) float ops, O(1) simulator events (none).
  This is the path that carries a 1,048,576-PE Figure-5 point.

* **Static (the baseline)** — the blocking Put/Fence/Get exchange and
  the two global AM-tree barriers serialise through the PMI daemon
  tree and the conduit, so instead of a fragile closed form the macro
  layer runs a *condensed replica*: the real simulator, PMI daemons,
  fabric, verbs contexts and static conduits, driven by one flat
  generator per PE that mirrors ``_static_startup`` statement by
  statement — but with no :class:`~repro.shmem.runtime.ShmemPE`, no
  segment tables, no observability shims.  Timing is exact by
  construction (the engine sees the identical yield sequence); what is
  saved is the per-PE object graph, which is what limits the exact
  engine's scale.  The static corner is never run at macro scale — it
  exists so the equivalence fixtures can cross-check both corners.

Equivalence contract (see ``tests/core/test_macro_equivalence.py``):
phase-timing breakdowns, ``init_duration`` / ``init_done_at``, the
deterministic per-layer counters and the resource snapshots are
reproduced bit for bit against the exact engine.  For the on-demand
corner, ``wall_time_us``, the finalize-path counters and the resource
snapshot come from the lossless-UD model in :mod:`repro.gasnet.models`
(the exact engine draws UD-loss randomness there, and its per-PE
snapshot can catch finalize-phase connect traffic from early
finishers) and are reported in ``MacroRunResult.modeled`` rather than
asserted.
"""

from __future__ import annotations

import gc
import math
from typing import Dict, Generator, List

from ..cluster import Cluster
from ..errors import ConfigError
from ..gasnet import ConduitNetwork, StaticConduit
from ..gasnet.models import exchange_payload_bytes, finalize_model
from ..ib import HCA, Fabric, VerbsContext
from ..pmi import PMIClient, PMIDomain
from ..pmi.models import iallgather_release_times, iallgather_tree_counters
from ..sim import (
    Counters,
    Mailbox,
    PhaseTimer,
    RngRegistry,
    Simulator,
    Tracer,
    spawn,
    spawn_batch,
)
from ..sim.macro import MacroPE, MacroRunResult
from .collectives import tree_parent_children
from .context import COLL_HANDLER
from .heap import SymmetricHeap
from .startup import PHASE_CONN, PHASE_MEMREG, PHASE_OTHER, PHASE_PMI, PHASE_SHM

__all__ = ["run_macro_job", "supported_corner"]


def supported_corner(config) -> str:
    """Validate that ``config`` is one of the two design corners the
    macro layer models; return ``"ondemand"`` or ``"static"``."""
    axes = (config.connection_mode, config.pmi_mode, config.barrier_mode)
    if axes == ("ondemand", "nonblocking", "intranode"):
        if not config.piggyback_segments:
            raise ConfigError(
                "macro_phases does not model the D1 ablation "
                "(piggyback_segments=False); use the exact engine"
            )
        return "ondemand"
    if axes == ("static", "blocking", "global"):
        return "static"
    raise ConfigError(
        "macro_phases models the paper's two design corners only "
        "(static+blocking+global or ondemand+nonblocking+intranode), "
        f"not {config.label!r}; use the exact engine for ablations"
    )


def run_macro_job(app, npes: int, config, cluster: Cluster,
                  scheduler: str = "calendar") -> MacroRunResult:
    """Reproduce one job's metrics through the macro phase models."""
    profile = getattr(app, "macro_profile", None)
    if profile is None:
        raise ConfigError(
            f"macro_phases requires an app with a macro_profile() "
            f"(closed-form per-rank cost); {type(app).__name__} has none"
        )
    corner = supported_corner(config)
    if corner == "ondemand":
        return _ondemand_macro(app, npes, config, cluster)
    return _static_macro(app, npes, config, cluster, scheduler)


# ======================================================================
# on-demand corner: fully analytic (zero simulator events)
# ======================================================================
def _ondemand_macro(app, npes: int, config, cluster: Cluster
                    ) -> MacroRunResult:
    cost = cluster.cost
    rng = RngRegistry(config.seed)
    skews = rng.stream("launch-skew").uniform(
        0.0, cost.launch_skew_us, size=npes
    )

    model_bytes = int(config.heap_mb * 1024 * 1024)
    backing = int(config.heap_backing_kb * 1024)
    reg_bytes = max(model_bytes, backing)
    mr_us = cost.mr_register_us(reg_bytes)

    # Per-PE instants, mirroring the exact flow's float ops one by one
    # (each ``yield d`` is one ``now + d``):
    #   t0 launch skew -> OTHER: init_misc + UD endpoint (t1)
    #   -> PMI: PMIX_Iallgather launch, zero client time
    #   -> MEMREG: heap registration (t2)
    #   -> SHM: shared-memory setup (t3)
    #   -> OTHER: two intra-node barriers (exit2).
    t0 = [0.0] * npes
    t1 = [0.0] * npes
    t3 = [0.0] * npes
    memreg = [0.0] * npes
    shm_us = [0.0] * npes
    for r in range(npes):
        s = 0.0 + float(skews[r])
        a = s + cost.init_misc_us
        b = a + cost.ud_qp_create_us
        c = b + mr_us
        local = cluster.local_size(r)
        d = c + (cost.shm_setup_base_us + cost.shm_setup_per_rank_us * local)
        t0[r] = s
        t1[r] = b
        memreg[r] = c - b
        t3[r] = d
        shm_us[r] = d - c

    # Intra-node barriers: ``yield shm_barrier_us * rounds`` then a
    # node Barrier released at the *last arrival* instant.  Nodes do
    # not synchronise with each other here, so exit times are per node.
    exit2 = [0.0] * cluster.nnodes
    for node in range(cluster.nnodes):
        ranks = cluster.ranks_on_node(node)
        local = len(ranks)
        rounds = max(1, math.ceil(math.log2(max(2, local))))
        w = cost.shm_barrier_us * rounds
        exit1 = max(t3[r] + w for r in ranks)
        exit2[node] = exit1 + w

    pes: List[MacroPE] = []
    app_done = [0.0] * npes
    results: List = [None] * npes
    resources = {
        "rc_qps": 0,
        "ud_qps": 1,
        "connections": 0,
        "qp_memory_bytes": cost.ud_qp_memory_bytes,
        "registered_bytes": reg_bytes,
        "active_connections": 0,
        "peers": 0,
    }
    for r in range(npes):
        done = exit2[cluster.node_of(r)]
        # PhaseTimer accumulation order: OTHER opens first, so it leads
        # the dict; both OTHER segments add in chronological order.
        breakdown = {
            PHASE_OTHER: (t1[r] - t0[r]) + (done - t3[r]),
            PHASE_PMI: 0.0,
            PHASE_MEMREG: memreg[r],
            PHASE_SHM: shm_us[r],
        }
        pes.append(MacroPE(
            rank=r, breakdown=breakdown, init_done_at=done,
            init_duration=done - t0[r], resources=resources,
        ))
        elapsed, value = app.macro_profile(r, npes, cost)
        app_done[r] = done + elapsed
        results[r] = value

    counters: Dict[str, int] = {
        "pmi.iallgathers": npes,
        "verbs.ud_qp_created": npes,
        "verbs.mr_registered": npes,
        "shmem.intranode_barriers": 2 * npes,
        "shmem.start_pes_done": npes,
    }
    tree_msgs, tree_bytes = iallgather_tree_counters(cluster)
    if tree_msgs:
        counters["pmi.tree_messages"] = tree_msgs
        counters["pmi.tree_bytes"] = tree_bytes

    # Finalize: barrier_all over lazily connected peers + QP sweep.
    # Modeled (lossless UD), not asserted — see the module docstring.
    dir_release = iallgather_release_times(cluster, t1)
    payload = exchange_payload_bytes(backing)
    done_times, fin_counters = finalize_model(
        cluster, app_done, dir_release, payload
    )
    # The per-PE resource snapshot is taken at *that PE's* app
    # completion; in the exact engine a PE on a slow node can first
    # serve connect requests from early finishers already inside the
    # finalize barrier, so a few server-side RC QPs leak into its
    # snapshot.  The macro snapshot is the startup-complete state
    # (no connections), which is the startup-attributable quantity —
    # hence "resources" rides the modeled list with the finalize keys.
    modeled = ["resources"]
    for key, value in fin_counters.items():
        if value:
            counters[key] = counters.get(key, 0) + value
            modeled.append(key)
    modeled.append("wall_time_us")

    launch = cost.launch_overhead_us
    return MacroRunResult(
        pes=pes,
        wall_time_us=launch + max(done_times),
        app_done_us=launch + max(app_done),
        app_results=results,
        counters=counters,
        modeled=modeled,
    )


# ======================================================================
# static corner: condensed replica on the real substrate
# ======================================================================
class _ReplicaPE:
    """Minimal stand-in for a ShmemPE in the static macro replica.

    Carries only what the flat startup generator and the job-level
    reducers touch: the real :class:`~repro.sim.trace.PhaseTimer`, the
    collective mailboxes, and the final resource snapshot.
    """

    __slots__ = ("sim", "rank", "ctx", "conduit", "counters", "timer",
                 "init_done_at", "init_duration", "heap", "heap_region",
                 "_chans", "_resources")

    def __init__(self, sim, rank, ctx, conduit, counters) -> None:
        self.sim = sim
        self.rank = rank
        self.ctx = ctx
        self.conduit = conduit
        self.counters = counters
        self.timer = PhaseTimer(sim)
        self.init_done_at = 0.0
        self.init_duration = 0.0
        self.heap = None
        self.heap_region = None
        self._chans: Dict[tuple, Mailbox] = {}
        self._resources: Dict[str, float] = {}
        conduit.register_handler(COLL_HANDLER, self._on_coll_message)

    def _chan(self, key: tuple) -> Mailbox:
        mbox = self._chans.get(key)
        if mbox is None:
            mbox = Mailbox(self.sim, name=f"coll-{self.rank}-{key}")
            self._chans[key] = mbox
        return mbox

    def _on_coll_message(self, src: int, data) -> None:
        key, payload = data
        self._chan(key).send((src, payload))

    def breakdown(self) -> Dict[str, float]:
        return self.timer.breakdown()

    def resource_usage(self) -> Dict[str, float]:
        return self._resources


def _replica_barrier(pe: _ReplicaPE, npes: int, seq: int) -> Generator:
    """``barrier_all`` over the world set, event-for-event (binary
    rank tree, gather up then release down over real AM sends)."""
    pe.counters.add("shmem.barriers")
    parent, children = tree_parent_children(pe.rank, npes)
    up = ("bar", seq, "up")
    down = ("bar", seq, "down")
    for _ in children:
        yield pe._chan(up).recv()
    if parent is not None:
        yield from pe.conduit.am_send(
            parent, COLL_HANDLER, data=(up, None), data_bytes=0
        )
        yield pe._chan(down).recv()
    for child in children:
        yield from pe.conduit.am_send(
            child, COLL_HANDLER, data=(down, None), data_bytes=0
        )


def _static_macro(app, npes: int, config, cluster: Cluster,
                  scheduler: str) -> MacroRunResult:
    # -- machine assembly: the same substrate Job builds, minus the
    # ShmemPE layer, observability, faults and sanitizer -------------
    sim = Simulator(scheduler=scheduler)
    counters = Counters()
    rng = RngRegistry(config.seed)
    fabric = Fabric(sim, cluster, rng, counters)
    cost = cluster.cost
    hcas = [
        HCA(sim, fabric, node=n, lid=0x100 + n, cost=cost, counters=counters)
        for n in range(cluster.nnodes)
    ]
    ctxs = [
        VerbsContext(sim, hcas[cluster.node_of(r)], r, cost, counters)
        for r in range(npes)
    ]
    pmi_domain = PMIDomain(sim, cluster, counters)
    pmi = [PMIClient(pmi_domain, r) for r in range(npes)]
    network = ConduitNetwork()
    network.obs = None
    network.check = None
    network.tracer = Tracer(sim, enabled=False)
    conduits = [
        StaticConduit(sim, network, ctxs[r], cluster, pmi[r], r)
        for r in range(npes)
    ]
    pes = [
        _ReplicaPE(sim, r, ctxs[r], conduits[r], counters)
        for r in range(npes)
    ]

    skews = rng.stream("launch-skew").uniform(
        0.0, cost.launch_skew_us, size=npes
    )
    model_bytes = int(config.heap_mb * 1024 * 1024)
    backing = int(config.heap_backing_kb * 1024)
    app_done_at: List[float] = [0.0] * npes
    all_done_at: List[float] = [0.0] * npes
    results: List = [None] * npes

    def pe_main(rank: int) -> Generator:
        # Mirrors Job.pe_main + _static_startup statement by statement;
        # the engine sees the identical yield sequence, so timing and
        # counters are exact by construction.
        pe = pes[rank]
        ctx = ctxs[rank]
        conduit = conduits[rank]
        client = pmi[rank]
        yield float(skews[rank])
        started = sim.now
        # -- OTHER: misc init + UD endpoint --
        pe.timer.begin(PHASE_OTHER)
        yield cost.init_misc_us
        yield from conduit.init_endpoint()
        # -- PMI: blocking Put / Fence / Get-range --
        pe.timer.begin(PHASE_PMI)
        yield from client.put(f"ud-{rank}", conduit.ud_address)
        yield from client.fence()
        yield from client.get_range("ud-", npes)
        cache = network.shared_cache
        directory = cache.get("ud_directory")
        if directory is None:
            directory = {
                r: network.peer(r).ud_address for r in range(npes)
            }
            cache["ud_directory"] = directory
        conduit.set_ud_directory(directory)
        # -- MEMREG: heap registration --
        pe.timer.begin(PHASE_MEMREG)
        pe.heap = SymmetricHeap(ctx.mm, model_bytes, backing_bytes=backing)
        pe.heap_region = yield from ctx.reg_mr(
            pe.heap.base, model_bytes=max(model_bytes, backing)
        )
        # -- SHM: shared-memory setup --
        pe.timer.begin(PHASE_SHM)
        local = cluster.local_size(rank)
        yield cost.shm_setup_base_us + cost.shm_setup_per_rank_us * local
        # -- CONN: full wire-up, second fence, segment push --
        pe.timer.begin(PHASE_CONN)
        yield from conduit.wireup()
        yield from client.put(f"wired-{rank}", 1)
        yield from client.fence()
        per_msg = cost.post_wr_us + cost.am_handler_cpu_us
        yield npes * per_msg
        conduit.mark_ready()
        # -- OTHER: two global init barriers --
        pe.timer.begin(PHASE_OTHER)
        yield from _replica_barrier(pe, npes, 0)
        yield from _replica_barrier(pe, npes, 1)
        pe.timer.stop()
        pe.init_done_at = sim.now
        pe.init_duration = sim.now - started
        counters.add("shmem.start_pes_done")
        # -- application (closed-form profile, same Timeout path) --
        elapsed, value = app.macro_profile(rank, npes, cost)
        yield sim.timeout(elapsed)
        app_done_at[rank] = sim.now
        results[rank] = value
        pe._resources = {
            "rc_qps": ctx.rc_qps_created,
            "ud_qps": ctx.ud_qps_created,
            "connections": ctx.connections_established,
            "qp_memory_bytes": ctx.qp_memory_bytes,
            "registered_bytes": ctx.registered_bytes,
            "active_connections": conduit.connection_count,
            "peers": len(conduit.touched_peers),
        }
        # -- finalize: barrier_all + bulk teardown --
        yield from _replica_barrier(pe, npes, 2)
        yield from conduit.teardown_charge()
        all_done_at[rank] = sim.now

    procs = spawn_batch(sim, ((pe_main(r), f"pe{r}") for r in range(npes)))
    done = {"ok": False}

    def join_all(s):
        yield s.all_of(procs)
        done["ok"] = True

    spawn(sim, join_all(sim), name="join")
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        sim.run()
    finally:
        if gc_was_enabled:
            gc.enable()
    if not done["ok"]:
        raise RuntimeError(
            "macro static replica did not complete (a PE is deadlocked)"
        )

    launch = cost.launch_overhead_us
    return MacroRunResult(
        pes=pes,
        wall_time_us=launch + max(all_done_at),
        app_done_us=launch + max(app_done_at),
        app_results=results,
        counters=counters.as_dict(),
        modeled=[],
    )

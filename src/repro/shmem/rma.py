"""One-sided put/get (shmem_put / shmem_get and typed variants).

Operations are blocking (they return once remotely complete), which
makes ``shmem_quiet``/``shmem_fence`` trivially satisfied — a
documented simplification that matches how the OSU latency benchmarks
measure these calls anyway.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..errors import ShmemError

__all__ = ["RMAMixin"]


class RMAMixin:
    """Mixed into :class:`repro.shmem.runtime.ShmemPE`."""

    # ------------------------------------------------------------------
    def put(self, peer: int, addr: int, data: bytes) -> Generator:
        """shmem_putmem: write ``data`` to ``addr`` at ``peer``."""
        self._require_init()
        self.counters.add("shmem.puts")
        if peer == self.rank:
            self.heap.write(addr, data)
            return
        yield from self._ensure_peer(peer)
        raddr, rkey = self._translate(peer, addr)
        yield from self.conduit.rdma_put(peer, bytes(data), raddr, rkey)

    def get(self, peer: int, addr: int, nbytes: int) -> Generator:
        """shmem_getmem: read ``nbytes`` from ``addr`` at ``peer``."""
        self._require_init()
        self.counters.add("shmem.gets")
        if peer == self.rank:
            return self.heap.read(addr, nbytes)
        yield from self._ensure_peer(peer)
        raddr, rkey = self._translate(peer, addr)
        data = yield from self.conduit.rdma_get(peer, nbytes, raddr, rkey)
        return data

    # -- typed conveniences ------------------------------------------------
    def put_array(self, peer: int, addr: int, array: np.ndarray) -> Generator:
        """Typed put of a numpy array into symmetric memory."""
        yield from self.put(peer, addr, np.ascontiguousarray(array).tobytes())

    def get_array(self, peer: int, addr: int, dtype, count: int) -> Generator:
        data = yield from self.get(peer, addr, np.dtype(dtype).itemsize * count)
        return np.frombuffer(data, dtype=dtype).copy()

    def put_value(self, peer: int, addr: int, value: int,
                  dtype=np.int64) -> Generator:
        yield from self.put(peer, addr, np.dtype(dtype).type(value).tobytes())

    def get_value(self, peer: int, addr: int, dtype=np.int64) -> Generator:
        data = yield from self.get(peer, addr, np.dtype(dtype).itemsize)
        return np.frombuffer(data, dtype=dtype)[0].item()

    # -- non-blocking implicit (shmem_putmem_nbi / shmem_getmem_nbi) -------
    def put_nbi(self, peer: int, addr: int, data: bytes) -> Generator:
        """shmem_putmem_nbi: initiate and return; complete at quiet()."""
        self._require_init()
        self.counters.add("shmem.puts_nbi")
        if peer == self.rank:
            self.heap.write(addr, data)
            return
        yield from self._ensure_peer(peer)
        raddr, rkey = self._translate(peer, addr)
        yield from self.conduit.rdma_put_nbi(peer, bytes(data), raddr, rkey)

    def put_array_nbi(self, peer: int, addr: int, array: np.ndarray) -> Generator:
        yield from self.put_nbi(
            peer, addr, np.ascontiguousarray(array).tobytes()
        )

    def get_nbi(self, peer: int, src_addr: int, dst_addr: int,
                nbytes: int) -> Generator:
        """shmem_getmem_nbi: fetch into *local* symmetric memory at
        ``dst_addr``; data is usable only after quiet()."""
        self._require_init()
        self.counters.add("shmem.gets_nbi")
        if peer == self.rank:
            self.heap.write(dst_addr, self.heap.read(src_addr, nbytes))
            return
        yield from self._ensure_peer(peer)
        raddr, rkey = self._translate(peer, src_addr)
        heap = self.heap
        yield from self.conduit.rdma_get_nbi(
            peer, nbytes, raddr, rkey,
            on_data=lambda data: heap.write(dst_addr, data),
        )

    # ------------------------------------------------------------------
    def quiet(self) -> Generator:
        """shmem_quiet: complete all outstanding nbi operations.

        (Blocking put/get are already remotely complete on return.)
        """
        self._require_init()
        yield self.cost.poll_cq_us
        yield from self.conduit.quiet()

    def fence(self) -> Generator:
        """shmem_fence: ordering only; same guarantee as quiet here."""
        yield from self.quiet()

    # ------------------------------------------------------------------
    def wait_until(self, addr: int, op: str, value: int,
                   dtype=np.int64) -> Generator:
        """shmem_wait_until on a local symmetric variable.

        Polls local memory with exponential backoff (a remote PE's put
        or atomic will make the predicate true).
        """
        self._require_init()
        view = self.heap.view(addr, dtype, 1)
        ops = {
            "eq": lambda a, b: a == b,
            "ne": lambda a, b: a != b,
            "gt": lambda a, b: a > b,
            "ge": lambda a, b: a >= b,
            "lt": lambda a, b: a < b,
            "le": lambda a, b: a <= b,
        }
        try:
            cmp = ops[op]
        except KeyError:
            raise ShmemError(f"unknown wait_until op {op!r}") from None
        interval = 0.5
        while not cmp(view[0], value):
            yield interval
            interval = min(interval * 2.0, 25.0)

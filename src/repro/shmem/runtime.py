"""The user-facing OpenSHMEM PE object and its lifecycle.

:class:`ShmemPE` glues the state base with the RMA / atomics /
collectives mixins and drives ``start_pes`` / ``finalize`` through the
configured startup strategy.  Applications receive one ``ShmemPE`` per
simulated process and program against the OpenSHMEM-shaped API:

================  ==========================================
OpenSHMEM          here
================  ==========================================
start_pes          ``yield from pe.start_pes()``
shmem_my_pe        ``pe.mype``
shmem_n_pes        ``pe.npes``
shmalloc           ``pe.shmalloc(nbytes)``
shmem_putmem       ``yield from pe.put(peer, addr, data)``
shmem_getmem       ``yield from pe.get(peer, addr, n)``
shmem_longlong_fadd ``yield from pe.atomic_fetch_add(...)``
shmem_barrier_all  ``yield from pe.barrier_all()``
shmem_broadcast    ``yield from pe.broadcast(root, addr, n)``
shmem_fcollect     ``yield from pe.fcollect(src, dst, n)``
shmem_*_to_all     ``yield from pe.reduce(...)``
================  ==========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional

from ..cluster import Cluster
from ..errors import ShmemError

if TYPE_CHECKING:  # pragma: no cover - avoid a circular runtime import
    from ..core.config import RuntimeConfig
from ..gasnet import Conduit, StaticConduit
from ..ib import VerbsContext
from ..pmi import PMIClient
from ..sim import Counters, Simulator
from .atomics import AtomicsMixin
from .collectives import CollectivesMixin
from .context import ShmemContext
from .locks import LocksMixin
from .rma import RMAMixin
from .startup import run_startup
from .strided import StridedMixin

__all__ = ["ShmemPE", "install_timeline_probes"]


def install_timeline_probes(timeline, pes) -> None:
    """Register SHMEM-layer time-series probes (pure reads; see the
    determinism contract in :mod:`repro.obs.timeline`).

    Symmetric-heap occupancy is the memory-footprint half of the
    paper's scaling story (QP memory being the other, probed by the
    HCA layer)."""
    def heap_bytes() -> int:
        return sum(
            pe.heap.bytes_in_use if pe.heap is not None else 0 for pe in pes
        )

    timeline.add_probe("shmem.heap_bytes", heap_bytes)


class ShmemPE(ShmemContext, RMAMixin, AtomicsMixin, CollectivesMixin,
              LocksMixin, StridedMixin):
    """One OpenSHMEM processing element."""

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        cluster: Cluster,
        ctx: VerbsContext,
        conduit: Conduit,
        pmi: PMIClient,
        counters: Counters,
        config: RuntimeConfig,
    ) -> None:
        super().__init__(sim, rank, cluster, ctx, conduit, pmi, counters)
        self.config = config
        self._peers: Optional[Dict[int, "ShmemPE"]] = None
        #: Simulated time at which start_pes returned (for metrics).
        self.init_done_at: Optional[float] = None
        self.init_duration: Optional[float] = None

    # ------------------------------------------------------------------
    def _peer(self, rank: int) -> "ShmemPE":
        """Data-plane access to a peer PE object (node shm / bookkeeping)."""
        if self._peers is None:
            raise ShmemError("peer registry not installed (Job wires it)")
        return self._peers[rank]

    def install_peer_registry(self, peers: Dict[int, "ShmemPE"]) -> None:
        self._peers = peers

    # ------------------------------------------------------------------
    def start_pes(self) -> Generator:
        """OpenSHMEM initialisation (the call Figure 5(a) times)."""
        if self.initialized:
            raise ShmemError(f"PE {self.rank}: start_pes called twice")
        started = self.sim.now
        obs = self.obs
        root = None
        if obs is not None:
            # Root span for this PE's init; every PhaseTimer phase
            # becomes a child span until the timer is disarmed.
            root = obs.spans.start("shmem.start_pes", f"pe{self.rank}")
            self.timer.observe(obs.spans, f"pe{self.rank}", parent=root)
        yield from run_startup(self)
        self.init_done_at = self.sim.now
        self.init_duration = self.sim.now - started
        if root is not None:
            self.timer.observe(None, "")
            obs.spans.finish(root)
            obs.metrics.histogram("shmem.start_pes_us").observe(
                self.init_duration)
        self.counters.add("shmem.start_pes_done")

    def finalize(self) -> Generator:
        """Implicit finalisation: global barrier + endpoint teardown.

        Even a communication-free program pays this (paper Section V-B:
        the finalize barrier forces PMI completion and some
        connections in the proposed design; full teardown in the
        static design).
        """
        self._require_init()
        if self.finalized:
            raise ShmemError(f"PE {self.rank}: finalize called twice")
        yield from self.barrier_all()
        if isinstance(self.conduit, StaticConduit):
            yield from self.conduit.teardown_charge()
        else:
            yield from self.conduit.shutdown()
        self.finalized = True

    # ------------------------------------------------------------------
    # resource snapshot (Figure 9 / Table I inputs)
    # ------------------------------------------------------------------
    def snapshot_resources(self) -> Dict[str, float]:
        """Record usage *before* finalize tears connections down."""
        self._resource_snapshot = self._current_resources()
        return self._resource_snapshot

    def _current_resources(self) -> Dict[str, float]:
        # "active peers" = distinct peers the PE actually communicated
        # with over any path (fabric connections + intra-node RMA/AM),
        # which is what Table I counts.
        return {
            "rc_qps": self.ctx.rc_qps_created,
            "ud_qps": self.ctx.ud_qps_created,
            "connections": self.ctx.connections_established,
            "qp_memory_bytes": self.ctx.qp_memory_bytes,
            "registered_bytes": self.ctx.registered_bytes,
            "active_connections": self.conduit.connection_count,
            "peers": len(self.conduit.touched_peers),
        }

    def resource_usage(self) -> Dict[str, float]:
        snap = getattr(self, "_resource_snapshot", None)
        return snap if snap is not None else self._current_resources()

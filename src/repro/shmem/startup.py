"""``start_pes`` strategies: static baseline vs. the paper's design.

Four orthogonal knobs (see :class:`repro.core.config.RuntimeConfig`):

* **connection mode** — ``static`` wires all N peers during init;
  ``ondemand`` defers to first communication and piggybacks segment
  keys on the handshake (Section IV-C);
* **PMI mode** — ``blocking`` Put/Fence/Get vs. ``nonblocking``
  PMIX_Iallgather overlapped with memory registration (Section IV-D);
* **init barrier mode** — ``global`` shmem_barrier_all calls (the
  baseline's inefficiency #3) vs. the ``intranode`` shared-memory
  barrier (Section IV-E).

Every phase is recorded on the PE's :class:`~repro.sim.trace.PhaseTimer`
under the exact labels of the paper's Figure 1/5(b): ``Connection
Setup``, ``PMI Exchange``, ``Memory Registration``, ``Shared Memory
Setup``, ``Other``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..errors import ConfigError
from ..gasnet import StaticConduit, encode_segments
from ..gasnet.segment import SegmentInfo, decode_segments
from .heap import SymmetricHeap

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ShmemPE

__all__ = [
    "run_startup",
    "PHASE_CONN",
    "PHASE_PMI",
    "PHASE_MEMREG",
    "PHASE_SHM",
    "PHASE_OTHER",
    "STARTUP_PHASES",
]

PHASE_CONN = "Connection Setup"
PHASE_PMI = "PMI Exchange"
PHASE_MEMREG = "Memory Registration"
PHASE_SHM = "Shared Memory Setup"
PHASE_OTHER = "Other"
STARTUP_PHASES = [PHASE_CONN, PHASE_PMI, PHASE_MEMREG, PHASE_SHM, PHASE_OTHER]


def run_startup(pe: "ShmemPE") -> Generator:
    """Dispatch to the configured startup flow."""
    mode = pe.config.connection_mode
    if mode == "static":
        yield from _static_startup(pe)
    elif mode == "ondemand":
        yield from _ondemand_startup(pe)
    else:
        raise ConfigError(f"unknown connection mode {mode!r}")


# ----------------------------------------------------------------------
# shared pieces
# ----------------------------------------------------------------------
def _misc_and_endpoint(pe: "ShmemPE") -> Generator:
    pe.timer.begin(PHASE_OTHER)
    yield pe.cost.init_misc_us
    yield from pe.conduit.init_endpoint()


def _pmi_exchange(pe: "ShmemPE") -> Generator:
    """Publish our UD endpoint; resolve or defer per PMI mode."""
    pe.timer.begin(PHASE_PMI)
    if pe.config.pmi_mode == "nonblocking":
        # PMIX_Iallgather: launch and return immediately; the conduit
        # resolves the directory lazily via PMIX_Wait (Section IV-D).
        handle = pe.pmi.iallgather(pe.conduit.ud_address)
        pe.conduit.set_ud_directory_handle(handle, parser=None)
    elif pe.config.pmi_mode == "blocking":
        yield from pe.pmi.put(f"ud-{pe.rank}", pe.conduit.ud_address)
        yield from pe.pmi.fence()
        # Per-PE retrieval time is charged here; the parsed directory
        # object itself is shared job-wide (identical on every PE).
        yield from pe.pmi.get_range("ud-", pe.npes)
        cache = pe.conduit.network.shared_cache
        directory = cache.get("ud_directory")
        if directory is None:
            directory = {
                r: pe.conduit.network.peer(r).ud_address for r in range(pe.npes)
            }
            cache["ud_directory"] = directory
        pe.conduit.set_ud_directory(directory)
    else:
        raise ConfigError(f"unknown PMI mode {pe.config.pmi_mode!r}")
    if False:  # pragma: no cover - keep this a generator on all paths
        yield


def _register_heap(pe: "ShmemPE") -> Generator:
    pe.timer.begin(PHASE_MEMREG)
    model_bytes = int(pe.config.heap_mb * 1024 * 1024)
    backing = int(pe.config.heap_backing_kb * 1024)
    pe.heap = SymmetricHeap(pe.ctx.mm, model_bytes, backing_bytes=backing)
    pe.heap_region = yield from pe.ctx.reg_mr(
        pe.heap.base, model_bytes=max(model_bytes, backing)
    )
    pe._install_own_segments()


def _shared_memory_setup(pe: "ShmemPE") -> Generator:
    pe.timer.begin(PHASE_SHM)
    local = pe.cluster.local_size(pe.rank)
    yield pe.cost.shm_setup_base_us + pe.cost.shm_setup_per_rank_us * local


def _exchange_intranode_segments(pe: "ShmemPE") -> None:
    """Same-node peers learn each other's segments through the shared
    memory region mapped during setup (no fabric traffic).  Must run
    after an intra-node synchronisation point.

    Installed as a lazy resolver: eagerly building ``ppn - 1`` entries
    on every PE is an O(ppn * N) simulator cost with no timing meaning
    (the shared-memory mapping is already charged in bulk)."""
    local = frozenset(pe.cluster.ranks_on_node(pe.cluster.node_of(pe.rank)))

    def _resolve_local(peer: int, _pe=pe, _local=local):
        if peer not in _local:
            return None
        region = _pe._peer(peer).heap_region
        return [SegmentInfo(addr=region.addr, size=region.size,
                            rkey=region.rkey)]

    pe.segments.set_resolver(_resolve_local)


def _init_barriers(pe: "ShmemPE", count: int = 2) -> Generator:
    """The synchronisation the spec requires at the end of init."""
    obs = pe.obs
    span = None
    if obs is not None:
        span = obs.spans.start(
            "shmem.init_barriers", f"pe{pe.rank}",
            parent=pe.timer.current_span,
            mode=pe.config.barrier_mode, count=count,
        )
    if pe.config.barrier_mode == "global":
        for _ in range(count):
            yield from pe.barrier_all()
    elif pe.config.barrier_mode == "intranode":
        for _ in range(count):
            yield from pe.barrier_intranode()
    else:
        raise ConfigError(f"unknown barrier mode {pe.config.barrier_mode!r}")
    if span is not None:
        obs.spans.finish(span)


# ----------------------------------------------------------------------
# static (baseline) flow
# ----------------------------------------------------------------------
def _static_startup(pe: "ShmemPE") -> Generator:
    yield from _misc_and_endpoint(pe)
    yield from _pmi_exchange(pe)
    yield from _register_heap(pe)
    yield from _shared_memory_setup(pe)

    pe.timer.begin(PHASE_CONN)
    conduit = pe.conduit
    if not isinstance(conduit, StaticConduit):
        raise ConfigError("static startup requires a StaticConduit")
    # Full wire-up: N QPs created, connected (waits on the PMI data if
    # the nonblocking mode deferred it -- there is no overlap to win
    # here, which is the paper's point about static + Iallgather).
    yield from conduit.wireup()
    # The wire-up is bulk-synchronous in the real stack: a second PMI
    # fence guarantees every peer finished creating its QPs (and, in
    # our flow, registering its heap) before anyone proceeds.
    yield from pe.pmi.put(f"wired-{pe.rank}", 1)
    yield from pe.pmi.fence()
    # Inefficiency #2 (Section IV-B): a separate message to *every*
    # peer carrying the <address, size, rkey> triplet.  Charged in bulk;
    # tables are filled from the peers' registered regions (safe after
    # the fence above, as in the real flow).
    per_msg = pe.cost.post_wr_us + pe.cost.am_handler_cpu_us
    yield pe.npes * per_msg

    def _resolve(peer: int, _pe=pe):
        region = _pe._peer(peer).heap_region
        return [SegmentInfo(addr=region.addr, size=region.size,
                            rkey=region.rkey)]

    pe.segments.set_resolver(_resolve)
    conduit.mark_ready()
    pe.initialized = True

    pe.timer.begin(PHASE_OTHER)
    # Inefficiency #3: global barriers during initialisation.
    yield from _static_init_barriers(pe)
    pe.timer.stop()


def _static_init_barriers(pe: "ShmemPE") -> Generator:
    """Static init always uses global barriers (that is the baseline)."""
    obs = pe.obs
    span = None
    if obs is not None:
        span = obs.spans.start(
            "shmem.init_barriers", f"pe{pe.rank}",
            parent=pe.timer.current_span, mode="global", count=2,
        )
    for _ in range(2):
        yield from pe.barrier_all()
    if span is not None:
        obs.spans.finish(span)


# ----------------------------------------------------------------------
# on-demand (proposed) flow
# ----------------------------------------------------------------------
def _ondemand_startup(pe: "ShmemPE") -> Generator:
    yield from _misc_and_endpoint(pe)
    yield from _pmi_exchange(pe)
    yield from _register_heap(pe)

    # Arm the piggyback path *before* any connection can be served
    # (unless the D1 ablation disabled it: then peers exchange keys
    # with a separate post-connect message, inefficiency #2).
    if pe.config.piggyback_segments:
        pe.conduit.set_exchange_payload(
            encode_segments([
                SegmentInfo(
                    addr=pe.heap_region.addr,
                    size=pe.heap_region.size,
                    rkey=pe.heap_region.rkey,
                )
            ])
        )
        pe.conduit.on_peer_payload(
            lambda peer, blob: pe.segments.put(peer, decode_segments(blob))
        )
    pe.conduit.mark_ready()

    yield from _shared_memory_setup(pe)
    pe.initialized = True

    pe.timer.begin(PHASE_OTHER)
    yield from _init_barriers(pe, count=2)
    _exchange_intranode_segments(pe)
    pe.timer.stop()

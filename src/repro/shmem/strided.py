"""Strided RMA: shmem_iput / shmem_iget.

Element-wise transfers with independent target and source strides.
Contiguous runs (both strides == 1) collapse into one RDMA; genuinely
strided transfers issue one pipelined non-blocking RDMA per element —
the same wire traffic a verbs implementation without hardware
scatter/gather generates — and complete before returning (the blocking
OpenSHMEM semantics).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..errors import ShmemError

__all__ = ["StridedMixin"]


class StridedMixin:
    """Mixed into :class:`repro.shmem.runtime.ShmemPE`."""

    def iput(self, peer: int, dst_addr: int, src_addr: int, dst_stride: int,
             src_stride: int, count: int, dtype=np.int64) -> Generator:
        """shmem_iput: count elements, strides in *elements*."""
        self._require_init()
        if dst_stride < 1 or src_stride < 1:
            raise ShmemError("strides must be >= 1 element")
        if count < 0:
            raise ShmemError("count must be >= 0")
        self.counters.add("shmem.iputs")
        itemsize = np.dtype(dtype).itemsize
        if dst_stride == 1 and src_stride == 1:
            data = self.heap.read(src_addr, count * itemsize)
            yield from self.put(peer, dst_addr, data)
            return
        for i in range(count):
            element = self.heap.read(src_addr + i * src_stride * itemsize,
                                     itemsize)
            yield from self.put_nbi(
                peer, dst_addr + i * dst_stride * itemsize, element
            )
        yield from self.quiet()

    def iget(self, peer: int, dst_addr: int, src_addr: int, dst_stride: int,
             src_stride: int, count: int, dtype=np.int64) -> Generator:
        """shmem_iget: count elements from ``peer`` into local memory."""
        self._require_init()
        if dst_stride < 1 or src_stride < 1:
            raise ShmemError("strides must be >= 1 element")
        if count < 0:
            raise ShmemError("count must be >= 0")
        self.counters.add("shmem.igets")
        itemsize = np.dtype(dtype).itemsize
        if dst_stride == 1 and src_stride == 1:
            data = yield from self.get(peer, src_addr, count * itemsize)
            self.heap.write(dst_addr, data)
            return
        for i in range(count):
            yield from self.get_nbi(
                peer,
                src_addr + i * src_stride * itemsize,
                dst_addr + i * dst_stride * itemsize,
                itemsize,
            )
        yield from self.quiet()

"""Deterministic discrete-event simulation kernel.

Time is a float in microseconds.  See :mod:`repro.sim.engine` for the
event loop, :mod:`repro.sim.process` for generator-coroutine processes,
and :mod:`repro.sim.sync` for synchronisation primitives.
"""

from .calendar import CalendarQueue, HeapQueue, Wave
from .engine import AllOf, AnyOf, SimEvent, SimulationError, Simulator, Timeout, Waitable
from .process import Process, ProcessFailure, spawn, spawn_batch
from .profile import KernelProfile
from .rng import RngRegistry
from .sync import Barrier, Latch, Mailbox, Semaphore
from .trace import Counters, PhaseTimer, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Waitable",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "Process",
    "ProcessFailure",
    "spawn",
    "spawn_batch",
    "CalendarQueue",
    "HeapQueue",
    "Wave",
    "KernelProfile",
    "Mailbox",
    "Semaphore",
    "Barrier",
    "Latch",
    "RngRegistry",
    "Counters",
    "PhaseTimer",
    "Tracer",
    "TraceRecord",
]

"""Calendar-queue event scheduling and aggregate event waves.

Two pieces, both serving the same goal — make the dense startup regime
(tens of thousands of near-simultaneous events) cheap without changing
a single dispatch decision:

:class:`CalendarQueue`
    A bucketed priority queue over ``(time, seq, fn, arg)`` entries.
    Simulated time is divided into fixed-width *days*; pending events
    live in an unsorted per-day bucket (a dict keyed by absolute day
    index, so empty days cost nothing and there is no wrap-around
    bookkeeping).  Only the day currently being drained is kept heap-
    ordered (the *near heap*), so an insert into any future day is an
    O(1) list append plus, for a day's first event, one push onto a
    small heap of day indices.  Days beyond a fixed horizon go to an
    *overflow heap* — the sparse far tail (long timeouts, retry
    deadlines) never forces the calendar to allocate buckets for empty
    years.  Extraction order is exactly ``(time, seq)``: a day's bucket
    is heapified when the day becomes current, and same-day inserts
    land directly in the near heap.  The worst case (every pending
    event in one day) degrades to the plain binary heap it replaced —
    never worse, O(1) amortized when load is spread.

:class:`Wave`
    One scheduler entry standing for *N homogeneous member events*.
    ``Simulator.schedule_wave`` reserves a **contiguous block of
    sequence numbers** — one per member — and stores the member keys in
    a NumPy struct array (``when: f8, seq: i8``).  Because the block is
    contiguous, no other event's ``(time, seq)`` key can fall *between*
    two members scheduled for the same instant, so dispatching all
    same-time members back-to-back from a single entry is provably
    identical to popping N independent heap entries (anything scheduled
    *during* the batch gets a later seq and therefore ran after the
    whole batch under the old scheme too).  Members at later times
    re-arm the wave under the next member's original ``(when, seq)``
    key, so affine waves (release times computed in one vectorized
    evaluation) interleave exactly as independent entries would.

The golden-trace and chaos byte-identity suites pin all of this down
against :class:`HeapQueue`, the original single binary heap kept as the
``scheduler="heap"`` fallback.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CalendarQueue", "HeapQueue", "Wave", "WAVE_KEY_DTYPE"]

#: NumPy struct layout for a wave's member keys.
WAVE_KEY_DTYPE = np.dtype([("when", np.float64), ("seq", np.int64)])


class HeapQueue:
    """The original scheduler: one binary heap of ``(when, seq, fn, arg)``.

    Kept as the ``scheduler="heap"`` fallback and as the reference
    implementation the calendar queue is byte-identity-tested against.

    ``near`` is the **stable peek list** contract shared with
    :class:`CalendarQueue`: the list object never changes identity, and
    whenever it is non-empty, ``near[0]`` is the queue's minimum entry.
    When it is empty the queue may still hold entries (calendar only),
    but none of them can be due at the current instant — callers on the
    hot path may treat "``near`` empty" as "no timed event at ``now``"
    and only fall back to :meth:`head` when they need the true minimum.
    """

    __slots__ = ("near",)

    def __init__(self) -> None:
        self.near: List[tuple] = []

    def push(self, when: float, seq: int, fn: Callable, arg: Any) -> None:
        heapq.heappush(self.near, (when, seq, fn, arg))

    def head(self) -> Optional[tuple]:
        """The minimum pending entry, or ``None`` when empty."""
        near = self.near
        return near[0] if near else None

    def pop_head(self) -> tuple:
        return heapq.heappop(self.near)

    def __len__(self) -> int:
        return len(self.near)


class CalendarQueue:
    """Array-backed calendar of day buckets with a near heap and an
    overflow heap (see module docstring for the design).

    ``width_us`` is the day width; ``horizon_days`` bounds how far
    ahead the calendar allocates buckets — anything further lands in
    the overflow heap and migrates in as the clock approaches it.
    Neither knob affects dispatch order, only constant factors.
    """

    __slots__ = (
        "width", "inv_width", "horizon_days", "cur_day",
        "near", "days", "day_heap", "overflow", "_far_count",
    )

    def __init__(self, width_us: float = 512.0,
                 horizon_days: int = 4096) -> None:
        if width_us <= 0:
            raise ValueError(f"calendar day width must be positive: {width_us}")
        if horizon_days < 1:
            raise ValueError(f"calendar horizon must be >= 1: {horizon_days}")
        self.width = float(width_us)
        self.inv_width = 1.0 / self.width
        self.horizon_days = horizon_days
        self.cur_day = 0
        #: Heap-ordered entries of the day being drained.  Stable list
        #: identity (mutated in place, never rebound): hot-path callers
        #: keep a direct reference for inline peeks.  Invariant: every
        #: entry in ``days``/``overflow`` is in a day strictly beyond
        #: ``cur_day``, hence strictly later than any instant whose
        #: events drain from ``near`` — so an empty ``near`` guarantees
        #: no timed event is due *now* even when the calendar is not.
        self.near: List[tuple] = []
        #: Unsorted future buckets: absolute day index -> entry list.
        self.days: dict = {}
        #: Min-heap of day indices present in ``days`` (no duplicates:
        #: a day is pushed only when its bucket is created).
        self.day_heap: List[int] = []
        #: Far tail beyond the horizon: plain entry heap.
        self.overflow: List[tuple] = []
        #: Entries in ``days`` + ``overflow`` (``near`` is uncounted so
        #: the hot engine loop can heappush/heappop it directly).
        self._far_count = 0

    # -- insertion -----------------------------------------------------
    def push(self, when: float, seq: int, fn: Callable, arg: Any) -> None:
        cur = self.cur_day
        d = int(when * self.inv_width)
        if d <= cur:
            # Same-day (or boundary-rounding) insert: straight into the
            # near heap so it merges with the day being drained.
            heapq.heappush(self.near, (when, seq, fn, arg))
            return
        self._far_count += 1
        if d - cur < self.horizon_days:
            bucket = self.days.get(d)
            if bucket is None:
                self.days[d] = [(when, seq, fn, arg)]
                heapq.heappush(self.day_heap, d)
            else:
                bucket.append((when, seq, fn, arg))
            return
        heapq.heappush(self.overflow, (when, seq, fn, arg))

    # -- extraction ----------------------------------------------------
    def head(self) -> Optional[tuple]:
        """The minimum pending entry, or ``None`` when empty.

        May advance the calendar to the next populated day (bucket
        heapify + overflow migration); this touches only internal
        structure, never dispatch order.
        """
        near = self.near
        if near:
            return near[0]
        if self._far_count:
            self._advance()
            if near:
                return near[0]
        return None

    def pop_head(self) -> tuple:
        """Pop the minimum entry.  Call :meth:`head` first.

        Equivalent to ``heappop(queue.near)`` — the engine's hot loop
        does exactly that, without the method call.
        """
        return heapq.heappop(self.near)

    def _advance(self) -> None:
        """Move ``cur_day`` to the next populated day and stage its
        bucket (merged with any due overflow entries) as the near heap."""
        day_heap = self.day_heap
        overflow = self.overflow
        if day_heap:
            d = day_heap[0]
            if overflow:
                od = int(overflow[0][0] * self.inv_width)
                if od < d:
                    self._drain_overflow_day(od)
                    return
            heapq.heappop(day_heap)
            bucket = self.days.pop(d)
            self.cur_day = d
            if overflow:
                while overflow and int(overflow[0][0] * self.inv_width) == d:
                    bucket.append(heapq.heappop(overflow))
            self._far_count -= len(bucket)
            # In-place so ``near`` keeps its identity (stable peek list).
            near = self.near
            near.extend(bucket)
            heapq.heapify(near)
            return
        if overflow:
            self._drain_overflow_day(int(overflow[0][0] * self.inv_width))

    def _drain_overflow_day(self, od: int) -> None:
        """Make day ``od`` current directly from the overflow heap."""
        self.cur_day = od
        near = self.near
        overflow = self.overflow
        # Successive heap pops come out sorted, and a sorted list is a
        # valid binary heap — no heapify needed.
        while overflow and int(overflow[0][0] * self.inv_width) == od:
            near.append(heapq.heappop(overflow))
        self._far_count -= len(near)

    def __len__(self) -> int:
        return len(self.near) + self._far_count


class Wave:
    """N homogeneous member events behind one scheduler entry.

    Created via :meth:`repro.sim.engine.Simulator.schedule_wave`; not
    instantiated directly.  Member keys live in a NumPy struct array
    (:data:`WAVE_KEY_DTYPE`); member payloads in a plain list.  The
    reserved seq block makes batched dispatch order-exact (module
    docstring has the argument).

    :meth:`cancel` masks a member that has not been dispatched yet —
    its slot is skipped, exactly as if its callback had checked a
    "still wanted?" flag and returned, which is how cancellation looks
    under per-entry scheduling.
    """

    __slots__ = ("sim", "fn", "args", "keys", "uniform", "idx", "n",
                 "cancelled")

    def __init__(self, sim, fn: Callable[[Any], None], args: Sequence[Any],
                 whens: np.ndarray, uniform: bool) -> None:
        self.sim = sim
        self.fn = fn
        self.args = list(args)
        self.n = len(self.args)
        self.keys = whens  # struct array, len n
        self.uniform = uniform
        self.idx = 0
        self.cancelled: Optional[np.ndarray] = None

    # -- inspection ----------------------------------------------------
    @property
    def dispatched(self) -> int:
        """Members already delivered (or skipped as cancelled)."""
        return self.idx

    @property
    def pending(self) -> int:
        return self.n - self.idx

    def member_key(self, i: int) -> Tuple[float, int]:
        """The ``(when, seq)`` dispatch key reserved for member ``i``."""
        rec = self.keys[i]
        return float(rec["when"]), int(rec["seq"])

    # -- cancellation --------------------------------------------------
    def cancel(self, i: int) -> bool:
        """Mask member ``i``; returns False if it already dispatched."""
        if not (0 <= i < self.n):
            raise IndexError(f"wave member {i} out of range (n={self.n})")
        if i < self.idx:
            return False
        if self.cancelled is None:
            self.cancelled = np.zeros(self.n, dtype=bool)
        self.cancelled[i] = True
        return True

    # -- dispatch (engine-facing) --------------------------------------
    def _dispatch(self, _arg: Any) -> None:
        sim = self.sim
        fn = self.fn
        args = self.args
        start = i = self.idx
        n = self.n
        prev = sim._wave_active
        # While the batch runs, members i+1..n are in flight but not
        # visible in any queue; the flag keeps the process trampoline
        # from resuming a continuation ahead of them (see process.py).
        sim._wave_active = True
        # ``self.idx`` advances *before* each member's callback and the
        # mask is re-read per member: a member may cancel a later member
        # of its own wave mid-batch (cancel of itself or an earlier one
        # correctly reports "already dispatched").
        try:
            if self.uniform:
                while i < n:
                    self.idx = i + 1
                    c = self.cancelled
                    if c is None or not c[i]:
                        fn(args[i])
                    i += 1
            else:
                whens = self.keys["when"]
                t = whens[i]
                while i < n and whens[i] == t:
                    self.idx = i + 1
                    c = self.cancelled
                    if c is None or not c[i]:
                        fn(args[i])
                    i += 1
        finally:
            sim._wave_active = prev
            i = self.idx
            k = i - start
            if i < n:
                # Re-arm under the next member's reserved key.
                sim._wave_extra -= k
                rec = self.keys[i]
                sim._sched.push(
                    float(rec["when"]), int(rec["seq"]), self._dispatch, None
                )
            else:
                sim._wave_extra -= k - 1
                self.args = ()  # release member payloads promptly

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Wave n={self.n} dispatched={self.idx}>"

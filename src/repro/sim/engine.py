"""Discrete-event simulation core: clock, scheduler, waitables.

The engine is deliberately tiny and deterministic.  Simulated time is a
``float`` in *microseconds*.  Events scheduled for the same timestamp
fire in scheduling order (a monotonically increasing sequence number
breaks ties), so a simulation with a fixed seed is exactly
reproducible.

Fast paths
----------
Zero-delay work (waitable callback dispatch, ``call_soon``, process
continuations) dominates event volume, so it bypasses the global
scheduler: a FIFO **microtask queue** holds ``(seq, fn, arg)`` entries
that are drained in ``(time, seq)`` order merged against the timed
queue.  Because every microtask carries the same sequence counter the
scheduler uses, the execution order is *identical* to scheduling
everything through one heap — the golden-trace tests in ``tests/sim``
pin this down — while a ``deque`` append/popleft replaces a
``heappush``/``heappop`` pair and no closure or tuple payload is
allocated per hop.

Timed events go through a pluggable scheduler (``scheduler=`` ctor
argument): the default :class:`~repro.sim.calendar.CalendarQueue`
(day buckets + near heap + overflow heap, O(1) amortized insert for
the dense startup regime) or the original single binary heap
(``scheduler="heap"``), kept as reference for byte-identity tests.

Homogeneous event storms — a PMI fence releasing a whole wave of
waiters, ``start_pes`` launching every PE — can be scheduled as one
:meth:`Simulator.schedule_wave` aggregate: a contiguous block of seq
numbers is reserved and the members dispatch in batch from a single
scheduler entry, in exactly the order N independent entries would
have (see :mod:`repro.sim.calendar` for the argument).

The public surface is:

* :class:`Simulator` -- owns the clock, the timed-event scheduler and
  the microtask queue.
* :class:`Waitable` -- anything a process generator may ``yield``.
* :class:`SimEvent` -- a one-shot event that can be succeeded or failed.
* :class:`Timeout` -- fires after a fixed simulated delay.
* :class:`AnyOf` / :class:`AllOf` -- composite waits.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop
from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

from .calendar import WAVE_KEY_DTYPE, CalendarQueue, HeapQueue, Wave

__all__ = [
    "Simulator",
    "Waitable",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double-trigger etc.)."""


def _invoke0(fn: Callable[[], None]) -> None:
    """Microtask shim running an argument-less callable."""
    fn()


class _CallbackBatch:
    """Dispatches a multi-entry callback list without a per-dispatch
    closure (the single-callback case never allocates this)."""

    __slots__ = ("callbacks",)

    def __init__(self, callbacks: List[Callable]) -> None:
        self.callbacks = callbacks

    def __call__(self, waitable: "Waitable") -> None:
        for fn in self.callbacks:
            fn(waitable)


class Waitable:
    """Base class for objects a process can ``yield`` on.

    A waitable is *triggered* at most once.  When triggered it carries a
    ``value`` (delivered to waiters via ``send``) or an exception
    (delivered via ``throw``).  Callbacks registered via
    :meth:`add_callback` run, in order, at the simulated instant the
    waitable triggers.

    ``callbacks`` is stored compactly: ``None`` (none registered — the
    common case for timeouts and fire-and-forget events), a bare
    callable (exactly one waiter — the dominant case), or a list (two
    or more).  This keeps the per-waitable allocation at zero until a
    second waiter actually appears.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Any = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False

    # -- inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the waitable has fired (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if triggered without an exception."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value; raises if the waitable failed or is pending."""
        if not self._triggered:
            raise SimulationError("waitable has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ---------------------------------------------------
    def _trigger(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exc = exc
        self.sim._schedule_callbacks(self)

    def add_callback(self, fn: Callable[["Waitable"], None]) -> None:
        """Run ``fn(self)`` when this waitable fires (immediately if fired).

        "Immediately" still means *via the event queue* at the current
        simulated time, preserving run-to-completion semantics.
        """
        if self._triggered:
            # Already dispatched: schedule a fresh zero-delay callback.
            self.sim._call_soon(fn, self)
            return
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = fn
        elif cbs.__class__ is list:
            cbs.append(fn)
        else:
            self.callbacks = [cbs, fn]


class SimEvent(Waitable):
    """One-shot event with explicit :meth:`succeed` / :meth:`fail`."""

    __slots__ = ()

    def succeed(self, value: Any = None) -> "SimEvent":
        self._trigger(value=value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(exc=exc)
        return self


class Timeout(Waitable):
    """Fires ``delay`` microseconds after construction.

    Processes that only need a value-less sleep can ``yield`` a plain
    ``float``/``int`` delay instead and skip this object entirely (see
    :mod:`repro.sim.process`).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        sim._schedule_at(sim.now + self.delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self._trigger(value=value)


class _Composite(Waitable):
    """Shared machinery for AnyOf / AllOf."""

    __slots__ = ("children", "_pending")

    def __init__(self, sim: "Simulator", children: Iterable[Waitable]) -> None:
        super().__init__(sim)
        self.children: List[Waitable] = list(children)
        if not self.children:
            raise ValueError("composite wait over an empty set")
        self._pending = len(self.children)
        for child in self.children:
            child.add_callback(self._child_fired)

    def _child_fired(self, child: Waitable) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _detach_pending(self) -> None:
        """Unregister from children that have not fired yet.

        Without this a triggered composite would linger in its losing
        children's callback lists for their whole lifetime — the retry
        loops in the on-demand conduit create an ``AnyOf`` per attempt
        over the *same* long-lived event, so the leak is unbounded.
        """
        cb = self._child_fired
        for child in self.children:
            if child._triggered:
                continue
            cbs = child.callbacks
            if cbs.__class__ is list:
                try:
                    cbs.remove(cb)
                except ValueError:
                    pass
            elif cbs == cb:  # bound methods compare by (self, func)
                child.callbacks = None


class AnyOf(_Composite):
    """Triggers when the *first* child triggers; value is ``(child, value)``."""

    __slots__ = ()

    def _child_fired(self, child: Waitable) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self._trigger(exc=child.exception)
        else:
            self._trigger(value=(child, child._value))
        self._detach_pending()


class AllOf(_Composite):
    """Triggers when *all* children have; value is the list of child values."""

    __slots__ = ()

    def _child_fired(self, child: Waitable) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self._trigger(exc=child.exception)
            self._detach_pending()
            return
        self._pending -= 1
        if self._pending == 0:
            self._trigger(value=[c._value for c in self.children])


class Simulator:
    """The event loop: a clock, a timed-event scheduler of
    ``(time, seq, fn, arg)`` entries and a FIFO microtask queue of
    ``(seq, fn, arg)`` zero-delay entries.

    ``scheduler`` selects the timed-event backend: ``"calendar"`` (the
    default :class:`~repro.sim.calendar.CalendarQueue`) or ``"heap"``
    (the original single binary heap).  Both dispatch in exactly the
    same ``(time, seq)`` order; the knob exists for A/B byte-identity
    tests and as an escape hatch.
    """

    def __init__(self, scheduler: str = "calendar",
                 calendar_width_us: float = 512.0,
                 calendar_horizon_days: int = 4096) -> None:
        self.now: float = 0.0
        if scheduler == "calendar":
            self._sched = CalendarQueue(
                width_us=calendar_width_us,
                horizon_days=calendar_horizon_days,
            )
        elif scheduler == "heap":
            self._sched = HeapQueue()
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r} (use 'calendar' or 'heap')"
            )
        self.scheduler = scheduler
        #: Direct reference to the scheduler's stable peek list (see
        #: HeapQueue.near): inline ``near[0]`` peeks — and direct
        #: ``heappop`` pops — on the hot paths.
        self._near = self._sched.near
        self._push = self._sched.push
        self._micro: deque = deque()
        self._seq = 0
        #: True while a Wave is dispatching its member batch — the
        #: process trampoline must not inline-resume then, because the
        #: remaining members are not visible in any queue.
        self._wave_active = False
        #: Undispatched wave members beyond the one scheduler entry per
        #: wave (keeps :attr:`pending_events` truthful).
        self._wave_extra = 0
        #: Opt-in profiling hook (see :mod:`repro.sim.profile`).
        self._prof = None

    # -- low-level scheduling ------------------------------------------
    def _schedule_at(self, when: float, fn: Callable, arg: Any = None) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < now={self.now})"
            )
        self._seq += 1
        self._push(when, self._seq, fn, arg)
        if self._prof is not None:
            self._prof._record(fn, False)

    def schedule_callback(self, when: float, fn: Callable,
                          arg: Any = None) -> None:
        """Public timed-callback entry point: run ``fn(arg)`` at ``when``.

        Intended for passive observers (e.g. the telemetry timeline
        sampler) that need a periodic hook without creating a process
        or a waitable.  The entry consumes one sequence number like any
        other event; since seq only breaks *same-time* ties and is
        allocated monotonically, inserting such events never reorders
        the rest of the simulation.
        """
        self._schedule_at(when, fn, arg)

    def schedule_wave(self, when: Union[float, Sequence[float], np.ndarray],
                      fn: Callable[[Any], None],
                      args: Sequence[Any]) -> Optional[Wave]:
        """Schedule ``fn(arg)`` for every ``arg`` as one aggregate.

        ``when`` is either a single timestamp (all members fire at the
        same instant) or a non-decreasing array of per-member
        timestamps (an *affine* wave — e.g. release times computed in
        one vectorized cost evaluation).  A contiguous block of
        ``len(args)`` sequence numbers is reserved, so dispatch order
        is byte-identical to ``len(args)`` separate ``_schedule_at``
        calls made back-to-back — at a single scheduler entry's cost.

        Returns the :class:`~repro.sim.calendar.Wave` (supports member
        cancellation), or ``None`` for an empty ``args`` (no seq
        numbers consumed, matching a zero-iteration scheduling loop).
        """
        n = len(args)
        if n == 0:
            return None
        keys = np.empty(n, dtype=WAVE_KEY_DTYPE)
        if isinstance(when, (float, int)):
            when0 = float(when)
            if when0 < self.now:
                raise SimulationError(
                    f"cannot schedule in the past ({when0} < now={self.now})"
                )
            keys["when"] = when0
            uniform = True
        else:
            whens = np.asarray(when, dtype=np.float64)
            if whens.shape != (n,):
                raise ValueError(
                    f"wave times shape {whens.shape} != ({n},)"
                )
            if whens[0] < self.now:
                raise SimulationError(
                    f"cannot schedule in the past ({whens[0]} < now={self.now})"
                )
            if n > 1 and bool(np.any(np.diff(whens) < 0)):
                raise ValueError("wave member times must be non-decreasing")
            keys["when"] = whens
            when0 = float(whens[0])
            uniform = bool(whens[0] == whens[-1])
        seq0 = self._seq + 1
        self._seq += n
        keys["seq"] = np.arange(seq0, seq0 + n, dtype=np.int64)
        wave = Wave(self, fn, args, keys, uniform)
        self._push(when0, seq0, wave._dispatch, None)
        self._wave_extra += n - 1
        if self._prof is not None:
            self._prof._record_wave(fn, n)
        return wave

    def _call_soon(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at the current time via the microtask
        queue (no heap traffic, no allocation beyond the entry tuple)."""
        self._seq += 1
        self._micro.append((self._seq, fn, arg))
        if self._prof is not None:
            self._prof._record(fn, True)

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the current simulated time, after pending work."""
        self._call_soon(_invoke0, fn)

    def _schedule_callbacks(self, waitable: Waitable) -> None:
        # Double dispatch is impossible: ``_trigger`` (the only caller)
        # raises on a second trigger before reaching here.
        cbs = waitable.callbacks
        if cbs is None:
            # Nobody registered yet — nothing observable would run;
            # late ``add_callback`` calls go through the microtask queue.
            return
        waitable.callbacks = None
        if cbs.__class__ is list:
            self._call_soon(_CallbackBatch(cbs), waitable)
        else:
            # Inline the dominant single-waiter case.
            self._call_soon(cbs, waitable)

    # -- waitable constructors -----------------------------------------
    def event(self) -> SimEvent:
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        return AnyOf(self, children)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        return AllOf(self, children)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Advance the clock to — and execute — the next pending event.

        Microtasks and timed events interleave in exact ``(time, seq)``
        order, so draining via ``step`` is indistinguishable from a
        single global heap.  A wave entry counts as one step per
        same-time member batch.
        """
        micro = self._micro
        near = self._near
        if micro:
            # An entry outside ``near`` is in a later calendar day and
            # cannot be due now, so the merge check peeks only ``near``.
            if near:
                top = near[0]
                if top[0] == self.now and top[1] < micro[0][0]:
                    heappop(near)
                    top[2](top[3])
                    return
            entry = micro.popleft()
            entry[1](entry[2])
            return
        if self._sched.head() is None:
            raise SimulationError("no pending events")
        when, _seq, fn, arg = heappop(near)
        self.now = when
        fn(arg)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or ``until`` is reached.

        Returns the final simulated time.  Unhandled process failures
        propagate out of :meth:`run` (see ``repro.sim.process``).
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        micro = self._micro
        near = self._near
        head = self._sched.head
        while True:
            if micro:
                # Merge against same-time timed events by sequence
                # number.  Peeking only ``near`` is exact: anything the
                # calendar holds outside it is in a strictly later day
                # and cannot tie with ``now``.
                if near:
                    top = near[0]
                    if top[0] == self.now and top[1] < micro[0][0]:
                        heappop(near)
                        top[2](top[3])
                        continue
                _seq, fn, arg = micro.popleft()
                fn(arg)
            else:
                if not near and head() is None:
                    break
                if until is not None and near[0][0] > until:
                    self.now = until
                    return self.now
                when, _seq, fn, arg = heappop(near)
                self.now = when
                fn(arg)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        """Pending work items, counting every undispatched wave member."""
        return len(self._sched) + len(self._micro) + self._wave_extra

"""Discrete-event simulation core: clock, event heap, waitables.

The engine is deliberately tiny and deterministic.  Simulated time is a
``float`` in *microseconds*.  Events scheduled for the same timestamp
fire in scheduling order (a monotonically increasing sequence number
breaks ties), so a simulation with a fixed seed is exactly
reproducible.

Fast path
---------
Zero-delay work (waitable callback dispatch, ``call_soon``, process
continuations) dominates event volume, so it bypasses the global heap:
a FIFO **microtask queue** holds ``(seq, fn, arg)`` entries that are
drained in ``(time, seq)`` order merged against the heap.  Because
every microtask carries the same sequence counter the heap uses, the
execution order is *identical* to scheduling everything through the
heap — the golden-trace tests in ``tests/sim`` pin this down — while a
``deque`` append/popleft replaces a ``heappush``/``heappop`` pair and
no closure or tuple payload is allocated per hop.

The public surface is:

* :class:`Simulator` -- owns the clock, the event heap and the
  microtask queue.
* :class:`Waitable` -- anything a process generator may ``yield``.
* :class:`SimEvent` -- a one-shot event that can be succeeded or failed.
* :class:`Timeout` -- fires after a fixed simulated delay.
* :class:`AnyOf` / :class:`AllOf` -- composite waits.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Waitable",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double-trigger etc.)."""


def _invoke0(fn: Callable[[], None]) -> None:
    """Microtask shim running an argument-less callable."""
    fn()


class _CallbackBatch:
    """Dispatches a multi-entry callback list without a per-dispatch
    closure (the single-callback case never allocates this)."""

    __slots__ = ("callbacks",)

    def __init__(self, callbacks: List[Callable]) -> None:
        self.callbacks = callbacks

    def __call__(self, waitable: "Waitable") -> None:
        for fn in self.callbacks:
            fn(waitable)


class Waitable:
    """Base class for objects a process can ``yield`` on.

    A waitable is *triggered* at most once.  When triggered it carries a
    ``value`` (delivered to waiters via ``send``) or an exception
    (delivered via ``throw``).  Callbacks registered via
    :meth:`add_callback` run, in order, at the simulated instant the
    waitable triggers.

    ``callbacks`` is stored compactly: ``None`` (none registered — the
    common case for timeouts and fire-and-forget events), a bare
    callable (exactly one waiter — the dominant case), or a list (two
    or more).  This keeps the per-waitable allocation at zero until a
    second waiter actually appears.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Any = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False

    # -- inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the waitable has fired (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if triggered without an exception."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value; raises if the waitable failed or is pending."""
        if not self._triggered:
            raise SimulationError("waitable has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ---------------------------------------------------
    def _trigger(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exc = exc
        self.sim._schedule_callbacks(self)

    def add_callback(self, fn: Callable[["Waitable"], None]) -> None:
        """Run ``fn(self)`` when this waitable fires (immediately if fired).

        "Immediately" still means *via the event queue* at the current
        simulated time, preserving run-to-completion semantics.
        """
        if self._triggered:
            # Already dispatched: schedule a fresh zero-delay callback.
            self.sim._call_soon(fn, self)
            return
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = fn
        elif cbs.__class__ is list:
            cbs.append(fn)
        else:
            self.callbacks = [cbs, fn]


class SimEvent(Waitable):
    """One-shot event with explicit :meth:`succeed` / :meth:`fail`."""

    __slots__ = ()

    def succeed(self, value: Any = None) -> "SimEvent":
        self._trigger(value=value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(exc=exc)
        return self


class Timeout(Waitable):
    """Fires ``delay`` microseconds after construction.

    Processes that only need a value-less sleep can ``yield`` a plain
    ``float``/``int`` delay instead and skip this object entirely (see
    :mod:`repro.sim.process`).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        sim._schedule_at(sim.now + self.delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self._trigger(value=value)


class _Composite(Waitable):
    """Shared machinery for AnyOf / AllOf."""

    __slots__ = ("children", "_pending")

    def __init__(self, sim: "Simulator", children: Iterable[Waitable]) -> None:
        super().__init__(sim)
        self.children: List[Waitable] = list(children)
        if not self.children:
            raise ValueError("composite wait over an empty set")
        self._pending = len(self.children)
        for child in self.children:
            child.add_callback(self._child_fired)

    def _child_fired(self, child: Waitable) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _detach_pending(self) -> None:
        """Unregister from children that have not fired yet.

        Without this a triggered composite would linger in its losing
        children's callback lists for their whole lifetime — the retry
        loops in the on-demand conduit create an ``AnyOf`` per attempt
        over the *same* long-lived event, so the leak is unbounded.
        """
        cb = self._child_fired
        for child in self.children:
            if child._triggered:
                continue
            cbs = child.callbacks
            if cbs.__class__ is list:
                try:
                    cbs.remove(cb)
                except ValueError:
                    pass
            elif cbs == cb:  # bound methods compare by (self, func)
                child.callbacks = None


class AnyOf(_Composite):
    """Triggers when the *first* child triggers; value is ``(child, value)``."""

    __slots__ = ()

    def _child_fired(self, child: Waitable) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self._trigger(exc=child.exception)
        else:
            self._trigger(value=(child, child._value))
        self._detach_pending()


class AllOf(_Composite):
    """Triggers when *all* children have; value is the list of child values."""

    __slots__ = ()

    def _child_fired(self, child: Waitable) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self._trigger(exc=child.exception)
            self._detach_pending()
            return
        self._pending -= 1
        if self._pending == 0:
            self._trigger(value=[c._value for c in self.children])


class Simulator:
    """The event loop: a clock, a heap of ``(time, seq, fn, arg)`` and a
    FIFO microtask queue of ``(seq, fn, arg)`` zero-delay entries."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._micro: deque = deque()
        self._seq = 0
        #: Opt-in profiling hook (see :mod:`repro.sim.profile`).
        self._prof = None

    # -- low-level scheduling ------------------------------------------
    def _schedule_at(self, when: float, fn: Callable, arg: Any = None) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn, arg))
        if self._prof is not None:
            self._prof._record(fn, False)

    def _call_soon(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at the current time via the microtask
        queue (no heap traffic, no allocation beyond the entry tuple)."""
        self._seq += 1
        self._micro.append((self._seq, fn, arg))
        if self._prof is not None:
            self._prof._record(fn, True)

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the current simulated time, after pending work."""
        self._call_soon(_invoke0, fn)

    def _schedule_callbacks(self, waitable: Waitable) -> None:
        # Double dispatch is impossible: ``_trigger`` (the only caller)
        # raises on a second trigger before reaching here.
        cbs = waitable.callbacks
        if cbs is None:
            # Nobody registered yet — nothing observable would run;
            # late ``add_callback`` calls go through the microtask queue.
            return
        waitable.callbacks = None
        if cbs.__class__ is list:
            self._call_soon(_CallbackBatch(cbs), waitable)
        else:
            # Inline the dominant single-waiter case.
            self._call_soon(cbs, waitable)

    # -- waitable constructors -----------------------------------------
    def event(self) -> SimEvent:
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        return AnyOf(self, children)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        return AllOf(self, children)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Advance the clock to — and execute — the next pending event.

        Microtasks and heap events interleave in exact ``(time, seq)``
        order, so draining via ``step`` is indistinguishable from a
        single global heap.
        """
        micro = self._micro
        if micro:
            heap = self._heap
            if heap:
                top = heap[0]
                if top[0] == self.now and top[1] < micro[0][0]:
                    heapq.heappop(heap)
                    top[2](top[3])
                    return
            entry = micro.popleft()
            entry[1](entry[2])
            return
        heap = self._heap
        if not heap:
            raise SimulationError("no pending events")
        when, _seq, fn, arg = heapq.heappop(heap)
        self.now = when
        fn(arg)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or ``until`` is reached.

        Returns the final simulated time.  Unhandled process failures
        propagate out of :meth:`run` (see ``repro.sim.process``).
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        micro = self._micro
        heap = self._heap
        pop = heapq.heappop
        while True:
            if micro:
                # Merge against same-time heap events by sequence number.
                if heap:
                    top = heap[0]
                    if top[0] == self.now and top[1] < micro[0][0]:
                        pop(heap)
                        top[2](top[3])
                        continue
                entry = micro.popleft()
                entry[1](entry[2])
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                when, _seq, fn, arg = pop(heap)
                self.now = when
                fn(arg)
            else:
                break
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._heap) + len(self._micro)

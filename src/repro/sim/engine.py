"""Discrete-event simulation core: clock, event heap, waitables.

The engine is deliberately tiny and deterministic.  Simulated time is a
``float`` in *microseconds*.  Events scheduled for the same timestamp
fire in scheduling order (a monotonically increasing sequence number
breaks ties), so a simulation with a fixed seed is exactly
reproducible.

The public surface is:

* :class:`Simulator` -- owns the clock and the pending-event heap.
* :class:`Waitable` -- anything a process generator may ``yield``.
* :class:`SimEvent` -- a one-shot event that can be succeeded or failed.
* :class:`Timeout` -- fires after a fixed simulated delay.
* :class:`AnyOf` / :class:`AllOf` -- composite waits.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Waitable",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double-trigger etc.)."""


class Waitable:
    """Base class for objects a process can ``yield`` on.

    A waitable is *triggered* at most once.  When triggered it carries a
    ``value`` (delivered to waiters via ``send``) or an exception
    (delivered via ``throw``).  Callbacks appended to :attr:`callbacks`
    run, in order, at the simulated instant the waitable triggers.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Waitable"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False

    # -- inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the waitable has fired (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if triggered without an exception."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value; raises if the waitable failed or is pending."""
        if not self._triggered:
            raise SimulationError("waitable has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ---------------------------------------------------
    def _trigger(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exc = exc
        self.sim._schedule_callbacks(self)

    def add_callback(self, fn: Callable[["Waitable"], None]) -> None:
        """Run ``fn(self)`` when this waitable fires (immediately if fired).

        "Immediately" still means *via the event queue* at the current
        simulated time, preserving run-to-completion semantics.
        """
        if self.callbacks is None:
            # Already dispatched: schedule a fresh zero-delay callback.
            self.sim.call_soon(lambda: fn(self))
        else:
            self.callbacks.append(fn)


class SimEvent(Waitable):
    """One-shot event with explicit :meth:`succeed` / :meth:`fail`."""

    __slots__ = ()

    def succeed(self, value: Any = None) -> "SimEvent":
        self._trigger(value=value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(exc=exc)
        return self


class Timeout(Waitable):
    """Fires ``delay`` microseconds after construction."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        sim._schedule_at(sim.now + self.delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self._trigger(value=value)


class _Composite(Waitable):
    """Shared machinery for AnyOf / AllOf."""

    __slots__ = ("children", "_pending")

    def __init__(self, sim: "Simulator", children: Iterable[Waitable]) -> None:
        super().__init__(sim)
        self.children: List[Waitable] = list(children)
        if not self.children:
            raise ValueError("composite wait over an empty set")
        self._pending = len(self.children)
        for child in self.children:
            child.add_callback(self._child_fired)

    def _child_fired(self, child: Waitable) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Composite):
    """Triggers when the *first* child triggers; value is ``(child, value)``."""

    __slots__ = ()

    def _child_fired(self, child: Waitable) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self._trigger(exc=child.exception)
        else:
            self._trigger(value=(child, child._value))


class AllOf(_Composite):
    """Triggers when *all* children have; value is the list of child values."""

    __slots__ = ()

    def _child_fired(self, child: Waitable) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self._trigger(exc=child.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self._trigger(value=[c._value for c in self.children])


class Simulator:
    """The event loop: a clock plus a heap of ``(time, seq, fn, arg)``."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._processes: List[Any] = []  # populated by sim.process.Process

    # -- low-level scheduling ------------------------------------------
    def _schedule_at(self, when: float, fn: Callable, arg: Any = None) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn, arg))

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the current simulated time, after pending work."""
        self._schedule_at(self.now, lambda _arg: fn(), None)

    def _schedule_callbacks(self, waitable: Waitable) -> None:
        callbacks, waitable.callbacks = waitable.callbacks, None
        if callbacks is None:
            raise SimulationError("waitable dispatched twice")

        def _dispatch(_arg: Any) -> None:
            for fn in callbacks:
                fn(waitable)

        self._schedule_at(self.now, _dispatch, None)

    # -- waitable constructors -----------------------------------------
    def event(self) -> SimEvent:
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        return AnyOf(self, children)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        return AllOf(self, children)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Advance the clock to — and execute — the next pending event."""
        when, _seq, fn, arg = heapq.heappop(self._heap)
        self.now = when
        fn(arg)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or ``until`` is reached.

        Returns the final simulated time.  Unhandled process failures
        propagate out of :meth:`run` (see ``repro.sim.process``).
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self.step()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

"""Analytical phase-model (macro) support: kernel-side containers.

The macro layer (``RuntimeConfig.macro_phases`` / ``Job(macro=True)``)
replaces the per-PE generator swarms of *homogeneous, data-independent*
startup phases with closed-form cost curves evaluated directly from the
:class:`~repro.cluster.params.CostModel`.  The per-layer model providers
live next to the code they model:

* :mod:`repro.pmi.models` — tree fence/allgather dissemination;
* :mod:`repro.shmem.models` — the ``start_pes`` flows themselves (the
  orchestrator ``run_macro_job`` lives there);
* :mod:`repro.gasnet.models` — static wire-up charges and the
  on-demand connect/teardown cost model.

This module holds only the kernel-side glue those providers share: a
lightweight stand-in for a :class:`~repro.shmem.runtime.ShmemPE` that
quacks exactly like one for the purposes of
:meth:`repro.core.metrics.StartupReport.from_pes` and
:meth:`repro.core.metrics.ResourceReport.from_pes`, plus the container
the orchestrator returns to :class:`repro.core.job.Job`.

Equivalence contract
--------------------
A macro run must reproduce the exact DES's simulated phase times,
``StartupReport`` breakdown and the deterministic per-layer counters
*bit for bit* (see ``tests/core/test_macro_equivalence.py``).  The
closed forms therefore mirror the engine's float arithmetic operation
by operation — e.g. a phase duration is computed as ``end - begin`` of
two separately accumulated instants, never as an algebraically
simplified sum — and the aggregation reuses the real ``from_pes``
reducers rather than re-deriving means.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["MacroPE", "MacroRunResult"]


class MacroPE:
    """Stand-in PE carrying one rank's analytically derived metrics.

    Exposes exactly the surface the job-level reducers read:
    ``pe.timer.breakdown()``, ``pe.init_duration`` and
    ``pe.resource_usage()``.  ``timer`` is the object itself (the
    breakdown is precomputed), which keeps a 1M-PE sweep at one small
    object + one dict per rank; the resource dict is typically shared
    between ranks (identical on every PE in the on-demand flow).
    """

    __slots__ = ("rank", "_breakdown", "init_done_at", "init_duration",
                 "_resources")

    def __init__(self, rank: int, breakdown: Dict[str, float],
                 init_done_at: float, init_duration: float,
                 resources: Dict[str, float]) -> None:
        self.rank = rank
        self._breakdown = breakdown
        self.init_done_at = init_done_at
        self.init_duration = init_duration
        self._resources = resources

    @property
    def timer(self) -> "MacroPE":
        return self

    def breakdown(self) -> Dict[str, float]:
        return self._breakdown

    def resource_usage(self) -> Dict[str, float]:
        return self._resources


class MacroRunResult:
    """What :func:`repro.shmem.models.run_macro_job` hands back to the
    Job (which assembles the public :class:`~repro.core.metrics.
    JobResult` from it, reusing the exact engine's reducers)."""

    __slots__ = ("pes", "wall_time_us", "app_done_us", "app_results",
                 "counters", "modeled")

    def __init__(self, pes: List[Any], wall_time_us: float,
                 app_done_us: float, app_results: List[Any],
                 counters: Dict[str, int],
                 modeled: Optional[List[str]] = None) -> None:
        self.pes = pes
        self.wall_time_us = wall_time_us
        self.app_done_us = app_done_us
        self.app_results = app_results
        self.counters = counters
        #: Counter keys / fields whose values come from a *model* (the
        #: no-loss finalize approximation) rather than the exact
        #: equivalence argument; documented in DESIGN.md and excluded
        #: from the equivalence fixtures.
        self.modeled = modeled or []

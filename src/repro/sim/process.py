"""Generator-coroutine processes for the DES kernel.

A simulated process is a Python generator that ``yield``\\ s
:class:`~repro.sim.engine.Waitable` objects (timeouts, events, other
processes, composites).  The kernel resumes the generator with the
waitable's value (``gen.send(value)``), or throws the waitable's
exception into it.

Example::

    def worker(sim):
        yield sim.timeout(5.0)          # sleep 5 us
        ev = sim.event()
        ...
        value = yield ev                # wait for someone to succeed(ev)

    proc = spawn(sim, worker(sim), name="worker")
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .engine import SimEvent, SimulationError, Simulator, Waitable

__all__ = ["Process", "spawn", "ProcessFailure"]


class ProcessFailure(RuntimeError):
    """Wraps an exception that escaped a simulated process."""

    def __init__(self, process: "Process", cause: BaseException) -> None:
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class Process(Waitable):
    """A running generator; also a waitable so parents can join it.

    The process triggers with the generator's return value
    (``StopIteration.value``) on normal exit, or fails with the escaped
    exception.  An exception that nobody joins on is re-raised out of
    :meth:`Simulator.run` wrapped in :class:`ProcessFailure`.
    """

    __slots__ = ("gen", "name", "_joined")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "?") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen)!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name
        self._joined = False
        sim._processes.append(self)
        sim._schedule_at(sim.now, self._resume, (None, None))

    def add_callback(self, fn) -> None:  # noqa: D102 - see Waitable
        self._joined = True
        super().add_callback(fn)

    # -- stepping ------------------------------------------------------
    def _resume(self, payload) -> None:
        send_value, throw_exc = payload
        try:
            if throw_exc is not None:
                target = self.gen.throw(throw_exc)
            else:
                target = self.gen.send(send_value)
        except StopIteration as stop:
            self._trigger(value=stop.value)
            return
        except BaseException as exc:  # process died
            if self._joined:
                self._trigger(exc=exc)
            else:
                # Nobody is listening: abort the whole simulation loudly.
                raise ProcessFailure(self, exc) from exc
            return
        if not isinstance(target, Waitable):
            exc = SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
            self.gen.close()
            if self._joined:
                self._trigger(exc=exc)
            else:
                raise ProcessFailure(self, exc) from exc
            return
        target.add_callback(self._on_target)

    def _on_target(self, target: Waitable) -> None:
        if target.exception is not None:
            self.sim._schedule_at(self.sim.now, self._resume, (None, target.exception))
        else:
            self.sim._schedule_at(self.sim.now, self._resume, (target._value, None))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: Generator, name: str = "?") -> Process:
    """Create and start a :class:`Process` at the current simulated time."""
    return Process(sim, gen, name=name)

"""Generator-coroutine processes for the DES kernel.

A simulated process is a Python generator that ``yield``\\ s
:class:`~repro.sim.engine.Waitable` objects (timeouts, events, other
processes, composites) — or, on the fast path, a plain ``float``
delay, which behaves exactly like ``yield sim.timeout(delay)`` (the
resumed value is ``None``) without constructing a Timeout waitable or
any callback plumbing.  The kernel resumes the generator with the
waitable's value (``gen.send(value)``), or throws the waitable's
exception into it.

Example::

    def worker(sim):
        yield 5.0                       # fast-path sleep 5 us
        ev = sim.event()
        ...
        value = yield ev                # wait for someone to succeed(ev)

    proc = spawn(sim, worker(sim), name="worker")
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional, Tuple

from .engine import SimEvent, SimulationError, Simulator, Waitable

__all__ = ["Process", "spawn", "spawn_batch", "ProcessFailure"]


class ProcessFailure(RuntimeError):
    """Wraps an exception that escaped a simulated process.

    ``process`` is the live :class:`Process` when raised in-process; a
    copy that crossed a process boundary (sweep-pool workers) carries
    only :attr:`process_name` — the generator inside a Process cannot
    pickle.
    """

    def __init__(self, process, cause: BaseException) -> None:
        name = process if isinstance(process, str) else process.name
        super().__init__(f"process {name!r} failed: {cause!r}")
        self.process = process
        self.process_name = name
        self.cause = cause

    def __reduce__(self):
        return (type(self), (self.process_name, self.cause))


class Process(Waitable):
    """A running generator; also a waitable so parents can join it.

    The process triggers with the generator's return value
    (``StopIteration.value``) on normal exit, or fails with the escaped
    exception.  An exception that nobody joins on is re-raised out of
    :meth:`Simulator.run` wrapped in :class:`ProcessFailure`.
    """

    __slots__ = ("gen", "name", "_joined")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "?",
                 _defer_start: bool = False) -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen)!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name
        self._joined = False
        if not _defer_start:
            sim._call_soon(self._step_value, None)

    def add_callback(self, fn) -> None:  # noqa: D102 - see Waitable
        self._joined = True
        super().add_callback(fn)

    # -- stepping ------------------------------------------------------
    def _step_value(self, send_value: Any) -> None:
        """Resume the generator with a value (the hot continuation).

        The body is a **trampoline**: when the generator's next wait is
        already satisfied (an elapsed zero-delay or an
        already-triggered waitable) *and* nothing else is runnable at
        the current instant, the loop resumes the generator directly
        instead of bouncing the continuation through the event queue.
        The guard — empty microtask queue, no heap event at ``now`` —
        means the queued continuation would have been the very next
        dispatch anyway, so observable ordering is exactly the queue's
        (the golden-trace test pins this down); only the queue traffic
        disappears.
        """
        sim = self.sim
        gen_send = self.gen.send
        # Both queues have stable identity for the simulator's lifetime,
        # so one load each serves every trampoline iteration.
        micro = sim._micro
        near = sim._near
        while True:
            try:
                target = gen_send(send_value)
            except StopIteration as stop:
                self._trigger(value=stop.value)
                return
            except BaseException as exc:  # process died
                self._died(exc)
                return
            if target.__class__ is float:
                # Plain-delay sleep: no Timeout object, no callback hop.
                # Deliberately restricted to ``float`` (ints stay an
                # error) so a stray non-waitable yield is still caught.
                if target > 0:
                    sim._schedule_at(sim.now + target, self._step_value, None)
                    return
                if target == 0:
                    # ``near`` empty ⇒ no timed event due now (later
                    # calendar days only); wave-active ⇒ undispatched
                    # members are invisible here, so never trampoline.
                    if (not micro and not sim._wave_active
                            and (not near or near[0][0] > sim.now)):
                        send_value = None
                        continue  # trampoline: nothing can interleave
                    sim._call_soon(self._step_value, None)
                    return
                self._step_throw(ValueError(f"negative timeout delay: {target}"))
                return
            if isinstance(target, Waitable):
                if target._triggered:
                    # Fast path: the wait is already over (message in
                    # the mailbox, semaphore free, barrier released...).
                    exc = target._exc
                    if (not micro and not sim._wave_active
                            and (not near or near[0][0] > sim.now)):
                        if exc is None:
                            send_value = target._value
                            continue  # trampoline
                        self._step_throw(exc)
                        return
                    # Something else runs first: keep queue semantics,
                    # but skip the _on_target indirection.
                    if exc is None:
                        sim._call_soon(self._step_value, target._value)
                    else:
                        sim._call_soon(self._step_throw, exc)
                    return
                target.add_callback(self._on_target)
                return
            self._yielded_garbage(target)
            return

    def _step_throw(self, throw_exc: BaseException) -> None:
        """Resume the generator by throwing a waitable's failure into it."""
        try:
            target = self.gen.throw(throw_exc)
        except StopIteration as stop:
            self._trigger(value=stop.value)
            return
        except BaseException as exc:
            self._died(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        """Cold-path wait registration (used after a throw-resume)."""
        if target.__class__ is float:
            # Plain-delay sleep: no Timeout object, no callback hop —
            # the continuation is scheduled directly.  Deliberately
            # restricted to ``float`` (ints stay an error) so a stray
            # non-waitable yield is still caught.
            if target > 0:
                self.sim._schedule_at(self.sim.now + target, self._step_value, None)
            elif target == 0:
                self.sim._call_soon(self._step_value, None)
            else:
                self._step_throw(ValueError(f"negative timeout delay: {target}"))
            return
        if isinstance(target, Waitable):
            if target._triggered:
                exc = target._exc
                if exc is None:
                    self.sim._call_soon(self._step_value, target._value)
                else:
                    self.sim._call_soon(self._step_throw, exc)
                return
            target.add_callback(self._on_target)
            return
        self._yielded_garbage(target)

    def _yielded_garbage(self, target: Any) -> None:
        exc = SimulationError(
            f"process {self.name!r} yielded non-waitable {target!r}"
        )
        self.gen.close()
        if self._joined:
            self._trigger(exc=exc)
        else:
            raise ProcessFailure(self, exc) from exc

    def _died(self, exc: BaseException) -> None:
        if self._joined:
            self._trigger(exc=exc)
        else:
            # Nobody is listening: abort the whole simulation loudly.
            raise ProcessFailure(self, exc) from exc

    def _on_target(self, target: Waitable) -> None:
        # Resume synchronously: the trigger already deferred this
        # callback through the event queue once, so a second hop would
        # only add queue traffic (the golden-trace tests pin down that
        # observable ordering is unchanged).
        exc = target._exc
        if exc is None:
            self._step_value(target._value)
        else:
            self._step_throw(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: Generator, name: str = "?") -> Process:
    """Create and start a :class:`Process` at the current simulated time."""
    return Process(sim, gen, name=name)


def _start_step(proc: Process) -> None:
    """Wave member callback: take a deferred process's first step."""
    proc._step_value(None)


def spawn_batch(sim: Simulator,
                gens: Iterable[Tuple[Generator, str]]) -> List[Process]:
    """Spawn many processes as one aggregate wave.

    ``gens`` yields ``(generator, name)`` pairs.  The processes take
    their first step in iteration order at the current simulated time,
    byte-identically to a loop of :func:`spawn` calls (the wave
    reserves the same contiguous block of sequence numbers the loop's
    per-process ``_call_soon`` entries would have consumed), but the
    kernel pays one scheduler entry for the whole broadcast — this is
    the ``start_pes`` launch storm fast path.
    """
    procs = [Process(sim, gen, name=name, _defer_start=True)
             for gen, name in gens]
    sim.schedule_wave(sim.now, _start_step, procs)
    return procs

"""Generator-coroutine processes for the DES kernel.

A simulated process is a Python generator that ``yield``\\ s
:class:`~repro.sim.engine.Waitable` objects (timeouts, events, other
processes, composites) — or, on the fast path, a plain ``float``
delay, which behaves exactly like ``yield sim.timeout(delay)`` (the
resumed value is ``None``) without constructing a Timeout waitable or
any callback plumbing.  The kernel resumes the generator with the
waitable's value (``gen.send(value)``), or throws the waitable's
exception into it.

Example::

    def worker(sim):
        yield 5.0                       # fast-path sleep 5 us
        ev = sim.event()
        ...
        value = yield ev                # wait for someone to succeed(ev)

    proc = spawn(sim, worker(sim), name="worker")
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .engine import SimEvent, SimulationError, Simulator, Waitable

__all__ = ["Process", "spawn", "ProcessFailure"]


class ProcessFailure(RuntimeError):
    """Wraps an exception that escaped a simulated process."""

    def __init__(self, process: "Process", cause: BaseException) -> None:
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class Process(Waitable):
    """A running generator; also a waitable so parents can join it.

    The process triggers with the generator's return value
    (``StopIteration.value``) on normal exit, or fails with the escaped
    exception.  An exception that nobody joins on is re-raised out of
    :meth:`Simulator.run` wrapped in :class:`ProcessFailure`.
    """

    __slots__ = ("gen", "name", "_joined")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "?") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen)!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name
        self._joined = False
        sim._call_soon(self._step_value, None)

    def add_callback(self, fn) -> None:  # noqa: D102 - see Waitable
        self._joined = True
        super().add_callback(fn)

    # -- stepping ------------------------------------------------------
    def _step_value(self, send_value: Any) -> None:
        """Resume the generator with a value (the hot continuation)."""
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self._trigger(value=stop.value)
            return
        except BaseException as exc:  # process died
            self._died(exc)
            return
        if target.__class__ is float and target > 0:
            # Inlined copy of the _wait_on sleep fast path: a positive
            # plain-float yield is the single hottest resume outcome.
            sim = self.sim
            sim._schedule_at(sim.now + target, self._step_value, None)
            return
        self._wait_on(target)

    def _step_throw(self, throw_exc: BaseException) -> None:
        """Resume the generator by throwing a waitable's failure into it."""
        try:
            target = self.gen.throw(throw_exc)
        except StopIteration as stop:
            self._trigger(value=stop.value)
            return
        except BaseException as exc:
            self._died(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target.__class__ is float:
            # Plain-delay sleep: no Timeout object, no callback hop —
            # the continuation is scheduled directly.  Deliberately
            # restricted to ``float`` (ints stay an error) so a stray
            # non-waitable yield is still caught.
            if target > 0:
                self.sim._schedule_at(self.sim.now + target, self._step_value, None)
            elif target == 0:
                self.sim._call_soon(self._step_value, None)
            else:
                self._step_throw(ValueError(f"negative timeout delay: {target}"))
            return
        if isinstance(target, Waitable):
            target.add_callback(self._on_target)
            return
        exc = SimulationError(
            f"process {self.name!r} yielded non-waitable {target!r}"
        )
        self.gen.close()
        if self._joined:
            self._trigger(exc=exc)
        else:
            raise ProcessFailure(self, exc) from exc

    def _died(self, exc: BaseException) -> None:
        if self._joined:
            self._trigger(exc=exc)
        else:
            # Nobody is listening: abort the whole simulation loudly.
            raise ProcessFailure(self, exc) from exc

    def _on_target(self, target: Waitable) -> None:
        # Resume synchronously: the trigger already deferred this
        # callback through the event queue once, so a second hop would
        # only add queue traffic (the golden-trace tests pin down that
        # observable ordering is unchanged).
        exc = target._exc
        if exc is None:
            self._step_value(target._value)
        else:
            self._step_throw(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: Generator, name: str = "?") -> Process:
    """Create and start a :class:`Process` at the current simulated time."""
    return Process(sim, gen, name=name)

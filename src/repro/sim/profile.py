"""Opt-in kernel profiling: event counters and per-module attribution.

The :class:`~repro.sim.engine.Simulator` carries a ``_prof`` hook that
is ``None`` by default — the hot scheduling paths pay exactly one
pointer check when profiling is off.  Attaching a
:class:`KernelProfile` makes both scheduling paths (heap and microtask
queue) report every scheduled callback::

    from repro.sim import Simulator
    from repro.sim.profile import KernelProfile

    sim = Simulator()
    prof = KernelProfile()
    prof.attach(sim)
    ...  # build the machine, run the simulation
    snap = prof.snapshot()
    print(snap["micro_ratio"], snap["by_module"])

The snapshot reports:

``events_scheduled``
    Total callbacks scheduled (heap + microtask queue).
``events_dispatched``
    Callbacks actually executed so far (scheduled minus still-pending).
``heap_scheduled`` / ``micro_scheduled`` / ``micro_ratio``
    How much traffic the microtask fast path absorbed; the DES
    optimisation work targets a high ratio (zero-delay continuations
    dominate event volume).
``by_module``
    ``{"module:qualname": count}`` of scheduled callbacks — where the
    event volume comes from, at function granularity.
``events_batched`` / ``waves_scheduled`` / ``batch_ratio`` / ``batch_sizes``
    Aggregate-wave traffic (see ``Simulator.schedule_wave``): how many
    member events the wave fast path absorbed, how many wave entries
    carried them, the batched fraction of all scheduled events, and a
    ``{wave_size: count}`` histogram.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Optional

from .engine import Simulator

__all__ = ["KernelProfile"]


def _callback_key(fn: Any) -> str:
    """``module:qualname`` for a scheduled callback.

    Handles plain functions, bound methods and callable instances
    (e.g. the kernel's ``_CallbackBatch``).
    """
    func = getattr(fn, "__func__", fn)
    qual = getattr(func, "__qualname__", None)
    if qual is None:
        cls = type(fn)
        return f"{cls.__module__}:{cls.__qualname__}"
    return f"{getattr(func, '__module__', '?')}:{qual}"


class KernelProfile:
    """Counts every callback the kernel schedules, split by path."""

    __slots__ = ("sim", "heap_scheduled", "micro_scheduled", "by_module",
                 "events_batched", "waves_scheduled", "batch_sizes",
                 "_detached_pending")

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self.heap_scheduled = 0
        self.micro_scheduled = 0
        self.by_module: Counter = Counter()
        self.events_batched = 0
        self.waves_scheduled = 0
        self.batch_sizes: Counter = Counter()
        self._detached_pending: Optional[int] = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, sim: Simulator) -> "KernelProfile":
        """Install on ``sim`` (replacing any previous profile)."""
        self.sim = sim
        sim._prof = self
        self._detached_pending = None
        return self

    def detach(self) -> None:
        if self.sim is not None:
            # Freeze the pending count so events_dispatched stays
            # truthful after we lose the simulator reference.
            self._detached_pending = self.sim.pending_events
            if self.sim._prof is self:
                self.sim._prof = None
        self.sim = None

    # -- kernel hook ---------------------------------------------------
    def _record(self, fn: Any, micro: bool) -> None:
        """Called by the Simulator for every scheduled callback."""
        if micro:
            self.micro_scheduled += 1
        else:
            self.heap_scheduled += 1
        self.by_module[_callback_key(fn)] += 1

    def _record_wave(self, fn: Any, n: int) -> None:
        """Called once per ``schedule_wave`` aggregate of ``n`` members.

        Members count as ``n`` scheduled (timed) events — totals stay
        comparable across scheduler generations — and additionally as
        batched traffic.
        """
        self.heap_scheduled += n
        self.events_batched += n
        self.waves_scheduled += 1
        self.batch_sizes[n] += 1
        self.by_module[_callback_key(fn)] += n

    # -- reporting -----------------------------------------------------
    @property
    def events_scheduled(self) -> int:
        return self.heap_scheduled + self.micro_scheduled

    @property
    def events_dispatched(self) -> int:
        """Scheduled minus still-pending.

        Valid while attached *and* after :meth:`detach` — detach
        freezes the pending count at the moment of detachment.
        """
        if self.sim is not None:
            pending = self.sim.pending_events
        else:
            pending = self._detached_pending or 0
        return self.events_scheduled - pending

    def snapshot(self, top: int = 15) -> Dict[str, Any]:
        """A JSON-friendly summary of the counters so far."""
        total = self.events_scheduled
        return {
            "events_scheduled": total,
            "events_dispatched": self.events_dispatched,
            "heap_scheduled": self.heap_scheduled,
            "micro_scheduled": self.micro_scheduled,
            "micro_ratio": (self.micro_scheduled / total) if total else 0.0,
            "events_batched": self.events_batched,
            "waves_scheduled": self.waves_scheduled,
            "batch_ratio": (self.events_batched / total) if total else 0.0,
            "batch_sizes": {str(k): v for k, v in
                            sorted(self.batch_sizes.items())},
            "by_module": dict(self.by_module.most_common(top)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<KernelProfile heap={self.heap_scheduled} "
            f"micro={self.micro_scheduled}>"
        )

"""Named, reproducible random streams.

Every source of randomness in the simulator (UD packet loss, compute
jitter, process-arrival skew, workload generation) draws from its own
named child stream of one master seed, so toggling one feature never
perturbs the random numbers another feature sees.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for independent, deterministic per-purpose generators."""

    def __init__(self, master_seed: int = 12345) -> None:
        if not (0 <= master_seed < 2**63):
            raise ValueError("master seed must be a non-negative 63-bit int")
        self.master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._streams[name] = gen
        return gen

    def substream(self, name: str, *key) -> np.random.Generator:
        """Stream for a structured key, e.g. ``substream("faults.ud", 0, 3)``.

        Each distinct ``(name, key)`` pair gets its own independent
        generator — the fault injector uses one per (rule, src, dst)
        so a fault schedule on one pair never perturbs the random
        numbers another pair draws.
        """
        if key:
            name = name + ":" + "/".join(str(k) for k in key)
        return self.stream(name)

    def fork(self, name: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry(self._derive(f"fork:{name}") % (2**63))

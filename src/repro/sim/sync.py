"""Synchronisation and message-passing primitives built on the kernel.

These are the building blocks the network and runtime layers use:

* :class:`Mailbox` -- unbounded FIFO channel with blocking receive.
* :class:`Semaphore` -- counting semaphore (fair FIFO wakeup).
* :class:`Barrier` -- reusable N-party barrier.
* :class:`Latch` -- count-down latch (one-shot).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import SimEvent, Simulator, Waitable

__all__ = ["Mailbox", "Semaphore", "Barrier", "Latch"]


class Mailbox:
    """Unbounded FIFO of messages with generator-friendly receive.

    ``recv()`` returns a waitable; yield it to obtain the next message.
    Messages are delivered in send order, receivers are woken in
    arrival order.
    """

    __slots__ = ("sim", "name", "_items", "_waiters")

    def __init__(self, sim: Simulator, name: str = "mbox") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._waiters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def send(self, item: Any) -> None:
        """Deposit a message; wakes one waiting receiver (if any)."""
        if self._waiters:
            self._waiters.popleft().succeed(item)
        else:
            self._items.append(item)

    def recv(self) -> Waitable:
        """Waitable for the next message (immediate if one is queued)."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._waiters.append(ev)
        return ev

    def try_recv(self) -> Optional[Any]:
        """Non-blocking receive; ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None


class Semaphore:
    """Counting semaphore with FIFO fairness."""

    __slots__ = ("sim", "_value", "_waiters")

    def __init__(self, sim: Simulator, value: int = 1) -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self._value = value
        self._waiters: Deque[SimEvent] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Waitable:
        ev = self.sim.event()
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1

    def held(self) -> Generator:
        """``yield from sem.held()`` wrappers are left to callers; this
        just acquires (use try/finally with :meth:`release`)."""
        yield self.acquire()


class Barrier:
    """Reusable barrier for a fixed party count.

    Each participant yields :meth:`wait`.  The waitable's value is the
    generation number (0, 1, 2, ...) that completed.
    """

    __slots__ = ("sim", "parties", "generation", "_arrived", "_event")

    def __init__(self, sim: Simulator, parties: int) -> None:
        if parties < 1:
            raise ValueError("barrier needs >= 1 party")
        self.sim = sim
        self.parties = parties
        self.generation = 0
        self._arrived = 0
        self._event: SimEvent = sim.event()

    def wait(self) -> Waitable:
        self._arrived += 1
        current = self._event
        if self._arrived == self.parties:
            gen = self.generation
            self.generation += 1
            self._arrived = 0
            self._event = self.sim.event()
            current.succeed(gen)
        return current


class Latch:
    """One-shot count-down latch; fires when count reaches zero."""

    __slots__ = ("sim", "_count", "_event")

    def __init__(self, sim: Simulator, count: int) -> None:
        if count < 0:
            raise ValueError("latch count must be >= 0")
        self.sim = sim
        self._count = count
        self._event = sim.event()
        if count == 0:
            self._event.succeed()

    @property
    def count(self) -> int:
        return self._count

    def count_down(self, n: int = 1) -> None:
        if self._count <= 0:
            raise RuntimeError("latch already open")
        if n < 1:
            raise ValueError("count_down amount must be >= 1")
        self._count -= n
        if self._count < 0:
            raise RuntimeError("latch count went negative")
        if self._count == 0:
            self._event.succeed()

    def wait(self) -> Waitable:
        return self._event

"""Tracing, counters and phase timers for simulation runs.

Three facilities, all cheap enough to leave enabled:

* :class:`Counters` -- monotonically increasing named counters
  (``qp_created``, ``ud_drops``, ...).
* :class:`PhaseTimer` -- accumulates simulated time per named phase for
  one actor; used for the ``start_pes`` breakdowns (Figures 1 and 5b).
* :class:`Tracer` -- optional event log (ring-buffer) for debugging and
  protocol tests.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from .engine import Simulator

__all__ = ["Counters", "PhaseTimer", "Tracer", "TraceRecord"]


class Counters:
    """Named integer counters with dict-like reads."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()


class PhaseTimer:
    """Accumulates simulated time spent per phase by one actor.

    Phases may interleave but not nest: ``begin`` implicitly ends the
    previous phase.  ``stop`` closes the current phase.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._acc: Dict[str, float] = defaultdict(float)
        self._current: Optional[str] = None
        self._started_at = 0.0
        # Optional span mirroring (repro.obs): armed by observe(), one
        # span per phase interval.  None costs a single predicate check.
        self._spans = None
        self._span_actor = ""
        self._span_parent: Optional[int] = None
        self.current_span = None

    def observe(self, spans, actor: str, parent=None) -> None:
        """Mirror each phase interval as a span on ``spans``.

        ``parent`` (a Span or span id) becomes the parent of every
        phase span; pass ``None`` to detach again.
        """
        self._spans = spans
        self._span_actor = actor
        self._span_parent = (
            parent if parent is None or parent.__class__ is int
            else parent.span_id
        )
        if spans is None:
            self.current_span = None

    def begin(self, phase: str) -> None:
        self.stop()
        self._current = phase
        self._started_at = self.sim.now
        if self._spans is not None:
            self.current_span = self._spans.start(
                phase, self._span_actor, parent=self._span_parent
            )

    def stop(self) -> None:
        if self._current is not None:
            self._acc[self._current] += self.sim.now - self._started_at
            self._current = None
            if self.current_span is not None:
                self._spans.finish(self.current_span)
                self.current_span = None

    def total(self, phase: str) -> float:
        extra = 0.0
        if self._current == phase:
            extra = self.sim.now - self._started_at
        return self._acc.get(phase, 0.0) + extra

    def breakdown(self) -> Dict[str, float]:
        self.stop()
        return dict(self._acc)


@dataclass(frozen=True)
class TraceRecord:
    """One traced event: simulated time, actor, kind, and payload."""

    time: float
    actor: str
    kind: str
    detail: Any = None


class Tracer:
    """Bounded in-memory event log.

    Disabled by default (zero overhead beyond a truthiness check);
    enable for protocol tests or debugging.

    At :attr:`capacity` the ring keeps the *newest* records, but not
    silently: every evicted record is counted in :attr:`dropped`, and
    :meth:`formatted` prefixes a ``# dropped ...`` header so a
    truncated golden diff fails loudly instead of comparing a
    quietly-shortened log.
    """

    def __init__(self, sim: Simulator, capacity: int = 100_000, enabled: bool = False):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.sim = sim
        self.enabled = enabled
        self.capacity = capacity
        #: Records evicted (oldest-first) since construction / clear().
        self.dropped = 0
        self._records: Deque[TraceRecord] = deque()

    def log(self, actor: str, kind: str, detail: Any = None) -> None:
        if self.enabled:
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.dropped += 1
            self._records.append(TraceRecord(self.sim.now, actor, kind, detail))

    @property
    def truncated(self) -> bool:
        """True if any record has been evicted from the ring."""
        return self.dropped > 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self._records if r.kind == kind]

    def formatted(self) -> List[str]:
        """Canonical one-line-per-record form, ``time|actor|kind|detail``.

        ``repr`` is used for time and detail so the output is exact
        (byte-for-byte comparable); the golden-trace determinism tests
        diff these lines against a committed fixture.

        If the ring evicted records, the first line is a ``# dropped N
        records (capacity C)`` header — truncation shows up as a diff,
        never as a silently shorter log.
        """
        lines = [
            f"{r.time!r}|{r.actor}|{r.kind}|{r.detail!r}"
            for r in self._records
        ]
        if self.dropped:
            lines.insert(
                0,
                f"# dropped {self.dropped} records (capacity {self.capacity})",
            )
        return lines

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

"""UPC-flavoured PGAS layer over the same conduit (paper future work)."""

from .shared_array import SharedArray, upc_all_reduce, upc_barrier

__all__ = ["SharedArray", "upc_barrier", "upc_all_reduce"]

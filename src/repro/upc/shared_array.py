"""UPC-style global shared arrays over the OpenSHMEM runtime.

The paper's conclusion: *"our designs are applicable to other PGAS
languages such as UPC or CAF"* and (Section IV-C) the conduit's
exchange-payload hook is deliberately language-agnostic.  This module
demonstrates exactly that: a UPC-flavoured API — block-cyclic global
arrays with per-element affinity, ``upc_memget``/``upc_memput``,
``upc_barrier``, ``upc_all_reduce`` — implemented on the same
conduit/segment machinery, inheriting on-demand connections and
piggybacked keys with zero changes to the lower layers.

A ``shared [B] double A[N]`` declaration becomes::

    A = SharedArray(pe, total=N, dtype=np.float64, block=B)
    local = A.my_view()                  # elements with my affinity
    value = yield from A.get(i)          # remote read  (A[i])
    yield from A.put(i, 3.5)             # remote write (A[i] = 3.5)
"""

from __future__ import annotations

from typing import Generator, List, Tuple

import numpy as np

from ..errors import ShmemError

__all__ = ["SharedArray", "upc_barrier", "upc_all_reduce"]


class SharedArray:
    """A block-cyclic distributed array (UPC layout rules).

    Element ``i`` has affinity to thread ``(i // block) % THREADS``;
    each thread stores its blocks contiguously in its symmetric heap
    (the standard UPC shared-pointer arithmetic).
    """

    def __init__(self, pe, total: int, dtype=np.float64, block: int = 1
                 ) -> None:
        if total <= 0:
            raise ShmemError("shared array size must be positive")
        if block <= 0:
            raise ShmemError("block size must be positive")
        self.pe = pe
        self.total = total
        self.dtype = np.dtype(dtype)
        self.block = block
        self.threads = pe.npes
        self.mythread = pe.mype
        # Number of elements with affinity to each thread.
        nblocks = (total + block - 1) // block
        self._local_elems = [0] * self.threads
        for b in range(nblocks):
            owner = b % self.threads
            lo = b * block
            hi = min(total, lo + block)
            self._local_elems[owner] += hi - lo
        # Symmetric allocation: every thread allocates the *maximum*
        # local size so addresses stay symmetric.
        max_local = max(self._local_elems) or 1
        self.addr = pe.shmalloc(max_local * self.dtype.itemsize)

    # ------------------------------------------------------------------
    def owner_and_offset(self, index: int) -> Tuple[int, int]:
        """UPC shared-pointer arithmetic: (thread, local element)."""
        if not (0 <= index < self.total):
            raise ShmemError(
                f"index {index} out of range for shared array of "
                f"{self.total}"
            )
        b, phase = divmod(index, self.block)
        owner = b % self.threads
        local_block = b // self.threads
        return owner, local_block * self.block + phase

    def has_affinity(self, index: int) -> bool:
        return self.owner_and_offset(index)[0] == self.mythread

    def my_view(self) -> np.ndarray:
        """Typed view of the elements with this thread's affinity."""
        count = self._local_elems[self.mythread]
        return self.pe.view(self.addr, self.dtype, max(count, 1))[:count]

    def my_indices(self) -> List[int]:
        """Global indices with this thread's affinity, in storage order."""
        out = []
        b = self.mythread
        while b * self.block < self.total:
            lo = b * self.block
            hi = min(self.total, lo + self.block)
            out.extend(range(lo, hi))
            b += self.threads
        return out

    # ------------------------------------------------------------------
    def get(self, index: int) -> Generator:
        """Read A[index] (local affinity is a plain load)."""
        owner, off = self.owner_and_offset(index)
        addr = self.addr + off * self.dtype.itemsize
        if owner == self.mythread:
            return self.pe.view(addr, self.dtype, 1)[0].item()
        data = yield from self.pe.get(owner, addr, self.dtype.itemsize)
        return np.frombuffer(data, dtype=self.dtype)[0].item()

    def put(self, index: int, value) -> Generator:
        """Write A[index] = value."""
        owner, off = self.owner_and_offset(index)
        addr = self.addr + off * self.dtype.itemsize
        payload = self.dtype.type(value).tobytes()
        if owner == self.mythread:
            self.pe.heap.write(addr, payload)
            return
        yield from self.pe.put(owner, addr, payload)

    def memget(self, start: int, count: int) -> Generator:
        """upc_memget of a contiguous global range (crosses affinities)."""
        out = np.empty(count, dtype=self.dtype)
        i = 0
        while i < count:
            owner, off = self.owner_and_offset(start + i)
            # Contiguous run within one block on one owner.
            run = min(count - i, self.block - (start + i) % self.block)
            addr = self.addr + off * self.dtype.itemsize
            if owner == self.mythread:
                out[i:i + run] = self.pe.view(addr, self.dtype, run)
            else:
                data = yield from self.pe.get(
                    owner, addr, run * self.dtype.itemsize
                )
                out[i:i + run] = np.frombuffer(data, dtype=self.dtype)
            i += run
        return out

    def memput(self, start: int, values: np.ndarray) -> Generator:
        """upc_memput of a contiguous global range."""
        values = np.asarray(values, dtype=self.dtype)
        i = 0
        while i < len(values):
            owner, off = self.owner_and_offset(start + i)
            run = min(
                len(values) - i, self.block - (start + i) % self.block
            )
            addr = self.addr + off * self.dtype.itemsize
            chunk = values[i:i + run]
            if owner == self.mythread:
                self.pe.view(addr, self.dtype, run)[:] = chunk
            else:
                yield from self.pe.put(owner, addr, chunk.tobytes())
            i += run


def upc_barrier(pe) -> Generator:
    """upc_barrier (maps to shmem_barrier_all on the unified runtime)."""
    yield from pe.barrier_all()


def upc_all_reduce(pe, value: float, op: str = "sum",
                   dtype=np.float64) -> Generator:
    """upc_all_reduceD: every thread contributes; all get the result."""
    itemsize = np.dtype(dtype).itemsize
    src = pe.shmalloc(itemsize)
    dst = pe.shmalloc(itemsize)
    pe.view(src, dtype, 1)[0] = value
    yield from pe.reduce(src, dst, 1, dtype, op)
    result = pe.view(dst, dtype, 1)[0].item()
    pe.shfree(src)
    pe.shfree(dst)
    return result

"""Application-level integration tests (real results, both modes)."""

import numpy as np
import pytest

from repro.apps import (
    Graph500Hybrid,
    Heat2D,
    HelloWorld,
    NasBT,
    NasEP,
    NasMG,
    NasSP,
    kronecker_edges,
    process_grid,
    solve_heat_serial,
)
from repro.apps.nas import grid_2d, grid_3d
from repro.core import Job, RuntimeConfig


def run_app(app, npes=16, config=None, backing=512):
    config = config or RuntimeConfig.proposed(heap_backing_kb=backing)
    return Job(npes=npes, config=config).run(app)


class TestHello:
    def test_every_pe_reports(self):
        result = run_app(HelloWorld(), npes=8)
        assert result.app_results[3] == "Hello from PE 3 of 8"
        assert len(result.app_results) == 8


class TestGrids:
    def test_process_grid_factorizations(self):
        assert process_grid(16) == (4, 4)
        assert process_grid(8) == (2, 4)
        assert process_grid(7) == (1, 7)

    def test_grid_3d(self):
        for n in (8, 16, 64, 12):
            px, py, pz = grid_3d(n)
            assert px * py * pz == n

    def test_grid_2d_matches_process_grid(self):
        for n in (4, 6, 36):
            assert grid_2d(n) == process_grid(n)


class TestHeat2D:
    @pytest.mark.parametrize("npes,n,iters", [(4, 8, 3), (16, 32, 10)])
    def test_matches_serial_jacobi(self, npes, n, iters):
        result = run_app(Heat2D(n=n, iters=iters, check_every=0), npes=npes)
        ref = solve_heat_serial(n, iters)
        for res in result.app_results:
            br, bc = res["block_shape"]
            mr, mc = res["coords"]
            expected = ref[1 + mr * br:1 + (mr + 1) * br,
                           1 + mc * bc:1 + (mc + 1) * bc]
            assert np.allclose(res["block"], expected)

    def test_same_result_in_both_connection_modes(self):
        app = Heat2D(n=16, iters=5, check_every=0)
        r1 = run_app(app, npes=4,
                     config=RuntimeConfig.proposed(heap_backing_kb=512))
        r2 = run_app(Heat2D(n=16, iters=5, check_every=0), npes=4,
                     config=RuntimeConfig.current(heap_backing_kb=512))
        for a, b in zip(r1.app_results, r2.app_results):
            assert np.allclose(a["block"], b["block"])

    def test_small_peer_footprint(self):
        result = run_app(Heat2D(n=32, iters=6, check_every=0), npes=16)
        # 4 stencil neighbours + <=3 barrier-tree peers.
        assert result.resources.mean_active_peers <= 7.5

    def test_grid_mismatch_raises(self):
        with pytest.raises(Exception):
            run_app(Heat2D(n=7, iters=2), npes=4)


class TestNasEP:
    def test_reduction_is_consistent_everywhere(self):
        result = run_app(NasEP("S", real_pairs=400), npes=8)
        first = result.app_results[0]
        for res in result.app_results[1:]:
            assert res["sx"] == pytest.approx(first["sx"])
            assert res["counts"] == first["counts"]

    def test_counts_reflect_all_pes(self):
        r8 = run_app(NasEP("S", real_pairs=300), npes=8)
        r2 = run_app(NasEP("S", real_pairs=300), npes=2)
        assert sum(r8.app_results[0]["counts"]) > sum(
            r2.app_results[0]["counts"]
        ) * 2  # 4x the PEs -> more accepted samples in the global tally

    def test_lowest_peer_count_of_nas_suite(self):
        rep = run_app(NasEP("S", real_pairs=100), npes=16)
        rbt = run_app(NasBT("S", iters=2), npes=16)
        assert rep.resources.mean_active_peers < rbt.resources.mean_active_peers


class TestNasKernels:
    @pytest.mark.parametrize("cls", [NasBT, NasSP])
    def test_adi_runs_and_reduces(self, cls):
        result = run_app(cls("S", iters=2), npes=16)
        checks = {res["checksum"] for res in result.app_results}
        assert len(checks) == 1  # global reduction agreed everywhere

    def test_mg_global_checksum_agrees(self):
        result = run_app(NasMG("S", iters=2, levels=3), npes=16)
        totals = {res["checksum_global"] for res in result.app_results}
        assert len(totals) == 1

    def test_mg_touches_more_peers_than_heat(self):
        rmg = run_app(NasMG("S", iters=2, levels=3), npes=64)
        rheat = run_app(Heat2D(n=64, iters=4, check_every=0), npes=64)
        assert (
            rmg.resources.mean_active_peers
            > rheat.resources.mean_active_peers
        )


class TestKronecker:
    def test_edge_count_and_range(self):
        edges = kronecker_edges(scale=8, edgefactor=4)
        assert edges.shape == (4 * 256, 2)
        assert edges.min() >= 0 and edges.max() < 256

    def test_deterministic(self):
        a = kronecker_edges(6, 4, seed=1)
        b = kronecker_edges(6, 4, seed=1)
        assert (a == b).all()
        c = kronecker_edges(6, 4, seed=2)
        assert not (a == c).all()

    def test_skewed_degrees(self):
        edges = kronecker_edges(10, 16)
        deg = np.bincount(edges.ravel())
        # R-MAT graphs are heavy-tailed: max degree >> mean degree.
        assert deg.max() > 8 * deg[deg > 0].mean()


class TestGraph500:
    def test_bfs_validates_with_zero_errors(self):
        result = run_app(
            Graph500Hybrid(scale=7, edgefactor=8, nroots=2), npes=8
        )
        for res in result.app_results:
            for bfs in res["bfs"]:
                assert bfs["errors"] == 0
                assert bfs["visited"] > 1

    def test_visited_counts_agree_across_pes(self):
        result = run_app(
            Graph500Hybrid(scale=6, edgefactor=8, nroots=1), npes=4
        )
        counts = {res["bfs"][0]["visited"] for res in result.app_results}
        assert len(counts) == 1

    def test_same_bfs_result_both_modes(self):
        app = lambda: Graph500Hybrid(scale=6, edgefactor=8, nroots=1)
        r1 = run_app(app(), npes=4,
                     config=RuntimeConfig.proposed(heap_backing_kb=512))
        r2 = run_app(app(), npes=4,
                     config=RuntimeConfig.current(heap_backing_kb=512))
        assert (
            r1.app_results[0]["bfs"][0]["visited"]
            == r2.app_results[0]["bfs"][0]["visited"]
        )

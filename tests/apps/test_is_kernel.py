"""NAS IS (integer sort) — the dense-communication counter-example."""

import numpy as np
import pytest

from repro.apps import Heat2D, NasIS
from repro.core import Job, RuntimeConfig


def run_is(npes=8, iters=2, nas_class="S", config=None):
    config = config or RuntimeConfig.proposed(heap_backing_kb=1024)
    return Job(npes=npes, config=config).run(NasIS(nas_class, iters=iters))


class TestSortCorrectness:
    @pytest.mark.parametrize("npes", [2, 4, 8])
    def test_globally_sorted(self, npes):
        result = run_is(npes=npes)
        for res in result.app_results:
            assert res["locally_sorted"]
            assert res["boundary_ordered"]

    def test_no_keys_lost(self):
        npes = 8
        result = run_is(npes=npes)
        total = result.app_results[0]["total_keys"]
        assert total == npes * 1024
        # Key sum is conserved: recompute the expected sum from the
        # same generators the application used.
        expected = 0
        for rank in range(npes):
            rng = np.random.default_rng(1990 + rank)
            expected += int(
                rng.integers(0, 1 << 16, size=1024, dtype=np.int64).sum()
            )
        assert result.app_results[0]["total_sum"] == expected

    def test_same_result_both_modes(self):
        a = run_is(config=RuntimeConfig.proposed(heap_backing_kb=1024))
        b = run_is(config=RuntimeConfig.current(heap_backing_kb=1024))
        assert (
            a.app_results[0]["total_sum"] == b.app_results[0]["total_sum"]
        )


class TestDensity:
    def test_is_touches_nearly_all_peers(self):
        npes = 16
        result = run_is(npes=npes)
        # The alltoall pattern needs (almost) every peer — the dense
        # end of the application spectrum.
        assert result.resources.mean_active_peers > 0.8 * (npes - 1)

    def test_is_denser_than_heat(self):
        npes = 16
        is_peers = run_is(npes=npes).resources.mean_active_peers
        heat = Job(
            npes=npes, config=RuntimeConfig.proposed(heap_backing_kb=1024)
        ).run(Heat2D(n=32, iters=4, check_every=0))
        assert is_peers > 2 * heat.resources.mean_active_peers

"""Hybrid MPI+OpenSHMEM sample sort tests."""

import numpy as np
import pytest

from repro.apps import HybridSampleSort
from repro.core import Job, RuntimeConfig


def run_sort(npes=8, records=1024, config=None, oversample=8):
    config = config or RuntimeConfig.proposed(heap_backing_kb=1024)
    return Job(npes=npes, config=config).run(
        HybridSampleSort(records_per_pe=records, oversample=oversample)
    )


class TestSampleSort:
    @pytest.mark.parametrize("npes", [2, 4, 8])
    def test_sorted_and_conserved(self, npes):
        result = run_sort(npes=npes)
        res0 = result.app_results[0]
        assert res0["total"] == npes * 1024
        for res in result.app_results:
            assert res["locally_sorted"]
            assert res["boundary_ordered"]

    def test_keysum_matches_generators(self):
        npes = 4
        result = run_sort(npes=npes)
        expected = sum(
            int(
                np.random.default_rng(424242 + r)
                .integers(0, 1 << 40, size=1024, dtype=np.int64)
                .sum()
            )
            for r in range(npes)
        )
        assert result.app_results[0]["keysum"] == expected

    def test_oversampling_improves_balance(self):
        lo = run_sort(npes=8, oversample=2)
        hi = run_sort(npes=8, oversample=32)

        def worst(result):
            return max(res["imbalance"] for res in result.app_results)

        assert worst(hi) <= worst(lo) * 1.1  # usually strictly better

    def test_hybrid_modes_agree(self):
        a = run_sort(config=RuntimeConfig.proposed(heap_backing_kb=1024))
        b = run_sort(config=RuntimeConfig.current(heap_backing_kb=1024))
        assert a.app_results[0]["keysum"] == b.app_results[0]["keysum"]
        assert a.app_results[0]["total"] == b.app_results[0]["total"]

    def test_unified_runtime_shares_connections(self):
        """MPI sampling and SHMEM routing reuse the same QPs."""
        result = run_sort(npes=8)
        # Each established connection serves both models: there must be
        # no more connections than distinct touched peers.
        assert (
            result.resources.mean_connections
            <= result.resources.mean_active_peers + 0.01
        )

"""Unit tests for the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    fmt_ratio,
    fmt_us,
    linear_fit,
    project,
    render_table,
    rows_to_csv,
)


class TestFormatting:
    def test_fmt_us_scales(self):
        assert fmt_us(2.5) == "2.50us"
        assert fmt_us(2500.0) == "2.50ms"
        assert fmt_us(2_500_000.0) == "2.50s"

    def test_fmt_ratio(self):
        assert fmt_ratio(3.333) == "3.33x"


class TestRenderTable:
    def test_contains_title_columns_rows(self):
        text = render_table("T", ["a", "bb"], [[1, 2], [33, 4]], note="n")
        assert "=== T ===" in text
        assert "a" in text and "bb" in text
        assert "33" in text
        assert "note: n" in text

    def test_empty_rows_ok(self):
        text = render_table("empty", ["x"], [])
        assert "empty" in text

    def test_csv(self):
        csv = rows_to_csv(["a", "b"], [[1, "x"], [2, "y"]])
        assert csv == "a,b\n1,x\n2,y\n"


class TestRegression:
    def test_exact_line_recovered(self):
        slope, intercept = linear_fit([1, 2, 3], [5, 7, 9])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(3.0)

    def test_projection(self):
        assert project([64, 256, 1024], [10, 12, 20], 4096) > 20

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [3])


class TestExperimentResult:
    def test_render_and_csv(self):
        r = ExperimentResult(
            experiment="Figure X", title="t", columns=["c1", "c2"],
            rows=[[1, 2]], note="hello",
        )
        assert "Figure X" in r.render()
        assert r.csv().startswith("c1,c2")

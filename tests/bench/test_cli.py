"""The `python -m repro.bench` command-line interface."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1", "fig5a", "fig9", "ablation-pmi"):
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_unknown_experiment():
    assert main(["nope"]) == 2


def test_runs_small_experiment(capsys):
    assert main(["fig6c"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6(c)" in out
    assert "fadd" in out


def test_every_registered_name_is_callable():
    # The registry must stay in sync with the experiments package.
    from repro.bench import experiments

    assert len(EXPERIMENTS) == 18
    for name, fn in EXPERIMENTS.items():
        assert callable(fn), name

"""Unit tests for the OSU-style microbenchmark applications."""

import pytest

from repro.bench import (
    AtomicLatency,
    BarrierLatency,
    CollectiveLatency,
    GetLatency,
    PutLatency,
    run_job,
    PROPOSED,
)


def test_put_latency_monotone_in_size():
    result = run_job(
        PutLatency(sizes=[8, 4096, 262144], iterations=20),
        npes=2, config=PROPOSED, testbed="A", ppn=1, heap_backing_kb=512,
    )
    lat = result.app_results[0]
    assert lat[8] < lat[4096] < lat[262144]
    # Large messages are bandwidth-bound: 256KB at ~4 GB/s is ~65us wire.
    assert lat[262144] > 60.0


def test_get_costs_more_than_put_small():
    put = run_job(
        PutLatency(sizes=[8], iterations=20), npes=2, config=PROPOSED,
        testbed="A", ppn=1,
    ).app_results[0][8]
    get = run_job(
        GetLatency(sizes=[8], iterations=20), npes=2, config=PROPOSED,
        testbed="A", ppn=1,
    ).app_results[0][8]
    # A read is a full round trip with the payload on the return leg;
    # in this model it is at least as expensive as a write.
    assert get >= put * 0.95


def test_atomics_report_all_six_ops():
    result = run_job(
        AtomicLatency(iterations=10), npes=2, config=PROPOSED,
        testbed="A", ppn=1,
    )
    lat = result.app_results[0]
    assert set(lat) == {"fadd", "finc", "add", "inc", "cswap", "swap"}
    assert all(v > 0 for v in lat.values())


def test_collective_kind_validated():
    with pytest.raises(ValueError):
        CollectiveLatency("gather")


def test_collect_scales_with_size():
    result = run_job(
        CollectiveLatency("collect", sizes=[64, 4096], iterations=5),
        npes=8, config=PROPOSED, testbed="A", heap_backing_kb=512,
    )
    lat = result.app_results[0]
    assert lat[4096] > lat[64]


def test_barrier_latency_positive_and_small():
    result = run_job(
        BarrierLatency(iterations=20), npes=16, config=PROPOSED, testbed="A",
    )
    lat = result.app_results[0]
    assert 0.0 < lat < 1000.0

"""CAF-layer tests: coarrays, SYNC ALL / SYNC IMAGES, CO_SUM."""

import numpy as np
import pytest

from repro.caf import Coarray, caf_co_sum, caf_sync_all, caf_sync_images
from repro.errors import ShmemError

from ..shmem.conftest import run_shmem


class TestCoarrayBasics:
    def test_local_image_view_is_writable(self):
        def prog(pe):
            A = Coarray(pe, shape=(4, 4))
            A.local[:] = pe.mype
            yield from caf_sync_all(pe)
            return float(A.local.sum())

        result = run_shmem(prog, npes=3)
        assert result.app_results == [0.0, 16.0, 32.0]

    def test_remote_scalar_get_put(self):
        def prog(pe):
            A = Coarray(pe, shape=(8,))
            A.local[:] = np.arange(8) + pe.mype * 10
            yield from caf_sync_all(pe)
            right = (pe.mype + 1) % pe.npes
            x = yield from A.get((3,), right)       # A(4)[right]
            yield from A.put((0,), right, 99.0)     # A(1)[right] = 99
            yield from caf_sync_all(pe)
            return x, float(A.local[0])

        result = run_shmem(prog, npes=4)
        for rank, (x, first) in enumerate(result.app_results):
            assert x == 3 + ((rank + 1) % 4) * 10
            assert first == 99.0

    def test_slab_transfer(self):
        def prog(pe):
            A = Coarray(pe, shape=(2, 6))
            A.local[:] = np.arange(12).reshape(2, 6) + pe.mype * 100
            yield from caf_sync_all(pe)
            left = (pe.mype - 1) % pe.npes
            slab = yield from A.get_slab((1, 0), 6, left)
            yield from A.put_slab((0, 0), left, np.full(3, -1.0))
            yield from caf_sync_all(pe)
            return slab, A.local[0, :3].copy()

        result = run_shmem(prog, npes=3)
        for rank, (slab, head) in enumerate(result.app_results):
            src = (rank - 1) % 3
            assert np.allclose(slab, np.arange(6, 12) + src * 100)
            assert np.allclose(head, [-1.0, -1.0, -1.0])

    def test_bounds_checking(self):
        def prog(pe):
            A = Coarray(pe, shape=(4,))
            with pytest.raises(ShmemError):
                A._offset((4,))
            with pytest.raises(ShmemError):
                A._offset((0, 0))
            with pytest.raises(ShmemError):
                Coarray(pe, shape=())
            yield from caf_sync_all(pe)
            return True

        assert all(run_shmem(prog, npes=2).app_results)


class TestSyncImages:
    def test_pairwise_sync_orders_data(self):
        """Producer/consumer with SYNC IMAGES: the consumer must see the
        producer's value, without any global barrier."""

        def prog(pe):
            A = Coarray(pe, shape=(1,))
            yield from caf_sync_all(pe)
            if pe.mype == 0:
                yield pe.sim.timeout(400.0)  # produce late
                yield from A.put((0,), 1, 42.0)
                yield from caf_sync_images(pe, [1])
                return None
            if pe.mype == 1:
                yield from caf_sync_images(pe, [0])
                return float(A.local[0])
            return None  # images 2+ are not involved and never block

        result = run_shmem(prog, npes=4)
        assert result.app_results[1] == 42.0

    def test_repeated_sync_images(self):
        def prog(pe):
            partner = pe.mype ^ 1
            values = []
            A = Coarray(pe, shape=(1,))
            yield from caf_sync_all(pe)
            for round_no in range(3):
                yield from A.put((0,), partner, float(10 * pe.mype + round_no))
                yield from caf_sync_images(pe, [partner])
                values.append(float(A.local[0]))
                yield from caf_sync_images(pe, [partner])
            return values

        result = run_shmem(prog, npes=2)
        assert result.app_results[0] == [10.0, 11.0, 12.0]
        assert result.app_results[1] == [0.0, 1.0, 2.0]


class TestCoSum:
    def test_co_sum(self):
        def prog(pe):
            yield from caf_sync_all(pe)
            total = yield from caf_co_sum(pe, float(pe.mype))
            return total

        result = run_shmem(prog, npes=5)
        assert all(v == 10.0 for v in result.app_results)


class TestCafHeatRing:
    def test_caf_style_ring_relaxation(self):
        """A tiny CAF idiom end-to-end: each image owns a chunk of a
        ring and reads halo values from neighbour images."""

        def prog(pe):
            n_local = 4
            A = Coarray(pe, shape=(n_local,))
            A.local[:] = pe.mype * n_local + np.arange(n_local)
            yield from caf_sync_all(pe)
            left = (pe.mype - 1) % pe.npes
            right = (pe.mype + 1) % pe.npes
            lval = yield from A.get((n_local - 1,), left)
            rval = yield from A.get((0,), right)
            yield from caf_sync_all(pe)
            new = A.local.copy()
            new[0] = (lval + A.local[1]) / 2
            new[-1] = (A.local[-2] + rval) / 2
            return new

        result = run_shmem(prog, npes=4)
        total = 4 * 4
        for rank, new in enumerate(result.app_results):
            base = rank * 4
            expected_first = (((base - 1) % total) + base + 1) / 2
            expected_last = ((base + 2) + ((base + 4) % total)) / 2
            assert new[0] == expected_first
            assert new[-1] == expected_last

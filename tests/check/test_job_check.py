"""Job-level sanitizer wiring: report shape, and byte-identity.

The headline guarantee of ``Job(check=...)``: auditing is observation,
never perturbation.  A sanitized run reaches the same simulated wall
time with the same counters as an unsanitized one — on the current
(static) and proposed (on-demand) configurations, under fault
injection, and on the 128-PE golden startup trace.
"""

import os

import pytest

from repro.apps import Heat2D, HelloWorld
from repro.check import CheckPlan
from repro.cluster import cluster_a, cluster_b
from repro.core import Job, RuntimeConfig
from repro.exec import JobSpec, execute
from repro.faults import FaultPlan, UDFault

from ..sim.test_golden_trace import FIXTURE


def _run(config, check, npes=16, app=None):
    job = Job(npes=npes, config=config, cluster=cluster_a(npes, ppn=8),
              check=check)
    return job.run(app if app is not None else HelloWorld())


class TestReportShape:
    def test_checked_job_attaches_a_full_report(self):
        res = _run(RuntimeConfig.proposed(), check=True)
        rep = res.check
        assert rep is not None
        assert set(rep) == {"plan", "strict", "violations", "heap_leaks",
                            "stats"}
        assert rep["strict"] is True
        assert rep["violations"] == []
        assert rep["heap_leaks"] == []
        stats = rep["stats"]
        assert stats["wr_posted"] == stats["wr_completed"] > 0
        assert stats["wr_errored"] == 0
        assert stats["connect_requests_seen"] > 0

    def test_unchecked_job_has_no_report(self):
        res = _run(RuntimeConfig.proposed(), check=None)
        assert res.check is None

    def test_empty_plan_never_installs(self):
        plan = CheckPlan(name="nothing", ib=False, memory=False,
                         pmi=False, conduit=False, lifecycle=False)
        job = Job(npes=4, config=RuntimeConfig.proposed(),
                  cluster=cluster_a(4, ppn=4), check=plan)
        assert job.sanitizer is None  # zero hooks armed, zero cost
        assert job.run(HelloWorld()).check is None


class TestByteIdentity:
    @pytest.mark.parametrize("config", [
        RuntimeConfig.current(), RuntimeConfig.proposed(),
    ], ids=lambda c: c.label)
    def test_sanitized_run_is_byte_identical(self, config):
        base = _run(config, check=None, app=Heat2D(n=32, iters=4))
        checked = _run(config, check=True, app=Heat2D(n=32, iters=4))
        assert checked.wall_time_us == base.wall_time_us
        assert checked.app_done_us == base.app_done_us
        assert checked.counters == base.counters
        # app results may be numpy arrays; repr equality is exact enough
        assert repr(checked.app_results) == repr(base.app_results)
        assert checked.check["violations"] == []

    def test_faulted_job_is_byte_identical_and_clean(self):
        plan = FaultPlan(
            name="chaos-lite",
            ud=(
                UDFault("drop", prob=0.20),
                UDFault("duplicate", prob=0.10, delay_us=10.0,
                        jitter_us=200.0),
            ),
        )

        def spec(check):
            return JobSpec(
                app=HelloWorld(), npes=16, config=RuntimeConfig.proposed(),
                testbed="A", ppn=8, faults=plan, check=check,
            )

        base = execute(spec(check=None))
        checked = execute(spec(check=CheckPlan(name="chaos", strict=False)))
        assert checked.wall_time_us == base.wall_time_us
        assert checked.counters == base.counters
        assert checked.counters["faults.ud_dropped"] > 0
        assert checked.check["violations"] == []


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_GOLDEN") == "1",
    reason="golden trace skipped by env",
)
def test_golden_trace_unchanged_under_sanitizer():
    """The full 128-PE on-demand startup, sanitized and strict, produces
    the exact pre-sanitizer golden trace — every message, every
    timestamp — and a clean audit."""
    job = Job(
        npes=128,
        config=RuntimeConfig.proposed(),
        cluster=cluster_b(128, ppn=16),
        trace=True,
        check=CheckPlan(name="golden"),
    )
    res = job.run(HelloWorld())
    got = job.tracer.formatted()
    want = FIXTURE.read_text().splitlines()
    for i, (g, w) in enumerate(zip(got, want)):
        assert g == w, (
            f"sanitizer perturbed the trace at line {i + 1}:\n"
            f"  got:  {g}\n  want: {w}"
        )
    assert len(got) == len(want)
    assert res.check["violations"] == []
    assert res.check["stats"]["connect_requests_seen"] > 0

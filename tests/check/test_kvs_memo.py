"""KVS range-memo hygiene: dropped on commit, coherent on hit, free.

The seed's leak: ``get_range``'s single-slot memo survived ``commit``.
The key is epoch-stamped so the stale entry could never be *served*,
but it pinned one dead directory (the job's largest host object) per
epoch.  The fix drops it at commit time; the pmi auditor checks both
the hygiene (memo gone after commit) and the coherence of every hit.
"""

import pytest

from repro.check import CheckPlan, Sanitizer
from repro.cluster import CostModel
from repro.errors import InvariantViolation
from repro.pmi.kvs import KeyValueStore
from repro.sim import Simulator, spawn

from ..gasnet.conftest import build_conduit_rig


class TestMemoDropOnCommit:
    def test_commit_clears_the_memo(self):
        kvs = KeyValueStore()
        kvs.commit({f"ep{i}": i * 11 for i in range(4)})
        first = kvs.get_range("ep", 4)
        assert kvs.get_range("ep", 4) is first   # memo hit
        kvs.commit({"late0": 99})
        # Pre-fix: the (dead, epoch-1-keyed) memo survived here.
        assert kvs._range_key is None
        assert kvs._range_values is None

    def test_post_commit_fetch_rebuilds_fresh(self):
        kvs = KeyValueStore()
        kvs.commit({f"ep{i}": i for i in range(3)})
        first = kvs.get_range("ep", 3)
        kvs.commit({"other0": 1})
        second = kvs.get_range("ep", 3)
        assert second == first
        assert second is not first  # rebuilt, not the stale slot

    def test_epoch_bumps_by_one_per_commit(self):
        kvs = KeyValueStore()
        assert kvs.epoch == 0
        kvs.commit({"a": 1})
        kvs.commit({"b": 2})
        assert kvs.epoch == 2


class TestPmiAuditor:
    def _sanitized_kvs(self, strict=True):
        kvs = KeyValueStore()
        san = Sanitizer(CheckPlan(name="pmi", strict=strict), Simulator())
        kvs.check = san
        return kvs, san

    def test_clean_commit_and_memo_hit_pass(self):
        kvs, san = self._sanitized_kvs()
        kvs.commit({f"ep{i}": i for i in range(4)})
        kvs.get_range("ep", 4)
        kvs.get_range("ep", 4)  # hit: verified against a reference fetch
        kvs.commit({"z0": 0})
        assert san.violations == []
        assert san.report()["stats"]["kvs_commits"] == 2

    def test_corrupted_memo_hit_raises(self):
        kvs, san = self._sanitized_kvs()
        kvs.commit({f"ep{i}": i for i in range(4)})
        kvs.get_range("ep", 4)
        kvs._range_values[2] = "corrupt"
        with pytest.raises(InvariantViolation) as ei:
            kvs.get_range("ep", 4)
        assert ei.value.invariant == "kvs.memo_incoherent"

    def test_surviving_memo_flagged_as_leak(self):
        """Re-stage the pre-fix bug: a memo left in place across a
        commit is exactly what the auditor exists to catch."""
        kvs, san = self._sanitized_kvs(strict=False)
        kvs.commit({"ep0": 0})
        kvs.get_range("ep", 1)
        leaked_key = ("ep", 1, kvs.epoch)
        kvs.commit({"ep1": 1})
        kvs._range_key = leaked_key   # resurrect the pre-fix state
        san.on_kvs_commit(kvs, kvs.epoch - 1)
        assert [v.invariant for v in san.violations] == ["kvs.memo_leak"]

    def test_epoch_regression_flagged(self):
        kvs, san = self._sanitized_kvs(strict=False)
        kvs.commit({"a": 1})          # epoch now 1
        san.on_kvs_commit(kvs, prev_epoch=7)   # 7 -> 1 is not +1
        assert [v.invariant for v in san.violations] == [
            "kvs.epoch_monotonicity"
        ]

    def test_pmi_layer_off_is_inert(self):
        kvs = KeyValueStore()
        san = Sanitizer(CheckPlan(name="no-pmi", pmi=False), Simulator())
        kvs.check = san
        kvs.commit({"a": 1})
        kvs._range_values = ["never-verified"]
        kvs._range_key = ("a", 1, kvs.epoch)
        kvs.get_range("a", 1)
        assert san.violations == []


class TestMemoCostNeutrality:
    def test_audited_pmi_bootstrap_is_byte_identical(self):
        """The memo (and its auditing) is pure host memory: a PMI-driven
        directory bootstrap produces the same simulated time and the
        same counters with the pmi auditor on and off."""
        cost = CostModel().evolve(ud_loss_prob=0.0, ud_duplicate_prob=0.0)

        def run(check):
            rig = build_conduit_rig(npes=4, ppn=1, cost=cost, check=check)
            for c in rig.conduits:
                c.register_handler("ping", lambda src, data: None)
            got = {}

            def pe(r):
                # Put/Fence/Get-range: the path whose memo the fix drops.
                yield from rig.pmi[r].put(f"ep{r}", ("addr", r))
                yield from rig.pmi[r].fence()
                got[r] = list((yield from rig.pmi[r].get_range("ep", 4)))
                yield from rig.conduits[r].am_send((r + 1) % 4, "ping")

            for r in range(4):
                spawn(rig.sim, pe(r), name=f"pe{r}")
            rig.sim.run()
            assert sorted(got) == [0, 1, 2, 3]
            assert got[0] == [("addr", r) for r in range(4)]
            return rig

        base = run(check=False)
        checked = run(check=CheckPlan(name="pmi-audit", strict=False))
        assert checked.sim.now == base.sim.now
        assert checked.counters.as_dict() == base.counters.as_dict()
        assert checked.check is not None
        assert checked.check.violations == []
        assert checked.check.report()["stats"]["kvs_commits"] >= 1

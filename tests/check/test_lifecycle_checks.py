"""Lifecycle-layer sanitizer: eviction and reconnect invariants.

Two invariants guard the drain protocol: a QP must never be destroyed
with WRs still in flight (the quiesce is the whole point of the
handshake), and an eviction policy must not thrash — N reconnects of
the same (rank, peer) pair inside a short window means the policy is
evicting a hot connection over and over.
"""

import pytest

from repro.apps import ChurnWorkload
from repro.check import CheckPlan, Sanitizer
from repro.cluster import cluster_a
from repro.core import Job, RuntimeConfig
from repro.errors import InvariantViolation
from repro.gasnet import LifecyclePolicy
from repro.sim import Simulator

from ..gasnet.conftest import build_conduit_rig

FAST_REAP = LifecyclePolicy(idle_timeout_us=1_000.0, scan_interval_us=250.0)


class TestEvictInvariant:
    def test_evict_with_outstanding_wrs_is_violated(self):
        san = Sanitizer(CheckPlan(name="lc"), Simulator())
        with pytest.raises(InvariantViolation) as ei:
            san.on_evict(3, 7, outstanding_wrs=2)
        assert ei.value.layer == "lifecycle"
        assert ei.value.invariant == "lifecycle.evict_with_outstanding_wrs"
        assert ei.value.rank == 3

    def test_clean_evict_counts_without_violating(self):
        san = Sanitizer(CheckPlan(name="lc"), Simulator())
        san.on_evict(0, 1, outstanding_wrs=0)
        san.on_evict(1, 0, outstanding_wrs=0)
        assert san.violations == []
        assert san.report()["stats"]["evictions"] == 2

    def test_layer_off_is_inert(self):
        san = Sanitizer(CheckPlan(name="lc", lifecycle=False), Simulator())
        san.on_evict(0, 1, outstanding_wrs=5)
        san.on_reconnect(0, 1)
        assert san.violations == []
        assert san.report()["stats"]["evictions"] == 0
        assert san.report()["stats"]["reconnects"] == 0


class TestReconnectStorm:
    def test_storm_within_window_is_violated(self):
        sim = Simulator()
        san = Sanitizer(CheckPlan(name="lc", strict=False), sim)
        for _ in range(Sanitizer.RECONNECT_STORM_N):
            san.on_reconnect(0, 1)
        assert [v.invariant for v in san.violations] == [
            "lifecycle.reconnect_storm"
        ]

    def test_spaced_reconnects_do_not_trip(self):
        sim = Simulator()
        san = Sanitizer(CheckPlan(name="lc"), sim)
        gap = Sanitizer.RECONNECT_STORM_WINDOW_US * 2
        for _ in range(Sanitizer.RECONNECT_STORM_N * 2):
            san.on_reconnect(0, 1)
            sim.run(until=sim.now + gap)  # slide past the window
        assert san.violations == []
        assert san.report()["stats"]["reconnects"] == (
            Sanitizer.RECONNECT_STORM_N * 2
        )

    def test_distinct_pairs_do_not_pool(self):
        """The window is per (rank, peer): many pairs reconnecting once
        each is churn, not a storm."""
        san = Sanitizer(CheckPlan(name="lc"), Simulator())
        for peer in range(Sanitizer.RECONNECT_STORM_N * 2):
            san.on_reconnect(0, peer)
        assert san.violations == []


class TestRigIntegration:
    def test_eviction_and_reconnect_feed_the_auditor(self):
        rig = build_conduit_rig(npes=2, lifecycle=FAST_REAP, check=True)
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield 5_000.0  # reaped
            yield from c0.am_send(1, "ping")  # transparent reconnect

        from repro.sim import spawn
        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run(until=rig.sim.now + 30_000.0)
        stats = rig.check.report()["stats"]
        assert stats["evictions"] >= 2  # both halves, at least once
        assert stats["reconnects"] >= 1
        assert rig.check.violations == []


class TestStrictChurnJob:
    def test_churn_epoch_under_strict_checking_is_clean(self):
        """A churn workload with eviction on, strict-checked end to
        end: the drain protocol must produce zero violations while
        actually evicting and reconnecting."""
        app = ChurnWorkload(epochs=3, partners=2, requests=2,
                            payload_bytes=256)
        policy = LifecyclePolicy(idle_timeout_us=20_000.0,
                                 scan_interval_us=5_000.0)
        job = Job(
            npes=16,
            config=RuntimeConfig.proposed(lifecycle=policy),
            cluster=cluster_a(16, ppn=4),
            check=True,
        )
        res = job.run(app)
        assert res.check is not None
        assert res.check["strict"] is True
        assert res.check["violations"] == []
        stats = res.check["stats"]
        assert stats["evictions"] > 0
        assert stats["reconnects"] > 0

"""Unit tests for the determinism lint (``python -m repro.check.lint``)."""

from pathlib import Path

from repro.check.lint import lint_paths, lint_source, main

SRC_REPRO = Path(__file__).resolve().parent.parent.parent / "src" / "repro"


def rules(source):
    return [f.rule for f in lint_source(source)]


class TestSetIteration:
    def test_set_literal_in_for(self):
        assert rules("for x in {1, 2}:\n    pass\n") == ["set-iteration"]

    def test_set_call_in_for(self):
        assert rules("for x in set(xs):\n    pass\n") == ["set-iteration"]

    def test_frozenset_call_in_for(self):
        assert rules("for x in frozenset(xs):\n    pass\n") == ["set-iteration"]

    def test_set_comprehension_in_for(self):
        assert rules("for x in {y for y in xs}:\n    pass\n") == ["set-iteration"]

    def test_set_algebra_in_for(self):
        assert rules("for x in set(a) - set(b):\n    pass\n") == ["set-iteration"]
        assert rules("for x in set(a) | b:\n    pass\n") == ["set-iteration"]

    def test_plain_binop_not_flagged(self):
        # a - b could be integer/vector math; only flag recognisable sets
        assert rules("for x in a - b:\n    pass\n") == []

    def test_comprehension_iter_flagged(self):
        assert rules("ys = [y for y in {1, 2}]\n") == ["set-iteration"]
        assert rules("ys = {y: 1 for y in set(xs)}\n") == ["set-iteration"]

    def test_ordered_idioms_clean(self):
        assert rules("for x in dict.fromkeys(xs):\n    pass\n") == []
        assert rules("for x in sorted(set(xs)):\n    pass\n") == []


class TestDictKeysIteration:
    def test_keys_call_in_for(self):
        assert rules("for k in d.keys():\n    pass\n") == ["dict-keys-iteration"]

    def test_direct_dict_iteration_clean(self):
        assert rules("for k in d:\n    pass\n") == []

    def test_keys_with_args_not_flagged(self):
        # not the builtin dict protocol; leave custom APIs alone
        assert rules("for k in d.keys(1):\n    pass\n") == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules("t = time.time()\n") == ["wall-clock"]

    def test_perf_counter_flagged(self):
        assert rules("t = time.perf_counter()\n") == ["wall-clock"]

    def test_datetime_now_flagged(self):
        assert rules("t = datetime.now()\n") == ["wall-clock"]

    def test_sim_now_clean(self):
        assert rules("t = sim.now\n") == []


class TestRandomModule:
    def test_import_flagged(self):
        assert rules("import random\n") == ["random-module"]

    def test_from_import_flagged(self):
        assert rules("from random import choice\n") == ["random-module"]

    def test_call_flagged(self):
        assert rules("x = random.random()\n") == ["random-module"]

    def test_numpy_generator_clean(self):
        assert rules("x = rng.integers(0, 5)\n") == []


class TestSuppressionAndOutput:
    def test_inline_allow_comment_suppresses(self):
        src = "for x in set(xs):  # lint: allow-set-iteration\n    pass\n"
        assert rules(src) == []

    def test_allow_comment_is_rule_specific(self):
        src = "for x in set(xs):  # lint: allow-dict-keys-iteration\n    pass\n"
        assert rules(src) == ["set-iteration"]

    def test_syntax_error_reported_not_raised(self):
        assert rules("def broken(:\n") == ["syntax-error"]

    def test_finding_format_has_location_and_rule(self):
        finding = lint_source("import random\n", path="pkg/mod.py")[0]
        assert finding.format() == (
            "pkg/mod.py:1: [random-module] stdlib random imported; sim "
            "code must draw from the job's numpy Generator substreams"
        )


class TestCli:
    def test_dirty_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nfor x in {1}:\n    pass\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "random-module" in out and "set-iteration" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("for x in sorted(xs):\n    pass\n")
        assert main([str(good)]) == 0
        assert capsys.readouterr().out == ""

    def test_no_args_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_directory_recursion(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.py").write_text("import random\n")
        (tmp_path / "b.py").write_text("t = time.time()\n")
        found = lint_paths([str(tmp_path)])
        assert sorted(f.rule for f in found) == ["random-module", "wall-clock"]


def test_simulator_sources_are_lint_clean():
    """The CI gate, asserted in-suite: src/repro must carry zero
    determinism-lint findings (deliberate uses carry allow comments)."""
    findings = lint_paths([str(SRC_REPRO)])
    assert findings == [], "\n".join(f.format() for f in findings)

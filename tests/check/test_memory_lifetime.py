"""MemoryRegion lifetime: deregistration racing in-flight RDMA.

The seed's bug: ``deregister`` during an in-flight packet either read
through a stale region view or crashed the *target* simulation with an
uncaught :class:`RemoteAccessError`.  The fix mirrors IBV: the target
NAKs, the requester's WR completes with a remote-access error status,
and the revoked region is never written through.  The sanitizer's
memory auditor additionally reports the access at the point of damage.
"""

import pytest

from repro.check import CheckPlan, Sanitizer
from repro.errors import InvariantViolation, MemoryRegistrationError, RemoteAccessError
from repro.sim import spawn

from ..conftest import build_rig
from ..ib.test_qp_transport import _connect_pair


def _revoke(ctx, region):
    """Deregister instantly (models finalize racing the wire: zero
    simulated time between post and revocation, packet still in flight)."""
    ctx.hca.hide_memory(region)
    ctx.mm.deregister(region)


class TestDeregisterRacesInFlightWrite:
    def test_requester_gets_error_completion_and_no_stale_write(self):
        rig = build_rig(npes=2)
        pair = _connect_pair(rig)
        ctx0, ctx1 = rig.ctxs
        observed = {}

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            yield from ctx0.post_rdma_write(
                pair["qa"], b"DATA", region.addr, region.rkey
            )
            # The write is on the wire; the target revokes before it lands.
            _revoke(ctx1, region)
            try:
                yield from ctx0.poll(pair["sa"])
            except RemoteAccessError as exc:
                observed["error"] = str(exc)
            observed["bytes"] = ctx1.mm.read_local(addr, 4)

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()  # pre-fix: RemoteAccessError escaped at the target
        assert "revoked" in observed["error"]
        assert observed["bytes"] == b"\x00" * 4  # never written through
        assert rig.counters["rc.remote_access_naks"] == 1

    def test_delayed_read_to_revoked_region_also_naks(self):
        rig = build_rig(npes=2)
        pair = _connect_pair(rig)
        ctx0, ctx1 = rig.ctxs
        failures = []

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            ctx1.mm.write_local(addr, b"secret")
            yield from ctx0.post_rdma_read(
                pair["qa"], 6, region.addr, region.rkey
            )
            _revoke(ctx1, region)
            try:
                yield from ctx0.poll(pair["sa"])
            except RemoteAccessError as exc:
                failures.append(str(exc))

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()
        assert len(failures) == 1 and "revoked" in failures[0]

    def test_write_before_revocation_still_lands(self):
        """Control: the same sequence with the revocation *after* the
        completion leaves the data in place — deregister only affects
        later traffic."""
        rig = build_rig(npes=2)
        pair = _connect_pair(rig)
        ctx0, ctx1 = rig.ctxs
        observed = {}

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            yield from ctx0.post_rdma_write(
                pair["qa"], b"DATA", region.addr, region.rkey
            )
            yield from ctx0.poll(pair["sa"])     # completes first
            _revoke(ctx1, region)
            observed["bytes"] = ctx1.mm.read_local(addr, 4)

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()
        assert observed["bytes"] == b"DATA"

    def test_revoked_rkey_distinguished_from_unknown(self):
        rig = build_rig(npes=2)
        ctx = rig.ctxs[1]
        holder = {}

        def proc(sim):
            addr = ctx.mm.alloc(16)
            holder["region"] = yield from ctx.reg_mr(addr)

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()
        region = holder["region"]
        _revoke(ctx, region)
        with pytest.raises(RemoteAccessError, match="revoked"):
            ctx.mm.region_by_rkey(region.rkey)
        with pytest.raises(RemoteAccessError, match="unknown rkey"):
            ctx.mm.region_by_rkey(0xDEAD)
        with pytest.raises(RemoteAccessError, match="revoked"):
            ctx.hca.memory_target(region.rkey)
        with pytest.raises(RemoteAccessError, match="no region"):
            ctx.hca.memory_target(0xDEAD)

    def test_double_deregister_rejected(self):
        rig = build_rig(npes=2)
        ctx = rig.ctxs[0]
        holder = {}

        def proc(sim):
            addr = ctx.mm.alloc(16)
            holder["region"] = yield from ctx.reg_mr(addr)

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()
        ctx.mm.deregister(holder["region"])
        with pytest.raises(MemoryRegistrationError):
            ctx.mm.deregister(holder["region"])


class TestSanitizedRevokedAccess:
    def _scenario(self, rig, pair, swallow):
        ctx0, ctx1 = rig.ctxs

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            yield from ctx0.post_rdma_write(
                pair["qa"], b"DATA", region.addr, region.rkey
            )
            _revoke(ctx1, region)
            if swallow:
                try:
                    yield from ctx0.poll(pair["sa"])
                except RemoteAccessError:
                    pass

        return proc

    def test_strict_plan_raises_at_point_of_damage(self):
        rig = build_rig(npes=2)
        san = Sanitizer(CheckPlan(name="mem"), rig.sim).install(hcas=rig.hcas)
        pair = _connect_pair(rig)
        spawn(rig.sim, self._scenario(rig, pair, swallow=False)(rig.sim))
        with pytest.raises(InvariantViolation) as ei:
            rig.sim.run()
        assert ei.value.layer == "memory"
        assert ei.value.invariant == "region.revoked_access"
        assert ei.value.rank == 1  # the *target* PE, where the damage is

    def test_nonstrict_plan_collects_and_run_completes(self):
        rig = build_rig(npes=2)
        san = Sanitizer(
            CheckPlan(name="mem", strict=False), rig.sim
        ).install(hcas=rig.hcas)
        pair = _connect_pair(rig)
        spawn(rig.sim, self._scenario(rig, pair, swallow=True)(rig.sim))
        rig.sim.run()
        assert [v.invariant for v in san.violations] == [
            "region.revoked_access"
        ]
        assert rig.counters["rc.remote_access_naks"] == 1

    def test_memory_layer_off_reports_nothing(self):
        rig = build_rig(npes=2)
        san = Sanitizer(
            CheckPlan(name="mem", memory=False), rig.sim
        ).install(hcas=rig.hcas)
        pair = _connect_pair(rig)
        spawn(rig.sim, self._scenario(rig, pair, swallow=True)(rig.sim))
        rig.sim.run()
        assert san.violations == []


class TestEvictionRacesInFlightWrite:
    """The revoked-access discipline extended to evicted QPs: a WR in
    flight when a disconnect destroys the target's QP must NAK back to
    the requester, not write through or vanish."""

    def test_write_in_flight_to_destroyed_qp_naks_at_requester(self):
        rig = build_rig(npes=2)
        pair = _connect_pair(rig)
        ctx0, ctx1 = rig.ctxs
        observed = {}

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            yield from ctx0.post_rdma_write(
                pair["qa"], b"DATA", region.addr, region.rkey
            )
            # The write is on the wire; an eviction destroys the
            # target's half before it lands (zero simulated time
            # between post and destroy, packet still in flight).
            pair["qb"].destroy()
            try:
                yield from ctx0.poll(pair["sa"])
            except RemoteAccessError as exc:
                observed["error"] = str(exc)
            observed["bytes"] = ctx1.mm.read_local(addr, 4)

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()  # pre-fix: the WR was swallowed and poll hung
        assert "destroyed" in observed["error"]
        assert observed["bytes"] == b"\x00" * 4  # never written through
        assert rig.counters["hca.nak_dead_qp"] == 1
        assert rig.counters["hca.dropped_no_qp"] == 0

    def test_read_in_flight_to_destroyed_qp_also_naks(self):
        rig = build_rig(npes=2)
        pair = _connect_pair(rig)
        ctx0, ctx1 = rig.ctxs
        failures = []

        def proc(sim):
            addr = ctx1.mm.alloc(64)
            region = yield from ctx1.reg_mr(addr)
            yield from ctx0.post_rdma_read(
                pair["qa"], 32, region.addr, region.rkey
            )
            pair["qb"].destroy()
            try:
                yield from ctx0.poll(pair["sa"])
            except RemoteAccessError as exc:
                failures.append(str(exc))

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()
        assert len(failures) == 1 and "destroyed" in failures[0]
        assert rig.counters["hca.nak_dead_qp"] == 1

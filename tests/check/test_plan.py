"""CheckPlan validation, round-trip and wiring into config/specs."""

import pytest

from repro.apps import HelloWorld
from repro.check import CheckPlan
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.exec import JobSpec


class TestCheckPlan:
    def test_defaults_arm_every_layer_strictly(self):
        plan = CheckPlan()
        assert plan.name == "check"
        assert plan.ib and plan.memory and plan.pmi and plan.conduit
        assert plan.lifecycle
        assert plan.strict
        assert not plan.empty

    def test_empty_when_no_layer_armed(self):
        plan = CheckPlan(ib=False, memory=False, pmi=False, conduit=False,
                         lifecycle=False)
        assert plan.empty
        # strict alone does not make the plan do anything
        assert CheckPlan(ib=False, memory=False, pmi=False, conduit=False,
                         lifecycle=False, strict=True).empty

    def test_round_trip_through_dict(self):
        plan = CheckPlan(name="teardown", pmi=False, strict=False)
        assert CheckPlan.from_dict(plan.as_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown CheckPlan keys"):
            CheckPlan.from_dict({"ib": True, "gasnet": True})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigError):
            CheckPlan.from_dict(["ib"])

    def test_name_must_be_nonempty_string(self):
        with pytest.raises(ConfigError):
            CheckPlan(name="")
        with pytest.raises(ConfigError):
            CheckPlan(name=7)

    def test_layer_toggles_must_be_bools(self):
        with pytest.raises(ConfigError):
            CheckPlan(ib="yes")
        with pytest.raises(ConfigError):
            CheckPlan(strict=1)

    def test_plans_are_hashable(self):
        assert len({CheckPlan(), CheckPlan(), CheckPlan(pmi=False)}) == 2


class TestRuntimeConfigWiring:
    def test_true_becomes_default_plan(self):
        cfg = RuntimeConfig.proposed().evolve(check=True)
        assert cfg.check == CheckPlan()

    def test_false_becomes_none(self):
        cfg = RuntimeConfig.proposed().evolve(check=False)
        assert cfg.check is None

    def test_dict_is_parsed(self):
        cfg = RuntimeConfig.proposed().evolve(
            check={"name": "cfg-audit", "conduit": False}
        )
        assert cfg.check == CheckPlan(name="cfg-audit", conduit=False)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig.proposed().evolve(check=3)


class TestJobSpecWiring:
    def test_true_becomes_default_plan_and_tags_key(self):
        spec = JobSpec(app=HelloWorld(), npes=4,
                       config=RuntimeConfig.proposed(), check=True)
        assert spec.check == CheckPlan()
        assert spec.key.endswith("check")

    def test_false_becomes_none(self):
        spec = JobSpec(app=HelloWorld(), npes=4,
                       config=RuntimeConfig.proposed(), check=False)
        assert spec.check is None
        assert "check" not in spec.key

    def test_dict_is_parsed(self):
        spec = JobSpec(app=HelloWorld(), npes=4,
                       config=RuntimeConfig.proposed(),
                       check={"strict": False})
        assert spec.check == CheckPlan(strict=False)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            JobSpec(app=HelloWorld(), npes=4,
                    config=RuntimeConfig.proposed(), check="all")

"""QP lifetime coverage: destroy, double-destroy, post-after-destroy.

Legacy (unsanitized) behaviour is part of the contract — destroyed QPs
reject posts with :class:`QPStateError`, redundant destroys are silent,
late traffic to a dead QP is dropped — and the sanitizer upgrades each
of these into a structured :class:`InvariantViolation` without changing
any simulated outcome.
"""

import pytest

from repro.check import CheckPlan, Sanitizer
from repro.errors import InvariantViolation, QPStateError
from repro.ib import QPState
from repro.sim import spawn

from ..conftest import build_rig
from ..ib.test_qp_transport import _connect_pair


def _sanitized_rig(npes=2, **plan_kwargs):
    rig = build_rig(npes=npes)
    plan = CheckPlan(name="qp-audit", **plan_kwargs)
    san = Sanitizer(plan, rig.sim).install(hcas=rig.hcas)
    return rig, san


class TestPostAfterDestroy:
    def test_legacy_raises_qp_state_error(self, rig2):
        pair = _connect_pair(rig2)
        pair["qa"].destroy()
        with pytest.raises(QPStateError, match="is ERROR, needs RTS"):
            pair["qa"].post_send(b"x", 1)

    def test_strict_sanitizer_raises_invariant_violation(self):
        rig, san = _sanitized_rig()
        pair = _connect_pair(rig)
        pair["qa"].destroy()
        with pytest.raises(InvariantViolation) as ei:
            pair["qa"].post_send(b"x", 1)
        assert ei.value.layer == "ib"
        assert ei.value.invariant == "qp.state"
        assert ei.value.rank == 0

    def test_nonstrict_records_then_falls_back_to_legacy_error(self):
        rig, san = _sanitized_rig(strict=False)
        pair = _connect_pair(rig)
        pair["qa"].destroy()
        with pytest.raises(QPStateError):
            pair["qa"].post_send(b"x", 1)
        assert [v.invariant for v in san.violations] == ["qp.state"]

    def test_ib_layer_off_keeps_legacy_error_only(self):
        rig, san = _sanitized_rig(ib=False)
        pair = _connect_pair(rig)
        pair["qa"].destroy()
        with pytest.raises(QPStateError):
            pair["qa"].post_send(b"x", 1)
        assert san.violations == []


class TestDoubleDestroy:
    def test_legacy_second_destroy_is_silent(self, rig2):
        pair = _connect_pair(rig2)
        pair["qa"].destroy()
        pair["qa"].destroy()  # no error, no state change
        assert pair["qa"].destroyed
        assert pair["qa"].state is QPState.ERROR

    def test_strict_sanitizer_raises(self):
        rig, san = _sanitized_rig()
        pair = _connect_pair(rig)
        pair["qa"].destroy()
        with pytest.raises(InvariantViolation) as ei:
            pair["qa"].destroy()
        assert ei.value.invariant == "qp.double_destroy"
        assert f"QP {pair['qa'].qpn}" in ei.value.detail

    def test_nonstrict_sanitizer_collects(self):
        rig, san = _sanitized_rig(strict=False)
        pair = _connect_pair(rig)
        pair["qa"].destroy()
        pair["qa"].destroy()
        assert [v.invariant for v in san.violations] == ["qp.double_destroy"]


class TestDestroyWithOutstandingWRs:
    def test_flagged_never_raised_and_conserved(self):
        """Tearing down with traffic in flight is recorded (not raised,
        even under strict) and the flushed WR still balances the final
        WR-conservation audit."""
        rig, san = _sanitized_rig()  # strict on purpose
        pair = _connect_pair(rig)
        pair["qa"].post_send(b"x", 1)       # WR now in flight
        pair["qa"].destroy()                # must not raise
        assert [v.invariant for v in san.violations] == [
            "qp.destroy_outstanding_wrs"
        ]
        rig.sim.run()  # the ack lands on the dead QP and is dropped
        assert rig.counters["hca.dropped_no_qp"] == 1
        report = san.final_audit()
        assert report["stats"]["wr_posted"] == 1
        assert report["stats"]["wr_flushed"] == 1
        # no wr.conservation (or any other) violation was added
        assert [v["invariant"] for v in report["violations"]] == [
            "qp.destroy_outstanding_wrs"
        ]

    def test_clean_teardown_flags_nothing(self):
        rig, san = _sanitized_rig()
        pair = _connect_pair(rig)
        done = []

        def proc(sim):
            yield from rig.ctxs[0].post_send(pair["qa"], b"x", 1)
            yield from rig.ctxs[0].poll(pair["sa"])
            done.append(True)

        spawn(rig.sim, proc(rig.sim))
        rig.sim.run()
        pair["qa"].destroy()
        pair["qb"].destroy()
        assert done == [True]
        assert san.violations == []
        report = san.final_audit()
        assert report["violations"] == []
        assert report["stats"]["wr_completed"] == 1


class TestLateTrafficToDeadQP:
    def test_rnr_redelivery_drop_is_legal_not_a_violation(self):
        """The collision-loser race (redelivery to a destroyed QP) is
        legal protocol behaviour: counted, never flagged."""
        rig, san = _sanitized_rig()
        ctx0, ctx1 = rig.ctxs

        def scenario(sim):
            scq0, rcq0 = ctx0.create_cq(), ctx0.create_cq()
            scq1, rcq1 = ctx1.create_cq(), ctx1.create_cq()
            qp0 = yield from ctx0.create_rc_qp(scq0, rcq0)
            qp1 = yield from ctx1.create_rc_qp(scq1, rcq1)
            yield from ctx0.connect_rc_qp(qp0, qp1.address)
            yield from ctx1.modify_init(qp1)
            yield from ctx0.post_send(qp0, "hello", 32)
            yield 10.0  # after arrival, before the RNR redelivery
            qp1.destroy()

        spawn(rig.sim, scenario(rig.sim))
        rig.sim.run()
        assert rig.counters["rc.dropped_dead_qp"] == 1
        assert san.violations == []

"""Finalize racing the handshake: drain/abort before teardown.

The seed's bug: ``shutdown`` swept ``_conns`` immediately, so a serve
still executing in the progress process (or a late/duplicate UD
request) could build an RC QP *after* the sweep — leaked half-open, or
leaked fully connected with nothing left to destroy it.  The fix closes
the conduit first (late requests are dropped), aborts held requests,
and drains in-flight client attempts and serves before the QP sweep.
"""

import pytest

from repro.check import CheckPlan, Sanitizer
from repro.cluster import CostModel
from repro.errors import ConduitError, InvariantViolation
from repro.faults import FaultPlan, UDFault
from repro.gasnet.messages import ConnectRequest
from repro.sim import spawn

from ..gasnet.conftest import build_conduit_rig

FAST_RETRY = dict(ud_loss_prob=0.0, ud_duplicate_prob=0.0,
                  ud_max_retries=3, ud_retry_timeout_us=200.0)


def _rc_qps_alive(rig):
    return [
        qp
        for ctx in rig.ctxs
        for qp in ctx.hca._qps.values()
        if getattr(qp, "is_rc", False)
    ]


class TestLateRequestDropped:
    def test_request_after_close_is_dropped_not_served(self):
        rig = build_conduit_rig(npes=2, check=CheckPlan(name="teardown"))
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)
        observed = {}

        def scenario():
            yield from c0.am_send(1, "ping")
            yield from c1.shutdown()
            observed["qps_after_close"] = len(rig.ctxs[1].hca._qps)
            # A delayed/duplicate ConnectRequest lands after teardown.
            late = ConnectRequest(src_rank=0, rc_addr=c0._conns[1].qp.address)
            yield from c1._on_connect_request(late)

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert rig.counters["conduit.dropped_after_close"] == 1
        assert c1._conns == {}
        assert c1._serving == {}
        # Nothing was built for the late request.
        assert len(rig.ctxs[1].hca._qps) == observed["qps_after_close"]
        # Dropping post-close traffic is the *fix*, not a violation.
        assert rig.check.violations == []

    def test_serve_after_close_trips_the_sanitizer_guard(self):
        """_do_serve's entry guard is the regression sentinel: if any
        future entry path reaches a serve on a closed conduit, the
        conduit auditor reports it at the first step."""
        rig = build_conduit_rig(npes=2, check=CheckPlan(name="teardown"))
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield from c1.shutdown()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        forged = ConnectRequest(src_rank=0, rc_addr=c0._conns[1].qp.address)
        gen = c1._do_serve(forged, None)
        with pytest.raises(InvariantViolation) as ei:
            next(gen)
        assert ei.value.layer == "conduit"
        assert ei.value.invariant == "handshake.serve_after_close"


class TestShutdownDrainsActiveServes:
    def test_shutdown_waits_for_in_flight_serve_then_sweeps(self):
        """Pre-fix: shutdown returned while the serve was still building
        its RC QP; the serve then registered a connection nothing ever
        destroyed."""
        rig = build_conduit_rig(npes=2)
        c0, c1 = rig.conduits
        ctx0 = rig.ctxs[0]
        observed = {}

        def scenario():
            # A real half-built client on rank 0 for the serve to target.
            scq = ctx0.create_cq("forged-send")
            qp0 = yield from ctx0.create_rc_qp(scq, c0._recv_cq)
            yield from ctx0.modify_init(qp0)
            req = ConnectRequest(src_rank=0, rc_addr=qp0.address)
            spawn(rig.sim, c1._on_connect_request(req), name="late-serve")
            yield 1.0  # the serve is now mid-handshake
            observed["serves_at_close"] = c1._active_serves
            yield from c1.shutdown()
            observed["serves_after_close"] = c1._active_serves
            observed["conns_after_close"] = dict(c1._conns)
            qp0.destroy()  # our forged client half

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert observed["serves_at_close"] == 1
        assert observed["serves_after_close"] == 0
        # The drained serve's connection was swept with the rest.
        assert observed["conns_after_close"] == {}
        assert _rc_qps_alive(rig) == []

    def test_held_requests_dropped_at_close(self):
        """A never-ready server holding requests must abort them at
        finalize, not serve them into the teardown."""
        cost = CostModel().evolve(**FAST_RETRY)
        rig = build_conduit_rig(npes=2, cost=cost, ready=False)
        c0, c1 = rig.conduits
        errors = []

        def scenario():
            try:
                yield from c0.am_send(1, "ping")
            except ConduitError as exc:
                errors.append(str(exc))
            yield from c1.shutdown()
            yield from c0.shutdown()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert len(errors) == 1  # the client's retry budget expired
        assert rig.counters["conduit.requests_held"] >= 1
        assert rig.counters["conduit.held_dropped_at_close"] >= 1
        assert c1._held_requests == []
        assert _rc_qps_alive(rig) == []


class TestFaultPlanRegression:
    def test_delayed_duplicate_lands_after_finalize_without_leaking(self):
        """A fault plan duplicates the first ConnectRequest with a delay
        far past the whole job: the copy arrives after both conduits
        finalized.  Pre-fix this could serve into the teardown; now the
        job ends with empty QP tables and a clean final audit."""
        cost = CostModel().evolve(**FAST_RETRY)
        plan = FaultPlan(
            name="late-dup",
            ud=(UDFault("duplicate", delay_us=50_000.0, first_n=1),),
        )
        rig = build_conduit_rig(
            npes=2, cost=cost, faults=plan,
            check=CheckPlan(name="teardown", strict=False),
        )
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.am_send(1, "ping")
            yield from c0.shutdown()
            yield from c1.shutdown()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()   # runs past the duplicate's arrival
        assert rig.counters["faults.ud_duplicated"] == 1
        assert rig.counters["conduit.connections"] == 2  # original pair only
        for ctx in rig.ctxs:
            assert ctx.hca._qps == {}
        report = rig.check.final_audit(
            conduits=rig.conduits, pmi_clients=rig.pmi
        )
        assert report["violations"] == []
        assert report["stats"]["connect_requests_seen"] == 1


class TestStaticTeardown:
    def test_static_teardown_leaves_no_qps_or_conns(self):
        rig = build_conduit_rig(
            npes=2, mode="static", check=CheckPlan(name="static-teardown")
        )
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)

        def scenario():
            yield from c0.wireup()
            yield from c1.wireup()
            yield from c0.am_send(1, "ping")
            yield from c0.teardown_charge()
            yield from c1.teardown_charge()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert c0._conns == {} and c1._conns == {}
        for c in rig.conduits:
            assert c._closed
        report = rig.check.final_audit(
            conduits=rig.conduits, pmi_clients=rig.pmi
        )
        assert [v["invariant"] for v in report["violations"]] == []


class TestServingTTLTimerAfterClose:
    def test_ttl_timer_firing_post_shutdown_is_inert(self):
        """The serving-cache TTL timer is scheduled at serve time and
        can fire long after finalize cleared the cache.  Pre-fix,
        _evict_serving ran unguarded on the closed conduit and bumped
        conduit.serving_evicted for an entry shutdown had already
        swept; the guard makes the late firing a no-op."""
        cost = CostModel().evolve(**FAST_RETRY)
        rig = build_conduit_rig(
            npes=2, cost=cost, check=CheckPlan(name="teardown")
        )
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)
        observed = {}

        def scenario():
            yield from c0.am_send(1, "ping")
            # The serve just cached its reply; its TTL timer (the full
            # client retry schedule) is pending.  Finalize beats it.
            observed["serving_at_close"] = dict(c1._serving)
            yield from c1.shutdown()
            yield from c0.shutdown()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()  # runs past the TTL firing on the closed conduit
        assert observed["serving_at_close"] != {}  # the timer had a target
        assert c1._serving == {}
        assert rig.counters["conduit.serving_evicted"] == 0
        assert rig.check.violations == []


class TestChaosShutdown:
    def test_total_ud_blackout_senders_fail_and_finalize_completes(self):
        """Every UD datagram dropped: both concurrent senders burn
        their whole retry budget and raise; finalize must then run to
        completion (pre-fix, a wedged drain event left shutdown
        waiting forever) and leave nothing behind."""
        cost = CostModel().evolve(**FAST_RETRY)
        plan = FaultPlan(name="blackout", ud=(UDFault("drop"),))
        rig = build_conduit_rig(
            npes=2, cost=cost, faults=plan,
            check=CheckPlan(name="chaos", strict=False),
        )
        c0, c1 = rig.conduits
        c0.register_handler("ping", lambda src, data: None)
        c1.register_handler("ping", lambda src, data: None)
        errors = []

        def sender(conduit, peer):
            try:
                yield from conduit.am_send(peer, "ping")
            except ConduitError as exc:
                errors.append((conduit.rank, str(exc)))

        def scenario():
            s0 = spawn(rig.sim, sender(c0, 1), name="s0")
            s1 = spawn(rig.sim, sender(c1, 0), name="s1")
            yield s0
            yield s1
            yield from c0.shutdown()
            yield from c1.shutdown()
            errors.append("finalized")

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert errors[-1] == "finalized"
        assert len(errors) == 3  # both senders errored, then finalize
        assert _rc_qps_alive(rig) == []
        assert c0._pending == {} and c1._pending == {}
        report = rig.check.final_audit(
            conduits=rig.conduits, pmi_clients=rig.pmi
        )
        assert report["violations"] == []

    def test_reply_blackout_serve_survives_to_finalize_sweep(self):
        """Replies all dropped: the server serves (and registers a
        connection) while the client never learns of it and errors
        out.  Finalize on the server must drain the serve and sweep
        the orphaned connection — the re-armed serves_drained event
        covers serves that re-enter after the drain loop last looked."""
        cost = CostModel().evolve(**FAST_RETRY)
        plan = FaultPlan(
            name="reply-blackout",
            ud=(UDFault("drop", kind="ConnectReply"),),
        )
        rig = build_conduit_rig(
            npes=2, cost=cost, faults=plan,
            check=CheckPlan(name="chaos", strict=False),
        )
        c0, c1 = rig.conduits
        c1.register_handler("ping", lambda src, data: None)
        errors = []

        def scenario():
            try:
                yield from c0.am_send(1, "ping")
            except ConduitError as exc:
                errors.append(str(exc))
            yield from c0.shutdown()
            yield from c1.shutdown()

        spawn(rig.sim, scenario(), name="scenario")
        rig.sim.run()
        assert len(errors) == 1
        assert rig.counters["faults.ud_dropped"] >= 1
        # The server side did serve — and finalize swept its half.
        assert rig.counters["conduit.connections"] >= 1
        assert c1._conns == {} and c1._active_serves == 0
        assert _rc_qps_alive(rig) == []
        report = rig.check.final_audit(
            conduits=rig.conduits, pmi_clients=rig.pmi
        )
        assert report["violations"] == []

"""Unit tests for cluster topology and cost models."""

import pytest

from repro.cluster import (
    CLUSTER_A_COST,
    CLUSTER_B_COST,
    Cluster,
    CostModel,
    Placement,
    cluster_a,
    cluster_b,
)


class TestPlacement:
    def test_block_placement(self):
        p = Placement("block")
        assert [p.node_of(r, 8, 4) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_cyclic_placement(self):
        p = Placement("cyclic")
        assert [p.node_of(r, 8, 4) for r in range(8)] == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Placement("diagonal").node_of(0, 8, 4)


class TestCluster:
    def test_node_counts(self):
        c = Cluster(npes=20, ppn=8, cost=CostModel())
        assert c.nnodes == 3
        assert c.ranks_on_node(2) == [16, 17, 18, 19]
        assert c.local_size(17) == 4
        assert c.local_rank(17) == 1

    def test_same_node(self):
        c = Cluster(npes=16, ppn=8, cost=CostModel())
        assert c.same_node(0, 7)
        assert not c.same_node(7, 8)

    def test_hops_structure(self):
        cost = CostModel().evolve(leaf_radix=2)
        c = Cluster(npes=8, ppn=1, cost=cost)
        assert c.hops(0, 0) == 0
        assert c.hops(0, 1) == 1  # same leaf
        assert c.hops(0, 2) == 3  # across spine

    def test_lids_unique_per_node(self):
        c = Cluster(npes=32, ppn=8, cost=CostModel())
        lids = {c.lid_of(r) for r in range(32)}
        assert len(lids) == c.nnodes

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Cluster(npes=0, ppn=8, cost=CostModel())
        with pytest.raises(ValueError):
            Cluster(npes=4, ppn=0, cost=CostModel())


class TestCostModel:
    def test_evolve_is_pure(self):
        base = CostModel()
        faster = base.evolve(fabric_bandwidth=9000.0)
        assert base.fabric_bandwidth != faster.fabric_bandwidth

    def test_mr_register_scales_with_size(self):
        cost = CostModel()
        small = cost.mr_register_us(1024 * 1024)
        big = cost.mr_register_us(256 * 1024 * 1024)
        assert big > 100 * small / 2

    def test_mr_register_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel().mr_register_us(-1)

    def test_wire_time_monotone_in_bytes_and_hops(self):
        cost = CostModel()
        assert cost.wire_time(4096, 1) > cost.wire_time(64, 1)
        assert cost.wire_time(64, 3) > cost.wire_time(64, 1)

    def test_presets_differ_where_expected(self):
        assert CLUSTER_B_COST.fabric_bandwidth > CLUSTER_A_COST.fabric_bandwidth
        assert CLUSTER_B_COST.compute_scale < CLUSTER_A_COST.compute_scale

    def test_preset_factories(self):
        a = cluster_a(64)
        b = cluster_b(64)
        assert a.ppn == 8 and b.ppn == 16
        assert a.name == "Cluster-A" and b.name == "Cluster-B"
        assert b.nnodes == 4

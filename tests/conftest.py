"""Shared fixtures: a small assembled IB rig for substrate tests."""

from dataclasses import dataclass
from typing import Dict, List

import pytest

from repro.cluster import Cluster, CostModel
from repro.ib import HCA, Fabric, VerbsContext
from repro.sim import Counters, RngRegistry, Simulator


@dataclass
class Rig:
    """A wired-up mini machine: sim + cluster + fabric + per-PE verbs."""

    sim: Simulator
    cluster: Cluster
    fabric: Fabric
    counters: Counters
    hcas: List[HCA]
    ctxs: List[VerbsContext]


def build_rig(npes: int = 2, ppn: int = 1, cost: CostModel = None, seed: int = 7) -> Rig:
    cost = cost or CostModel().evolve(ud_loss_prob=0.0, ud_duplicate_prob=0.0)
    sim = Simulator()
    cluster = Cluster(npes=npes, ppn=ppn, cost=cost, name="rig")
    counters = Counters()
    rng = RngRegistry(seed)
    fabric = Fabric(sim, cluster, rng, counters)
    hcas = [
        HCA(sim, fabric, node=n, lid=0x100 + n, cost=cost, counters=counters)
        for n in range(cluster.nnodes)
    ]
    ctxs = [
        VerbsContext(sim, hcas[cluster.node_of(r)], r, cost, counters)
        for r in range(npes)
    ]
    return Rig(sim, cluster, fabric, counters, hcas, ctxs)


@pytest.fixture
def rig2():
    """Two PEs on two nodes, lossless UD."""
    return build_rig(npes=2, ppn=1)


@pytest.fixture
def rig4_shared():
    """Four PEs on two nodes (2 ppn), lossless UD."""
    return build_rig(npes=4, ppn=2)

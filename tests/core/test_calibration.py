"""Calibration regression guard.

The cost model was calibrated once so Figure 5's ratios land near the
paper's (~3x init / ~8.3x Hello World at 8,192 PEs — measured 3.96x /
9.08x, see EXPERIMENTS.md).  These tests pin the mid-scale ratios in
loose bands so an accidental cost-model change that silently breaks
the reproduction fails fast, without running the expensive 8K sweep.
"""

import pytest

from repro.apps import HelloWorld
from repro.cluster import cluster_b
from repro.core import Job, RuntimeConfig


@pytest.fixture(scope="module")
def results_1024():
    out = {}
    for name, config in (
        ("current", RuntimeConfig.current()),
        ("proposed", RuntimeConfig.proposed()),
    ):
        out[name] = Job(
            npes=1024, config=config, cluster=cluster_b(1024)
        ).run(HelloWorld())
    return out


def test_init_ratio_band_at_1024(results_1024):
    ratio = (
        results_1024["current"].startup.mean_us
        / results_1024["proposed"].startup.mean_us
    )
    # Full-scale reference: 1.32x at 1024 (extrapolating to ~4x at 8K).
    assert 1.2 < ratio < 1.6, ratio


def test_hello_ratio_band_at_1024(results_1024):
    ratio = (
        results_1024["current"].wall_time_us
        / results_1024["proposed"].wall_time_us
    )
    # Full-scale reference: 1.97x at 1024 (extrapolating to ~9x at 8K).
    assert 1.6 < ratio < 2.5, ratio


def test_proposed_absolute_init_band(results_1024):
    # The proposed design's constant: registration + shm + misc.
    mean_s = results_1024["proposed"].startup.mean_us / 1e6
    assert 0.9 < mean_s < 1.4, mean_s


def test_static_endpoint_count_is_exactly_n(results_1024):
    assert results_1024["current"].resources.mean_rc_qps == 1024


def test_proposed_endpoints_tiny_at_1024(results_1024):
    assert results_1024["proposed"].resources.mean_endpoints < 8

"""Unit tests for RuntimeConfig and the Job launcher."""

import pytest

from repro.apps import HelloWorld
from repro.cluster import cluster_a
from repro.core import Job, RuntimeConfig
from repro.errors import ConfigError


class TestRuntimeConfig:
    def test_presets(self):
        cur = RuntimeConfig.current()
        assert (cur.connection_mode, cur.pmi_mode, cur.barrier_mode) == (
            "static", "blocking", "global",
        )
        prop = RuntimeConfig.proposed()
        assert (prop.connection_mode, prop.pmi_mode, prop.barrier_mode) == (
            "ondemand", "nonblocking", "intranode",
        )

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(connection_mode="lazy")
        with pytest.raises(ConfigError):
            RuntimeConfig(pmi_mode="sometimes")
        with pytest.raises(ConfigError):
            RuntimeConfig(barrier_mode="none")
        with pytest.raises(ConfigError):
            RuntimeConfig(heap_mb=0)
        with pytest.raises(ConfigError):
            RuntimeConfig(heap_backing_kb=0)

    def test_evolve_keeps_validation(self):
        with pytest.raises(ConfigError):
            RuntimeConfig.proposed().evolve(connection_mode="bogus")

    def test_label(self):
        assert RuntimeConfig.current().label == "static+blocking+global"

    def test_aliases(self):
        assert RuntimeConfig.static().connection_mode == "static"
        assert RuntimeConfig.on_demand().connection_mode == "ondemand"


class TestJob:
    def test_invalid_npes(self):
        with pytest.raises(ConfigError):
            Job(npes=0)

    def test_cluster_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            Job(npes=8, cluster=cluster_a(16))

    def test_single_pe_job_runs(self):
        result = Job(npes=1, config=RuntimeConfig.proposed()).run(HelloWorld())
        assert result.app_results == ["Hello from PE 0 of 1"]
        assert result.wall_time_us > 0

    def test_result_fields_consistent(self):
        result = Job(npes=8, config=RuntimeConfig.proposed()).run(HelloWorld())
        assert result.npes == 8
        assert result.config_label == "ondemand+nonblocking+intranode"
        assert result.app_done_us <= result.wall_time_us
        assert result.startup.max_us >= result.startup.mean_us
        assert result.wall_time_s == pytest.approx(result.wall_time_us / 1e6)
        assert set(result.startup.phase_means) >= {
            "Connection Setup", "PMI Exchange", "Memory Registration",
            "Shared Memory Setup", "Other",
        }

    def test_same_seed_same_results(self):
        a = Job(npes=8, config=RuntimeConfig.proposed(seed=5)).run(HelloWorld())
        b = Job(npes=8, config=RuntimeConfig.proposed(seed=5)).run(HelloWorld())
        assert a.wall_time_us == b.wall_time_us
        assert a.startup.mean_us == b.startup.mean_us

    def test_different_seed_different_skew(self):
        a = Job(npes=8, config=RuntimeConfig.proposed(seed=5)).run(HelloWorld())
        b = Job(npes=8, config=RuntimeConfig.proposed(seed=6)).run(HelloWorld())
        assert a.wall_time_us != b.wall_time_us

    def test_static_endpoint_accounting(self):
        result = Job(npes=16, config=RuntimeConfig.current()).run(HelloWorld())
        # Static design: N RC QPs + 1 UD QP per process.
        assert result.resources.mean_rc_qps == 16
        assert result.resources.mean_endpoints == 17
        # QP memory follows.
        assert result.resources.mean_qp_memory_bytes > 16 * 80_000

    def test_ondemand_endpoint_accounting(self):
        result = Job(npes=16, config=RuntimeConfig.proposed()).run(HelloWorld())
        assert result.resources.mean_endpoints < 5


class TestReportGuards:
    def test_startup_report_from_no_pes_rejected(self):
        from repro.core.metrics import StartupReport

        with pytest.raises(ConfigError, match="0 PEs"):
            StartupReport.from_pes([])

    def test_resource_report_from_no_pes_rejected(self):
        from repro.core.metrics import ResourceReport

        with pytest.raises(ConfigError, match="0 PEs"):
            ResourceReport.from_pes([])

"""Macro-vs-exact equivalence: the analytical phase layer's contract.

``Job(macro=True)`` replaces the per-PE generator swarm with closed
forms (on-demand corner) or a condensed replica (static corner).  The
contract — ISSUE 9's acceptance bar — is that for both design corners,
at 128 and 512 PEs, on both cluster presets and both schedulers, the
macro layer reproduces the exact DES's:

* ``StartupReport`` (per-phase means and totals) — bit for bit;
* ``app_done_us`` and per-PE ``app_results``;
* the deterministic startup counters;

and, for the **static** corner (a replica on the real substrate, so
nothing is modeled), additionally the full counters dict,
``wall_time_us`` and the ``ResourceReport``.  For the **on-demand**
corner those last three cross the finalize path, where the exact
engine draws UD-loss randomness and per-PE resource snapshots can
catch connect traffic from early-finishing nodes' finalize barriers —
they are *modeled* (lossless closed forms) rather than asserted (see
``repro.shmem.models``).

A final test pins the other direction: with macro mode off (the
default), the 128-PE golden event trace stays byte-identical — the
macro layer must be a pure add-on, invisible to the exact engine.
"""

from pathlib import Path

import pytest

from repro.apps import HelloWorld
from repro.cluster import cluster_a, cluster_b
from repro.core import Job, RuntimeConfig
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.faults.plan import UDFault
from repro.gasnet import LifecyclePolicy

GOLDEN = Path(__file__).parent.parent / "data" / "golden_trace_ondemand_128.txt"

CLUSTERS = {"A": cluster_a, "B": cluster_b}
CONFIGS = {
    "ondemand": RuntimeConfig.proposed,
    "static": RuntimeConfig.current,
}

#: Startup-path counters that must match the exact engine exactly in
#: *both* corners (the on-demand finalize counters are modeled, so the
#: on-demand assertion is restricted to this set).
STARTUP_COUNTERS = (
    "pmi.iallgathers",
    "pmi.tree_messages",
    "pmi.tree_bytes",
    "verbs.ud_qp_created",
    "verbs.mr_registered",
    "shmem.intranode_barriers",
    "shmem.start_pes_done",
)

_cache = {}


def _run(npes, testbed, corner, scheduler, macro):
    """Run (and memoize) one job; exact runs dominate the suite cost."""
    key = (npes, testbed, corner, scheduler, macro)
    if key not in _cache:
        job = Job(
            npes=npes,
            config=CONFIGS[corner](),
            cluster=CLUSTERS[testbed](npes),
            scheduler=scheduler,
            macro=macro,
        )
        _cache[key] = job.run(HelloWorld())
    return _cache[key]


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
@pytest.mark.parametrize("testbed", ["A", "B"])
@pytest.mark.parametrize("corner", ["ondemand", "static"])
@pytest.mark.parametrize("npes", [128, 512])
def test_macro_matches_exact(npes, corner, testbed, scheduler):
    exact = _run(npes, testbed, corner, scheduler, macro=False)
    macro = _run(npes, testbed, corner, scheduler, macro=True)

    assert macro.macro is True and exact.macro is False
    # The whole StartupReport dataclass: phase means (insertion order
    # included, via dict equality), mean/min/max totals.
    assert macro.startup == exact.startup
    assert macro.app_done_us == exact.app_done_us
    assert macro.app_results == exact.app_results

    if corner == "static":
        # The condensed replica runs the real substrate: everything is
        # exact by construction, down to the last counter.
        assert macro.wall_time_us == exact.wall_time_us
        assert macro.resources == exact.resources
        assert macro.counters == exact.counters
    else:
        for name in STARTUP_COUNTERS:
            if name == "pmi.tree_bytes" and name not in macro.counters:
                # Single-node clusters have no daemon tree; not hit at
                # these sizes, but keep the contract explicit.
                continue
            assert macro.counters.get(name) == exact.counters.get(name), name
        assert macro.counters["shmem.intranode_barriers"] == 2 * npes
        assert macro.counters["shmem.start_pes_done"] == npes


@pytest.mark.parametrize("corner", ["ondemand", "static"])
def test_macro_via_config_flag(corner):
    """``RuntimeConfig.macro_phases`` is the config-driven spelling."""
    config = CONFIGS[corner](macro_phases=True)
    job = Job(npes=128, config=config, cluster=cluster_b(128))
    result = job.run(HelloWorld())
    assert result.macro is True
    assert result.startup == _run(128, "B", corner, "calendar", False).startup


def test_macro_arg_overrides_config_flag():
    config = RuntimeConfig.proposed(macro_phases=True)
    job = Job(npes=8, config=config, cluster=cluster_b(8), macro=False)
    assert job.macro is False and job.sim is not None


def test_golden_trace_byte_identical_with_macro_off():
    """Macro mode off (the default): the exact engine's 128-PE golden
    trace is untouched — the macro layer is invisible unless asked for.
    A macro job runs first in the same process to catch global-state
    leaks (rng, counters, gc tuning)."""
    Job(npes=128, config=RuntimeConfig.proposed(),
        cluster=cluster_b(128, ppn=16), macro=True).run(HelloWorld())
    job = Job(npes=128, config=RuntimeConfig.proposed(),
              cluster=cluster_b(128, ppn=16), trace=True)
    job.run(HelloWorld())
    got = job.tracer.formatted()
    want = GOLDEN.read_text().splitlines()
    for i, (g, w) in enumerate(zip(got, want)):
        assert g == w, f"trace diverges at line {i + 1}:\n  got:  {g}\n  want: {w}"
    assert len(got) == len(want)


# ----------------------------------------------------------------------
# guard rails: what macro mode refuses to pretend it can do
# ----------------------------------------------------------------------
def _macro_job(**kwargs):
    return Job(npes=8, config=kwargs.pop("config", RuntimeConfig.proposed()),
               cluster=cluster_b(8), macro=True, **kwargs)


def test_macro_rejects_trace():
    with pytest.raises(ConfigError, match="trace"):
        _macro_job(trace=True)


def test_macro_rejects_faults():
    plan = FaultPlan(ud=(UDFault("drop", prob=0.1),))
    with pytest.raises(ConfigError, match="fault"):
        _macro_job(faults=plan)


def test_macro_rejects_observe():
    with pytest.raises(ConfigError, match="flight recorder"):
        _macro_job(observe=True)


def test_macro_rejects_check():
    with pytest.raises(ConfigError, match="sanitizer"):
        _macro_job(check=True)


def test_macro_rejects_lifecycle():
    config = RuntimeConfig.proposed(lifecycle=LifecyclePolicy(enabled=True))
    with pytest.raises(ConfigError, match="lifecycle"):
        _macro_job(config=config)


def test_macro_rejects_ablation_corners():
    # D1: piggybacking off is an ablation, not a design corner.
    with pytest.raises(ConfigError, match="D1"):
        _macro_job(config=RuntimeConfig.proposed(piggyback_segments=False))
    # A mixed-axis ablation (on-demand connections, blocking PMI).
    with pytest.raises(ConfigError, match="design corners"):
        _macro_job(config=RuntimeConfig.proposed(pmi_mode="blocking"))


def test_macro_requires_macro_profile():
    class NoProfile:
        def run(self, pe):
            yield 0.0

    with pytest.raises(ConfigError, match="macro_profile"):
        _macro_job().run(NoProfile())

"""Canonical JobSpec identity: aliasing matrix, distinctness, bugfixes.

Three families of property:

* **Aliasing** — trivially different spellings of the *same effective
  run* must share a content hash (dict vs pre-sorted tuple overrides,
  ``check=True`` vs ``CheckPlan()``, ``observe={"timeline": True}`` vs
  an explicit ``TimelineConfig``, spec seed vs config seed, explicit
  default ppn vs ``ppn=None``, empty plans vs absent plans, and any
  ``label``).
* **Distinctness** — two specs differing in *any* semantic field must
  never share a hash; this pins the historical ``key`` bugs where
  ``faults`` and ``cost_overrides`` silently vanished from identity.
* **Bugfix regressions** — ``SweepError`` names specs collision-free,
  and unhashable ``cost_overrides`` values fail at construction with a
  one-line ``ConfigError`` instead of a deep ``lru_cache`` TypeError.
"""

import pickle

import pytest

from repro.apps import HelloWorld, NasEP
from repro.check import CheckPlan
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.exec import (JobSpec, SweepError, canonical_json, canonical_spec,
                        execute, run_sweep, spec_hash, spec_identity)
from repro.faults import FaultPlan, UDFault
from repro.gasnet import LifecyclePolicy
from repro.obs.timeline import TimelineConfig


def _spec(**kw):
    kw.setdefault("app", HelloWorld())
    kw.setdefault("npes", 8)
    kw.setdefault("config", RuntimeConfig.proposed())
    return JobSpec(**kw)


# ----------------------------------------------------------------------
# aliasing: same effective run, same hash
# ----------------------------------------------------------------------
class TestAliasing:
    def test_label_is_not_hashed(self):
        assert spec_hash(_spec(label="run-A")) == spec_hash(
            _spec(label="totally-different"))
        assert spec_hash(_spec(label="run-A")) == spec_hash(_spec())

    def test_dict_and_sorted_tuple_overrides_alias(self):
        as_dict = _spec(cost_overrides={"qp_cache_entries": 8,
                                        "poll_cq_us": 0.2})
        as_tuple = _spec(cost_overrides=(("poll_cq_us", 0.2),
                                         ("qp_cache_entries", 8)))
        assert spec_hash(as_dict) == spec_hash(as_tuple)

    def test_int_and_float_override_values_alias_like_json(self):
        # json canonicalisation: 8 and 8.0 are distinct (int vs float),
        # but 0.2 spelled twice is identical.
        a = _spec(cost_overrides={"poll_cq_us": 0.2})
        b = _spec(cost_overrides=(("poll_cq_us", 0.2),))
        assert spec_hash(a) == spec_hash(b)

    def test_check_true_aliases_default_plan(self):
        assert spec_hash(_spec(check=True)) == spec_hash(
            _spec(check=CheckPlan()))

    def test_check_in_config_aliases_check_on_spec(self):
        on_spec = _spec(check=CheckPlan())
        in_config = _spec(config=RuntimeConfig.proposed(check=CheckPlan()))
        assert spec_hash(on_spec) == spec_hash(in_config)

    def test_observe_dict_aliases_timeline_config(self):
        as_dict = _spec(observe={"timeline": True})
        as_config = _spec(observe={"timeline": TimelineConfig()})
        assert spec_hash(as_dict) == spec_hash(as_config)

    def test_observe_interval_dict_aliases_explicit_config(self):
        as_dict = _spec(observe={"timeline": {"interval_us": 500.0}})
        as_config = _spec(
            observe={"timeline": TimelineConfig(interval_us=500.0)})
        assert spec_hash(as_dict) == spec_hash(as_config)

    def test_spec_seed_aliases_config_seed(self):
        via_spec = _spec(seed=7)
        via_config = _spec(config=RuntimeConfig.proposed(seed=7))
        assert spec_hash(via_spec) == spec_hash(via_config)

    def test_none_ppn_aliases_testbed_default(self):
        assert spec_hash(_spec(testbed="A", ppn=None)) == spec_hash(
            _spec(testbed="A", ppn=8))
        assert spec_hash(_spec(testbed="B", ppn=None)) == spec_hash(
            _spec(testbed="B", ppn=16))

    def test_empty_fault_plan_aliases_absent(self):
        assert spec_hash(_spec(faults=FaultPlan(name="noop"))) == spec_hash(
            _spec(faults=None))

    def test_empty_overrides_alias_absent(self):
        assert spec_hash(_spec(cost_overrides={})) == spec_hash(
            _spec(cost_overrides=None))

    def test_disabled_lifecycle_aliases_absent(self):
        enabled_off = RuntimeConfig.proposed(
            lifecycle=LifecyclePolicy(enabled=False))
        assert spec_hash(_spec(config=enabled_off)) == spec_hash(
            _spec(config=RuntimeConfig.proposed()))

    def test_lifecycle_under_static_mode_aliases_absent(self):
        static = RuntimeConfig.current()
        static_with = RuntimeConfig.current(lifecycle=LifecyclePolicy())
        assert static.connection_mode == "static"
        assert spec_hash(_spec(config=static_with)) == spec_hash(
            _spec(config=static))

    def test_aliased_specs_produce_equal_results(self):
        # The folding rules are only sound if the aliased spellings
        # really do run identically; spot-check one non-trivial pair.
        via_spec = _spec(npes=4, ppn=2, seed=7)
        via_config = _spec(npes=4, ppn=2,
                           config=RuntimeConfig.proposed(seed=7))
        assert spec_hash(via_spec) == spec_hash(via_config)
        assert execute(via_spec) == execute(via_config)


# ----------------------------------------------------------------------
# distinctness: any semantic difference, different hash
# ----------------------------------------------------------------------
class TestDistinctness:
    def test_faults_only_difference_changes_the_hash(self):
        # The regression ISSUE names: two specs differing ONLY in
        # faults must never share an identity.
        plain = _spec()
        lossy = _spec(faults=FaultPlan(name="loss",
                                       ud=(UDFault("drop", prob=0.1),)))
        assert spec_hash(plain) != spec_hash(lossy)
        assert spec_identity(plain) != spec_identity(lossy)

    def test_cost_overrides_only_difference_changes_the_hash(self):
        assert spec_hash(_spec()) != spec_hash(
            _spec(cost_overrides={"qp_cache_entries": 8}))

    def test_semantic_field_matrix(self):
        variants = [
            _spec(),
            _spec(npes=16),
            _spec(config=RuntimeConfig.current()),
            _spec(testbed="B"),
            _spec(ppn=4),
            _spec(seed=99),
            _spec(observe=True),
            _spec(observe={"timeline": True}),
            _spec(faults=FaultPlan(name="loss",
                                   ud=(UDFault("drop", prob=0.1),))),
            _spec(check=True),
            _spec(cost_overrides={"qp_cache_entries": 8}),
            _spec(cost_overrides={"qp_cache_entries": 16}),
            _spec(macro=True),
            _spec(app=NasEP()),
        ]
        hashes = [spec_hash(s) for s in variants]
        assert len(set(hashes)) == len(variants)
        identities = [spec_identity(s) for s in variants]
        assert len(set(identities)) == len(variants)

    def test_fault_probability_changes_the_hash(self):
        a = _spec(faults=FaultPlan(name="loss",
                                   ud=(UDFault("drop", prob=0.1),)))
        b = _spec(faults=FaultPlan(name="loss",
                                   ud=(UDFault("drop", prob=0.2),)))
        assert spec_hash(a) != spec_hash(b)

    def test_app_params_change_the_hash(self):
        assert spec_hash(_spec(app=NasEP(real_pairs=100))) != spec_hash(
            _spec(app=NasEP(real_pairs=200)))


# ----------------------------------------------------------------------
# canonical form mechanics
# ----------------------------------------------------------------------
class TestCanonicalForm:
    def test_canonical_json_is_stable_and_sorted(self):
        spec = _spec(seed=3, cost_overrides={"qp_cache_entries": 8})
        assert canonical_json(spec) == canonical_json(spec)
        assert canonical_json(spec).startswith('{"app":')

    def test_canonical_spec_has_no_label(self):
        canon = canonical_spec(_spec(label="secret-name"))
        assert "secret-name" not in canonical_json(_spec(label="secret-name"))
        assert "label" not in canon

    def test_hash_survives_pickling(self):
        spec = _spec(seed=3, observe=True,
                     cost_overrides={"qp_cache_entries": 8})
        assert spec_hash(pickle.loads(pickle.dumps(spec))) == spec_hash(spec)

    def test_hash_is_hex_sha256(self):
        digest = spec_hash(_spec())
        assert len(digest) == 64
        assert int(digest, 16) >= 0


# ----------------------------------------------------------------------
# bugfix regressions
# ----------------------------------------------------------------------
class TestSweepErrorIdentity:
    class _Boom(HelloWorld):
        pass

    def test_error_names_are_collision_free(self):
        # Historically SweepError used spec.key, where label shadowed
        # the derived identity — two different failing specs with the
        # same label were indistinguishable in the error text.
        lossy = FaultPlan(name="loss", ud=(UDFault("drop", prob=0.1),))
        a = _spec(label="point")
        b = _spec(label="point", faults=lossy)
        err_a = SweepError(a, ValueError("x"))
        err_b = SweepError(b, ValueError("x"))
        assert str(err_a) != str(err_b)
        # The label is still shown for the human...
        assert "point" in str(err_a)
        # ...but the collision-free identity is always present.
        assert spec_identity(a).rsplit("#", 1)[1] in str(err_a)
        assert spec_identity(b).rsplit("#", 1)[1] in str(err_b)

    def test_identity_property_matches_function(self):
        spec = _spec(seed=5)
        assert spec.identity == spec_identity(spec)


class TestUnhashableOverrides:
    def test_list_value_fails_fast_with_config_error(self):
        # Historically this exploded much later inside _custom_cluster's
        # lru_cache with an opaque "unhashable type: 'list'" TypeError.
        with pytest.raises(ConfigError, match="cost_overrides"):
            _spec(cost_overrides={"qp_cache_entries": [1, 2]})

    def test_dict_value_fails_fast(self):
        with pytest.raises(ConfigError, match="hashable"):
            _spec(cost_overrides={"qp_cache_entries": {"a": 1}})

    def test_non_string_key_fails_fast(self):
        with pytest.raises(ConfigError, match="cost_overrides"):
            _spec(cost_overrides={3: 1.0})

    def test_malformed_tuple_entries_fail_fast(self):
        with pytest.raises(ConfigError, match="pairs"):
            _spec(cost_overrides=(("a", 1, 2),))

    def test_valid_overrides_still_run(self):
        result = run_sweep(
            [_spec(npes=4, ppn=2,
                   cost_overrides={"launch_skew_us": 9_000.0})])
        assert result[0].npes == 4

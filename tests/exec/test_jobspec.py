"""JobSpec: validation, normalisation, pickling, seed handling."""

import pickle

import pytest

from repro.apps import HelloWorld
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.exec import JobSpec, execute


def _spec(**kw):
    kw.setdefault("app", HelloWorld())
    kw.setdefault("npes", 8)
    kw.setdefault("config", RuntimeConfig.proposed())
    return JobSpec(**kw)


class TestValidation:
    def test_npes_must_be_positive(self):
        with pytest.raises(ConfigError):
            _spec(npes=0)

    def test_testbed_must_be_known(self):
        with pytest.raises(ConfigError):
            _spec(testbed="C")

    def test_ppn_must_be_positive(self):
        with pytest.raises(ConfigError):
            _spec(ppn=0)


class TestNormalisation:
    def test_cost_overrides_mapping_becomes_sorted_tuple(self):
        spec = _spec(cost_overrides={"qp_cache_entries": 8,
                                     "poll_cq_us": 0.2})
        assert spec.cost_overrides == (("poll_cq_us", 0.2),
                                       ("qp_cache_entries", 8))

    def test_spec_with_overrides_is_hashable(self):
        spec = _spec(cost_overrides={"qp_cache_entries": 8})
        assert hash(spec) == hash(_spec(cost_overrides=(
            ("qp_cache_entries", 8),)))


class TestKey:
    def test_default_key_encodes_the_point(self):
        spec = _spec(npes=32, testbed="B", ppn=16)
        assert "hello" in spec.key
        assert "n32" in spec.key
        assert "tbB" in spec.key
        assert "ppn16" in spec.key

    def test_seed_and_observe_show_up(self):
        spec = _spec(seed=7, observe=True)
        assert "seed7" in spec.key
        assert "obs" in spec.key

    def test_label_wins(self):
        assert _spec(label="my-point").key == "my-point"


class TestPickling:
    def test_round_trip_equality(self):
        spec = _spec(npes=16, testbed="B", seed=3, observe=True,
                     cost_overrides={"qp_cache_entries": 32})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.key == spec.key


class TestExecute:
    def test_same_spec_is_deterministic(self):
        a = execute(_spec(npes=4, ppn=2))
        b = execute(_spec(npes=4, ppn=2))
        assert a == b

    def test_seed_override_changes_the_run(self):
        base = execute(_spec(npes=4, ppn=2))
        reseeded = execute(_spec(npes=4, ppn=2, seed=999))
        # Launch skew is drawn from the job RNG, so a different seed
        # moves the reported wall time.
        assert reseeded.wall_time_us != base.wall_time_us

    def test_cost_overrides_reach_the_cluster(self):
        slow = _spec(npes=4, ppn=2,
                     cost_overrides={"launch_skew_us": 50_000.0})
        assert execute(slow).wall_time_us > execute(
            _spec(npes=4, ppn=2)).wall_time_us

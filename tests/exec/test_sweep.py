"""run_sweep: worker policy, determinism, and failure surfacing.

The load-bearing property: parallel execution is *byte-identical* to
serial execution — same JobResults, same rendered tables — because a
JobSpec fully determines its simulation.  These tests pin that down,
including with fault injection and the flight recorder active, and
check that worker failures surface the original exception with the
failing spec attached.
"""

import multiprocessing

import pytest

from repro.apps import HelloWorld
from repro.apps.base import Application
from repro.core import RuntimeConfig
from repro.errors import ConfigError
from repro.exec import (JobSpec, SweepError, execute, resolve_workers,
                        resolve_workers_info, run_sweep)
from repro.exec import pool as pool_mod
from repro.faults import FaultPlan, UDFault
from repro.sim import ProcessFailure

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="needs fork start method for picklable "
    "test-module apps")


class Boom(Application):
    """Raises on PE 1 after one simulated microsecond."""

    name = "boom"

    def run(self, pe):
        yield 1.0
        if pe.mype == 1:
            raise ValueError("kaboom")


def _hello(npes, config=None, **kw):
    return JobSpec(app=HelloWorld(), npes=npes,
                   config=config or RuntimeConfig.proposed(),
                   testbed="A", ppn=2, **kw)


# ----------------------------------------------------------------------
# worker-count policy
# ----------------------------------------------------------------------
class TestResolveWorkers:
    def test_repro_par_zero_is_a_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "0")
        assert resolve_workers(4, njobs=8, host_cpus=8) == 1

    def test_repro_par_one_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "1")
        assert resolve_workers(None, njobs=8, host_cpus=8) == 1

    def test_repro_par_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "3")
        assert resolve_workers(None, njobs=8, host_cpus=8) == 3

    def test_explicit_workers_beat_repro_par_n(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "3")
        assert resolve_workers(2, njobs=8, host_cpus=8) == 2

    def test_clamped_to_job_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "16")
        assert resolve_workers(None, njobs=3, host_cpus=32) == 3

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "many")
        with pytest.raises(ConfigError):
            resolve_workers(None, njobs=2)

    def test_clamped_to_host_cpus(self, monkeypatch):
        # Oversubscribing CPU-bound simulations is a slowdown, not a
        # speedup — REPRO_PAR (or an explicit request) beyond the
        # affinity mask is clamped, never honoured blindly.
        monkeypatch.setenv("REPRO_PAR", "8")
        info = resolve_workers_info(None, njobs=16, host_cpus=2)
        assert info["workers"] == 2
        assert info["mode"] == "parallel"
        assert info["reason"] == "clamped to host CPUs"
        assert info["requested"] == 8

    def test_single_core_host_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "2")
        info = resolve_workers_info(None, njobs=6, host_cpus=1)
        assert info["workers"] == 1
        assert info["mode"] == "serial"
        assert info["reason"] == "single-core host"

    def test_explicit_request_is_clamped_too(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR", raising=False)
        info = resolve_workers_info(4, njobs=8, host_cpus=1)
        assert info["workers"] == 1
        assert info["reason"] == "single-core host"

    def test_kill_switch_reports_its_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "0")
        info = resolve_workers_info(4, njobs=8, host_cpus=8)
        assert info["workers"] == 1
        assert info["reason"] == "REPRO_PAR kill switch"

    def test_auto_detect_uses_host_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR", raising=False)
        info = resolve_workers_info(None, njobs=64, host_cpus=4)
        assert info["workers"] == 4
        assert info["mode"] == "parallel"
        assert info["reason"] is None


# ----------------------------------------------------------------------
# input handling + serial routing
# ----------------------------------------------------------------------
class TestRunSweepBasics:
    def test_empty_sweep(self):
        assert run_sweep([]) == []

    def test_rejects_non_specs(self):
        with pytest.raises(ConfigError):
            run_sweep([HelloWorld()])

    def test_repro_par_zero_never_touches_the_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "0")
        monkeypatch.setattr(
            pool_mod, "_run_parallel",
            lambda *a, **k: pytest.fail("pool used despite REPRO_PAR=0"))
        results = run_sweep([_hello(4), _hello(8)], max_workers=4)
        assert [r.npes for r in results] == [4, 8]

    def test_max_workers_one_never_touches_the_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR", raising=False)
        monkeypatch.setattr(
            pool_mod, "_run_parallel",
            lambda *a, **k: pytest.fail("pool used despite max_workers=1"))
        results = run_sweep([_hello(4), _hello(8)], max_workers=1)
        assert [r.npes for r in results] == [4, 8]

    def test_progress_reports_in_spec_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "0")
        seen = []
        run_sweep([_hello(4), _hello(8)],
                  progress=lambda spec, done, total: seen.append(
                      (spec.npes, done, total)))
        assert seen == [(4, 1, 2), (8, 2, 2)]


# ----------------------------------------------------------------------
# parallel == serial, byte for byte
# ----------------------------------------------------------------------
def _grid():
    lossy = FaultPlan(name="loss5", ud=(UDFault("drop", prob=0.05),))
    return [
        _hello(8, RuntimeConfig.current()),
        _hello(8, RuntimeConfig.proposed()),
        _hello(8, RuntimeConfig.proposed(), faults=lossy),
        _hello(8, RuntimeConfig.proposed(), observe=True),
    ]


@needs_fork
class TestParallelEqualsSerial:
    def test_job_results_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR", raising=False)
        serial = run_sweep(_grid(), max_workers=1)
        # Drive the pool directly: run_sweep would (correctly) clamp to
        # the serial path on a single-core host, but the byte-identity
        # contract must hold wherever the pool actually runs.
        parallel = pool_mod._run_parallel(_grid(), 2)
        # JobResult is a plain dataclass tree: == compares every field,
        # including counters and the observe=True telemetry payload.
        assert serial == parallel
        assert serial[3].telemetry is not None

    def test_experiment_tables_identical(self, monkeypatch):
        from repro.bench.experiments import fig5_startup

        monkeypatch.setenv("REPRO_PAR", "0")
        serial = fig5_startup.run(sizes=[16, 32])
        monkeypatch.setenv("REPRO_PAR", "2")
        parallel = fig5_startup.run(sizes=[16, 32])
        assert serial.render() == parallel.render()
        assert serial.csv() == parallel.csv()


# ----------------------------------------------------------------------
# failure surfacing
# ----------------------------------------------------------------------
class TestFailures:
    def test_serial_failure_carries_spec_and_cause(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "0")
        spec = JobSpec(app=Boom(), npes=4,
                       config=RuntimeConfig.proposed(), testbed="A", ppn=2)
        with pytest.raises(SweepError) as info:
            run_sweep([spec])
        assert info.value.spec is spec
        assert isinstance(info.value.cause, ProcessFailure)
        assert isinstance(info.value.cause.cause, ValueError)

    @needs_fork
    def test_worker_failure_carries_spec_and_cause(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR", raising=False)
        good = _hello(4)
        bad = JobSpec(app=Boom(), npes=4,
                      config=RuntimeConfig.proposed(), testbed="A", ppn=2)
        with pytest.raises(SweepError) as info:
            # Direct pool call for the same reason as above: the worker
            # boundary is the thing under test.
            pool_mod._run_parallel([good, bad], 2)
        assert info.value.spec == bad
        # The original exception crossed the process boundary intact
        # (ProcessFailure pickles by dropping the live Process).
        assert isinstance(info.value.cause, ProcessFailure)
        assert isinstance(info.value.cause.cause, ValueError)
        assert info.value.cause.process_name == "join"


class TestExecuteIsolation:
    def test_execute_matches_run_sweep(self):
        spec = _hello(4)
        assert execute(spec) == run_sweep([spec])[0]

"""Shared chaos-scenario driver for the fault-injection tests.

``run_chaos`` exercises the on-demand handshake's adverse paths in one
deterministic scenario: staggered server readiness (held requests),
simultaneous initiators (collisions), and all-to-all first touch, all
under a caller-supplied :class:`repro.faults.FaultPlan` plus mild
baseline UD noise.  It returns the rig and the full protocol trace so
callers can assert both *convergence* and *bit-exact determinism*.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster import Cluster, CostModel
from repro.faults import FaultInjector
from repro.ib import HCA, Fabric, VerbsContext
from repro.sim import Counters, RngRegistry, Simulator, spawn

from ..gasnet.conftest import CRig, build_conduit_rig


@dataclass
class URig:
    """Bare IB substrate rig (no conduits): one UD QP + recv drainer per
    PE, with arrivals recorded as ``(payload, sim.now)`` tuples.  Lets
    the injector tests observe exact datagram fates and timings."""

    sim: Simulator
    counters: Counters
    ctxs: List[VerbsContext]
    hcas: List[HCA]
    fabric: Fabric
    qps: list
    send_cqs: list
    recv_cqs: list
    injector: Optional[FaultInjector]
    #: Per-PE list of (payload, arrival_time) in delivery order.
    arrivals: List[list] = field(default_factory=list)
    #: Per-PE list of the raw receive WorkCompletions, same order.
    recv_wcs: List[list] = field(default_factory=list)


def build_ud_rig(plan=None, npes=2, seed=7, cost=None) -> URig:
    cost = cost or CostModel().evolve(ud_loss_prob=0.0, ud_duplicate_prob=0.0)
    sim = Simulator()
    cluster = Cluster(npes=npes, ppn=1, cost=cost, name="urig")
    counters = Counters()
    rng = RngRegistry(seed)
    fabric = Fabric(sim, cluster, rng, counters)
    hcas = [
        HCA(sim, fabric, node=n, lid=0x100 + n, cost=cost, counters=counters)
        for n in range(cluster.nnodes)
    ]
    ctxs = [VerbsContext(sim, hcas[n], n, cost, counters) for n in range(npes)]
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, sim, rng, counters).install(
            fabric=fabric, hcas=hcas
        )
    rig = URig(sim, counters, ctxs, hcas, fabric, qps=[], send_cqs=[],
               recv_cqs=[], injector=injector,
               arrivals=[[] for _ in range(npes)],
               recv_wcs=[[] for _ in range(npes)])

    def boot():
        for ctx in ctxs:
            scq = ctx.create_cq("ud-send")
            rcq = ctx.create_cq("ud-recv")
            qp = yield from ctx.create_ud_qp(scq, rcq)
            rig.qps.append(qp)
            rig.send_cqs.append(scq)
            rig.recv_cqs.append(rcq)

    def drainer(r):
        while True:
            wc = yield rig.recv_cqs[r].wait()
            rig.arrivals[r].append((wc.data, sim.now))
            rig.recv_wcs[r].append(wc)

    spawn(sim, boot(), name="boot")
    sim.run()
    for r in range(npes):
        spawn(sim, drainer(r), name=f"drain-{r}")
    return rig


def ud_send(rig: URig, src: int, dst: int, payload, nbytes: int = 64):
    """Generator: one charged UD datagram ``src -> dst``."""
    yield from rig.ctxs[src].ud_send(
        rig.qps[src], rig.qps[dst].address, payload, nbytes
    )


@dataclass
class ChaosResult:
    rig: CRig
    trace: List[str]
    received: List[tuple]


def chaos_cost(**overrides) -> CostModel:
    """Baseline noise + fast retry clock so chaos runs stay small."""
    defaults = dict(
        ud_loss_prob=0.01,
        ud_duplicate_prob=0.005,
        ud_retry_timeout_us=400.0,
        ud_max_retries=40,
        qp_create_backoff_base_us=25.0,
    )
    defaults.update(overrides)
    return CostModel().evolve(**defaults)


def run_chaos(seed, plan, npes=4, cost=None, pmi_directory=True) -> ChaosResult:
    """One chaos run; every PE ends fully connected or the run raises."""
    rig = build_conduit_rig(
        npes=npes, ppn=1, cost=cost or chaos_cost(), seed=seed,
        ready=False, faults=plan, trace=True, pmi_directory=pmi_directory,
    )
    sim = rig.sim
    received = []
    for c in rig.conduits:
        c.register_handler(
            "chaos", lambda src, data, _r=c.rank: received.append((_r, src, data))
        )

    def become_ready(c, delay):
        yield delay
        c.mark_ready()

    def pe(c, peers):
        # First-touch every peer; rank-rotated order makes the low pairs
        # collide (0->1 and 1->0 start together) while later sends hit
        # already-served peers and duplicate-request paths.
        for p in peers:
            yield from c.am_send(p, "chaos", data=(c.rank, p))

    for r, c in enumerate(rig.conduits):
        # Staggered readiness: early senders find servers not ready and
        # their requests are held (Section IV-E).
        spawn(sim, become_ready(c, 150.0 * r + 1.0), name=f"ready-{r}")
        peers = [(r + k) % npes for k in range(1, npes)]
        spawn(sim, pe(c, peers), name=f"chaos-pe{r}")
    sim.run()
    return ChaosResult(rig=rig, trace=rig.tracer.formatted(), received=received)


def assert_converged(res: ChaosResult, npes=4) -> None:
    rig = res.rig
    pairs = npes * (npes - 1)
    for c in rig.conduits:
        for p in range(npes):
            if p != c.rank:
                assert c.is_connected(p), (
                    f"PE {c.rank} never connected to {p}"
                )
    assert len(res.received) == pairs
    assert sorted({(r, s) for r, s, _ in res.received}) == sorted(
        (r, s) for r in range(npes) for s in range(npes) if r != s
    )
    # Retry counters stay within the structural budget: no connect ran
    # its full schedule (that would have raised), and the total is
    # bounded by the per-pair retry budget.
    cost = rig.cluster.cost
    assert rig.counters["conduit.connect_retries"] <= pairs * cost.ud_max_retries
    assert rig.counters["conduit.qp_create_retries"] <= pairs * (
        cost.qp_create_max_retries
    )

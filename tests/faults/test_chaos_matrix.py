"""Chaos seed-sweep matrix over the on-demand handshake (tentpole test).

Sweeps seeds x fault plans over a startup scenario containing
collisions, all-to-all first touch and held requests, asserting that

* every run terminates with full connectivity and bounded retries, and
* re-running the same (seed, plan) produces a byte-identical trace.

Set ``CHAOS_SEEDS`` (e.g. in CI quick mode) to bound the sweep.
"""

import os

import pytest

from repro.faults import FaultPlan, PMIFault, QPCreateFault, UDFault

from .conftest import assert_converged, run_chaos

NPES = 4
N_SEEDS = int(os.environ.get("CHAOS_SEEDS", "25"))
SEEDS = [101 + 13 * i for i in range(N_SEEDS)]

PLANS = {
    # 20% loss on every pair, on top of the baseline 1% noise.
    "loss20": FaultPlan(name="loss20", ud=(UDFault("drop", prob=0.20),)),
    # Random extra dwell on half the datagrams: later packets overtake
    # earlier ones (the reordering DESIGN.md promises), plus duplicates.
    "reorder": FaultPlan(
        name="reorder",
        ud=(
            UDFault("delay", prob=0.5, delay_us=40.0, jitter_us=900.0),
            UDFault("duplicate", prob=0.1, delay_us=10.0, jitter_us=200.0),
        ),
    ),
    # Nothing gets through early on, and peer 1 additionally eats the
    # first three requests aimed at it after the window lifts.
    "blackhole": FaultPlan(
        name="blackhole",
        ud=(
            UDFault("drop", window=(0.0, 2500.0)),
            UDFault("drop", dst=1, first_n=3),
        ),
    ),
    # Every rank's first two RC QP creations fail ENOMEM-style; the
    # conduit's exponential backoff must ride it out on both the client
    # and the serve side.
    "qp_enomem": FaultPlan(
        name="qp_enomem",
        qp_create=(QPCreateFault(first_n=2, per_rank=True),),
        ud=(UDFault("drop", prob=0.05),),
    ),
    # PMI daemons restart during startup (directory resolution stalls),
    # then limp at 8x CPU for a while, with light UD loss on top.
    "pmi_restart": FaultPlan(
        name="pmi_restart",
        pmi=(
            PMIFault(window=(0.0, 2500.0), outage=True),
            PMIFault(window=(2500.0, 6000.0), slowdown=8.0),
        ),
        ud=(UDFault("drop", prob=0.05),),
    ),
}


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_converges_and_replays_identically(plan_name, seed):
    plan = PLANS[plan_name]
    first = run_chaos(seed, plan, npes=NPES)
    assert_converged(first, npes=NPES)
    again = run_chaos(seed, plan, npes=NPES)
    assert_converged(again, npes=NPES)
    assert first.trace == again.trace, (
        f"plan {plan_name!r} seed {seed}: trace not deterministic"
    )
    # The runs actually exercised the injector (except where the plan
    # is probabilistic and this seed happened to fire nothing, which
    # the budgeted plans below rule out).
    if plan_name in ("blackhole", "qp_enomem"):
        assert any(
            first.rig.counters[k] > 0
            for k in ("faults.ud_dropped", "faults.qp_create_failed")
        )


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_chaos_traces_differ_across_seeds_but_not_within(seed):
    """Different seeds genuinely explore different schedules."""
    plan = PLANS["loss20"]
    a = run_chaos(seed, plan, npes=NPES)
    b = run_chaos(seed + 1, plan, npes=NPES)
    assert_converged(a, npes=NPES)
    assert_converged(b, npes=NPES)
    assert a.trace != b.trace


def test_matrix_dimensions_meet_acceptance_floor():
    """The acceptance criteria demand >= 25 seeds x >= 4 plans (unless
    CI quick mode explicitly bounded the sweep)."""
    if "CHAOS_SEEDS" not in os.environ:
        assert len(SEEDS) >= 25
    assert len(PLANS) >= 4

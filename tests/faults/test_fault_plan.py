"""FaultPlan declaration, validation, config round-trip and Job wiring."""

import pytest

from repro.core import Job, RuntimeConfig
from repro.errors import ConfigError
from repro.faults import FaultPlan, PMIFault, QPCreateFault, UDFault


class TestRuleValidation:
    def test_ud_action_must_be_known(self):
        with pytest.raises(ConfigError, match="action"):
            UDFault("corrupt")

    @pytest.mark.parametrize("prob", [-0.1, 1.5])
    def test_prob_bounds(self, prob):
        with pytest.raises(ConfigError, match="prob"):
            UDFault("drop", prob=prob)
        with pytest.raises(ConfigError, match="prob"):
            QPCreateFault(prob=prob)

    @pytest.mark.parametrize("window", [(5.0,), (10.0, 10.0), (20.0, 5.0),
                                        (-1.0, 5.0)])
    def test_window_must_be_ordered_nonnegative(self, window):
        with pytest.raises(ConfigError, match="window"):
            UDFault("drop", window=window)

    def test_first_n_must_be_positive(self):
        with pytest.raises(ConfigError, match="first_n"):
            UDFault("drop", first_n=0)

    def test_negative_delays_rejected(self):
        with pytest.raises(ConfigError, match="delay_us"):
            UDFault("delay", delay_us=-1.0)

    def test_pmi_slowdown_below_one_rejected(self):
        with pytest.raises(ConfigError, match="slowdown"):
            PMIFault(window=(0.0, 10.0), slowdown=0.5)

    def test_pmi_noop_rule_rejected(self):
        with pytest.raises(ConfigError, match="no effect"):
            PMIFault(window=(0.0, 10.0))


class TestPlan:
    def test_lists_normalised_to_tuples(self):
        plan = FaultPlan(ud=[UDFault("drop")], pmi=[])
        assert isinstance(plan.ud, tuple) and isinstance(plan.pmi, tuple)

    def test_wrong_rule_type_in_family_rejected(self):
        with pytest.raises(ConfigError, match="entries must be"):
            FaultPlan(ud=(QPCreateFault(),))

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(qp_create=(QPCreateFault(first_n=1),)).empty

    def test_dict_round_trip(self):
        plan = FaultPlan(
            name="mix",
            ud=(
                UDFault("drop", dst=3, first_n=2),
                UDFault("delay", prob=0.5, delay_us=40.0, jitter_us=10.0,
                        window=(100.0, 900.0)),
            ),
            qp_create=(QPCreateFault(first_n=1, per_rank=True),),
            pmi=(PMIFault(window=(0.0, 500.0), outage=True),),
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_from_dict_accepts_window_lists(self):
        plan = FaultPlan.from_dict(
            {"ud": [{"action": "drop", "window": [0.0, 10.0]}]}
        )
        assert plan.ud[0].window == (0.0, 10.0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"udp": []})
        with pytest.raises(ConfigError, match="unknown UDFault fields"):
            FaultPlan.from_dict({"ud": [{"action": "drop", "probab": 0.2}]})

    def test_from_dict_validates_rule_values(self):
        with pytest.raises(ConfigError, match="prob"):
            FaultPlan.from_dict({"ud": [{"action": "drop", "prob": 2.0}]})


class TestConfigAndJobWiring:
    def test_runtime_config_coerces_dict(self):
        cfg = RuntimeConfig.proposed(
            fault_plan={"name": "cfg", "ud": [{"action": "drop", "prob": 0.1}]}
        )
        assert isinstance(cfg.fault_plan, FaultPlan)
        assert cfg.fault_plan.name == "cfg"

    def test_runtime_config_rejects_bad_type(self):
        with pytest.raises(ConfigError, match="fault_plan"):
            RuntimeConfig.proposed(fault_plan=42)

    def test_job_installs_injector_everywhere(self):
        plan = FaultPlan(ud=(UDFault("drop", prob=0.1),))
        job = Job(npes=4, faults=plan)
        inj = job.fault_injector
        assert inj is not None and inj.plan is plan
        assert job.fabric.faults is inj
        assert all(h.faults is inj for h in job.hcas)
        assert job.pmi_domain.faults is inj

    def test_job_skips_empty_plan(self):
        job = Job(npes=4, faults=FaultPlan())
        assert job.fault_injector is None
        assert job.fabric.faults is None

    def test_job_picks_up_config_plan(self):
        cfg = RuntimeConfig.proposed(
            fault_plan={"ud": [{"action": "drop", "prob": 0.1}]}
        )
        job = Job(npes=4, config=cfg)
        assert job.fault_injector is not None
        assert job.fault_injector.plan is cfg.fault_plan


class TestKindValidation:
    def test_kind_must_be_nonempty_string(self):
        with pytest.raises(ConfigError):
            UDFault("drop", kind="")
        with pytest.raises(ConfigError):
            UDFault("drop", kind=42)

    def test_kind_round_trips_through_dict(self):
        plan = FaultPlan(ud=(UDFault("drop", kind="DisconnectAck"),))
        again = FaultPlan.from_dict(plan.as_dict())
        assert again.ud[0].kind == "DisconnectAck"

"""Unit tests for FaultInjector semantics at the substrate hook points."""

import pytest

from repro.cluster import Cluster, CostModel
from repro.errors import ResourceExhaustedError
from repro.faults import FaultInjector, FaultPlan, PMIFault, QPCreateFault, UDFault
from repro.pmi import PMIDomain
from repro.sim import Counters, RngRegistry, Simulator, spawn

from ..gasnet.conftest import build_conduit_rig
from .conftest import build_ud_rig, ud_send


def _run(rig, *gens):
    for i, g in enumerate(gens):
        spawn(rig.sim, g, name=f"t{i}")
    rig.sim.run()


class TestUDFaults:
    def test_drop_first_n_then_inert(self):
        plan = FaultPlan(ud=(UDFault("drop", dst=1, first_n=2),))
        rig = build_ud_rig(plan=plan)

        def sender():
            for i in range(4):
                yield from ud_send(rig, 0, 1, f"m{i}")
                yield 10.0

        _run(rig, sender())
        assert [p for p, _ in rig.arrivals[1]] == ["m2", "m3"]
        assert rig.counters["faults.ud_dropped"] == 2
        assert rig.counters["fabric.ud_dropped"] == 2

    def test_src_scoped_rule_leaves_reverse_path_alone(self):
        plan = FaultPlan(ud=(UDFault("drop", src=0),))
        rig = build_ud_rig(plan=plan)

        def sender(src, dst, tag):
            yield from ud_send(rig, src, dst, tag)

        _run(rig, sender(0, 1, "fwd"), sender(1, 0, "rev"))
        assert rig.arrivals[1] == []
        assert [p for p, _ in rig.arrivals[0]] == ["rev"]

    def test_blackhole_window_lifts(self):
        plan = FaultPlan(ud=(UDFault("drop", window=(0.0, 1000.0)),))
        rig = build_ud_rig(plan=plan)

        def sender():
            yield from ud_send(rig, 0, 1, "early")   # inside the window
            yield 2000.0
            yield from ud_send(rig, 0, 1, "late")    # window closed

        _run(rig, sender())
        assert [p for p, _ in rig.arrivals[1]] == ["late"]
        assert rig.counters["faults.ud_dropped"] == 1

    def test_delay_reorders_past_later_packet(self):
        plan = FaultPlan(ud=(UDFault("delay", delay_us=500.0, first_n=1),))
        rig = build_ud_rig(plan=plan)

        def sender():
            yield from ud_send(rig, 0, 1, "first")   # held back 500us
            yield 10.0
            yield from ud_send(rig, 0, 1, "second")

        _run(rig, sender())
        assert [p for p, _ in rig.arrivals[1]] == ["second", "first"]
        assert rig.counters["faults.ud_delayed"] == 1

    def test_duplicate_injects_delayed_copy(self):
        plan = FaultPlan(ud=(UDFault("duplicate", delay_us=25.0, first_n=1),))
        rig = build_ud_rig(plan=plan)
        _run(rig, ud_send(rig, 0, 1, "msg"))
        got = rig.arrivals[1]
        assert [p for p, _ in got] == ["msg", "msg"]
        # Gap is 25us minus one 64B egress-serialisation slot.
        assert got[1][1] - got[0][1] == pytest.approx(25.0, abs=0.1)
        assert rig.counters["faults.ud_duplicated"] == 1
        assert rig.counters["fabric.ud_duplicated"] == 1

    def test_probabilistic_jitter_is_seed_deterministic(self):
        plan = FaultPlan(
            ud=(UDFault("delay", prob=0.5, delay_us=10.0, jitter_us=100.0),)
        )

        def times(seed):
            rig = build_ud_rig(plan=plan, seed=seed)

            def sender():
                for i in range(12):
                    yield from ud_send(rig, 0, 1, i)
                    yield 5.0

            _run(rig, sender())
            return tuple(t for _, t in rig.arrivals[1])

        assert times(11) == times(11)
        assert times(11) != times(12)


class TestQPCreateFaults:
    def test_enomem_until_budget_spent(self):
        plan = FaultPlan(qp_create=(QPCreateFault(rank=0, first_n=2),))
        rig = build_ud_rig(plan=plan)
        outcomes = []

        def creator(rank, n):
            ctx = rig.ctxs[rank]
            scq, rcq = ctx.create_cq(), ctx.create_cq()
            for _ in range(n):
                try:
                    yield from ctx.create_rc_qp(scq, rcq)
                except ResourceExhaustedError:
                    outcomes.append((rank, "enomem"))
                else:
                    outcomes.append((rank, "ok"))

        _run(rig, creator(0, 3), creator(1, 1))
        assert outcomes.count((0, "enomem")) == 2
        assert outcomes.count((0, "ok")) == 1
        assert (1, "ok") in outcomes  # rank-scoped rule spares PE 1
        assert rig.counters["faults.qp_create_failed"] == 2
        assert rig.counters["hca.qp_enomem"] == 2
        # Failed attempts must not leak into the resource ledger.
        assert rig.ctxs[0].rc_qps_created == 1

    def test_per_rank_budget_keying(self):
        plan = FaultPlan(qp_create=(QPCreateFault(first_n=1, per_rank=True),))
        inj = FaultInjector(plan, Simulator(), RngRegistry(1), Counters())
        assert inj.qp_create_fails(0)
        assert not inj.qp_create_fails(0)   # rank 0's budget is spent
        assert inj.qp_create_fails(5)       # rank 5 has its own budget
        assert not inj.qp_create_fails(5)

    def test_conduit_backoff_rides_out_enomem(self):
        plan = FaultPlan(qp_create=(QPCreateFault(first_n=1, per_rank=True),))
        cost = CostModel().evolve(
            ud_loss_prob=0.0, ud_duplicate_prob=0.0,
            qp_create_backoff_base_us=10.0,
        )
        rig = build_conduit_rig(npes=2, cost=cost, faults=plan)
        c0, c1 = rig.conduits
        got = []
        c1.register_handler("ping", lambda src, data: got.append(src))

        def pe0():
            yield from c0.am_send(1, "ping")

        spawn(rig.sim, pe0(), name="pe0")
        rig.sim.run()
        assert got == [0]
        assert c0.is_connected(1) and c1.is_connected(0)
        # Both the client's and the server's first creation failed.
        assert rig.counters["faults.qp_create_failed"] == 2
        assert rig.counters["conduit.qp_create_retries"] == 2


class TestPMIFaults:
    def _domain(self, plan):
        sim = Simulator()
        cluster = Cluster(npes=4, ppn=2, cost=CostModel(), name="pmi")
        counters = Counters()
        domain = PMIDomain(sim, cluster, counters)
        FaultInjector(plan, sim, RngRegistry(1), counters).install(
            pmi_domain=domain
        )
        return domain, counters

    def test_outage_defers_to_window_end(self):
        plan = FaultPlan(pmi=(PMIFault(window=(100.0, 500.0), outage=True),))
        domain, counters = self._domain(plan)
        d = domain.daemons[0]
        assert d.occupy(200.0, 10.0) == pytest.approx(510.0)
        assert counters["faults.pmi_deferrals"] == 1
        # Work outside the window is untouched (daemon already busy
        # until 510 though, so it queues normally behind that).
        assert d.occupy(600.0, 10.0) == pytest.approx(610.0)
        assert counters["faults.pmi_deferrals"] == 1

    def test_slowdown_scales_cpu_and_scopes_to_node(self):
        plan = FaultPlan(
            pmi=(PMIFault(window=(0.0, 1000.0), slowdown=4.0, node=0),)
        )
        domain, counters = self._domain(plan)
        assert domain.daemons[0].occupy(100.0, 10.0) == pytest.approx(140.0)
        assert domain.daemons[1].occupy(100.0, 10.0) == pytest.approx(110.0)
        assert counters["faults.pmi_slowdowns"] == 1

    def test_outage_then_slowdown_compose(self):
        plan = FaultPlan(
            pmi=(
                PMIFault(window=(100.0, 500.0), outage=True),
                PMIFault(window=(500.0, 1000.0), slowdown=3.0),
            )
        )
        domain, _ = self._domain(plan)
        # Deferred to 500, which lands inside the slowdown window.
        assert domain.daemons[0].occupy(200.0, 10.0) == pytest.approx(530.0)


class TestNoPlanIsNoop:
    def test_substrates_default_to_no_injector(self):
        rig = build_ud_rig()
        assert rig.fabric.faults is None
        assert all(h.faults is None for h in rig.hcas)
        # The ENOMEM hook is a no-op without an injector.
        rig.hcas[0].try_alloc_rc_context(0)
        _run(rig, ud_send(rig, 0, 1, "msg"))
        assert [p for p, _ in rig.arrivals[1]] == ["msg"]


class TestKindScopedUDFaults:
    """``UDFault.kind`` scopes a rule to one payload class name, so a
    plan can target a single leg of a handshake (e.g. "drop every
    DisconnectAck") without touching the rest of the protocol."""

    def test_kind_match_fires_and_mismatch_skips(self):
        plan = FaultPlan(ud=(UDFault("drop", kind="str"),))
        rig = build_ud_rig(plan=plan)

        def sender():
            yield from ud_send(rig, 0, 1, "m0")

        _run(rig, sender())
        # The UD rig's payloads are plain strings, so kind="str" bites.
        assert rig.arrivals[1] == []
        assert rig.counters["faults.ud_dropped"] == 1

    def test_unmatched_kind_is_inert(self):
        plan = FaultPlan(ud=(UDFault("drop", kind="DisconnectAck"),))
        rig = build_ud_rig(plan=plan)

        def sender():
            yield from ud_send(rig, 0, 1, "m0")

        _run(rig, sender())
        assert [p for p, _ in rig.arrivals[1]] == ["m0"]
        assert rig.counters["faults.ud_dropped"] == 0

    def test_kind_verdict_unit(self):
        """Direct ud_fate calls: the rule consults the caller-supplied
        kind, and a None kind (caller does not discriminate) never
        matches a kind-scoped rule."""
        plan = FaultPlan(ud=(UDFault("drop", kind="Disconnect"),))
        rig = build_ud_rig(plan=plan)
        inj = rig.injector
        assert inj.ud_fate(0, 1, kind="Disconnect")[0] is True
        assert inj.ud_fate(0, 1, kind="DisconnectAck")[0] is False
        assert inj.ud_fate(0, 1)[0] is False

    def test_kind_composes_with_first_n(self):
        plan = FaultPlan(ud=(UDFault("drop", kind="str", first_n=1),))
        rig = build_ud_rig(plan=plan)

        def sender():
            yield from ud_send(rig, 0, 1, "m0")
            yield 10.0
            yield from ud_send(rig, 0, 1, "m1")

        _run(rig, sender())
        # Budget spent on the first matching datagram only.
        assert [p for p, _ in rig.arrivals[1]] == ["m1"]
        assert rig.counters["faults.ud_dropped"] == 1
